//! Cross-crate timing integration: the cycle-level results must show the
//! paper's qualitative shape even at reduced scale.

use ann::{SearchParams, TrainParams};
use benchmarks::runner::{run_timed, run_timed_ideal};
use benchmarks::{AppVariant, Benchmark, Scale};
use parrot::{CompileParams, CompiledRegion, ParrotCompiler};
use uarch::CoreConfig;

/// Compiles with the paper's published topology (timing shape depends on
/// the network size, not on how well it trained, so training is minimal).
fn fast_compile(bench: &dyn Benchmark, scale: &Scale) -> CompiledRegion {
    let params = CompileParams {
        search: SearchParams {
            train: TrainParams {
                epochs: 40,
                learning_rate: 0.1,
                ..TrainParams::default()
            },
            ..SearchParams::default()
        },
        max_training_samples: 300,
        ..CompileParams::default()
    };
    let topology = ann::Topology::new(bench.paper_topology()).expect("paper topology");
    ParrotCompiler::new(params)
        .compile_with_topology(&bench.region(), &bench.training_inputs(scale), topology)
        .unwrap_or_else(|e| panic!("compiling {} failed: {e}", bench.name()))
}

fn speedup_of(bench: &dyn Benchmark, scale: &Scale) -> (f64, f64) {
    let compiled = fast_compile(bench, scale);
    let base_app = bench.build_app(&AppVariant::Precise, scale);
    let (_, base, _) =
        run_timed(&base_app, &AppVariant::Precise, CoreConfig::penryn_like()).unwrap();
    let variant = AppVariant::Npu(&compiled);
    let app = bench.build_app(&variant, scale);
    let (_, npu, _) = run_timed(&app, &variant, CoreConfig::penryn_like()).unwrap();
    let t = compiled.config().topology();
    let (_, ideal) = run_timed_ideal(
        &app,
        &variant,
        CoreConfig::penryn_like(),
        t.inputs(),
        t.outputs(),
    )
    .unwrap();
    (
        base.cycles as f64 / npu.cycles as f64,
        base.cycles as f64 / ideal.cycles as f64,
    )
}

/// inversek2j is the paper's best case: its libm-heavy region shrinks to
/// a four-value queue exchange, so the speedup must be large.
#[test]
fn inversek2j_speeds_up_substantially() {
    let scale = Scale::small();
    let (speedup, ideal) = speedup_of(&benchmarks::inversek2j::InverseK2j, &scale);
    assert!(speedup > 2.0, "inversek2j speedup only {speedup:.2}x");
    assert!(
        ideal >= speedup * 0.99,
        "ideal ({ideal:.2}x) must bound real ({speedup:.2}x)"
    );
}

/// kmeans is the paper's counter-example: the region is so small that
/// queue traffic and NPU latency outweigh the elided work, producing a
/// slowdown.
#[test]
fn kmeans_slows_down() {
    let scale = Scale::small();
    let (speedup, _) = speedup_of(&benchmarks::kmeans::Kmeans, &scale);
    assert!(speedup < 1.0, "kmeans should slow down, got {speedup:.2}x");
}

/// The ideal (zero-cycle) NPU bounds the real NPU's speedup for every
/// benchmark it is measured on.
#[test]
fn ideal_npu_is_an_upper_bound() {
    let scale = Scale::small();
    for bench in [
        &benchmarks::sobel::Sobel as &dyn Benchmark,
        &benchmarks::fft::Fft,
    ] {
        let (speedup, ideal) = speedup_of(bench, &scale);
        assert!(
            ideal >= speedup * 0.99,
            "{}: ideal {ideal:.2}x < real {speedup:.2}x",
            bench.name()
        );
    }
}

/// Growing the CPU↔NPU link latency must monotonically (weakly) reduce
/// inversek2j's speedup — the paper's Figure 10 trend for fine-grained
/// regions.
#[test]
fn link_latency_hurts_fine_grained_regions() {
    let scale = Scale::small();
    let bench = benchmarks::inversek2j::InverseK2j;
    let compiled = fast_compile(&bench, &scale);
    let variant = AppVariant::Npu(&compiled);
    let app = bench.build_app(&variant, &scale);
    let mut cycles = Vec::new();
    for lat in [1u64, 8, 32] {
        let (_, stats, _) =
            run_timed(&app, &variant, CoreConfig::with_npu_link_latency(lat)).unwrap();
        cycles.push(stats.cycles);
    }
    assert!(
        cycles[0] <= cycles[1] && cycles[1] < cycles[2],
        "cycles must grow with link latency: {cycles:?}"
    );
}

/// The NPU timing unit reports invocation counts that match the
/// application's region call count, and its latency histogram covers
/// exactly the completed invocations.
#[test]
fn npu_invocation_count_matches_application() {
    let scale = Scale::small();
    let bench = benchmarks::sobel::Sobel;
    let compiled = fast_compile(&bench, &scale);
    let variant = AppVariant::Npu(&compiled);
    let app = bench.build_app(&variant, &scale);
    let (_, _, npu_stats) = run_timed(&app, &variant, CoreConfig::penryn_like()).unwrap();
    let npu = npu_stats.expect("npu attached");
    let invocations = ((scale.image_dim - 2) * (scale.image_dim - 2)) as u64;
    assert_eq!(npu.stats.invocations, invocations);
    assert_eq!(npu.invocation_cycles.count, invocations);
    assert!(npu.invocation_cycles.min >= 1.0);
    assert!(npu.invocation_cycles.p50() <= npu.invocation_cycles.max);
}

//! End-to-end integration tests: the full Parrot pipeline — observe,
//! train, generate code, and run whole applications on the NPU — across
//! crates.

use ann::{SearchParams, TrainParams};
use benchmarks::runner::{run_counting, run_functional};
use benchmarks::{all_benchmarks, AppVariant, Benchmark, Scale};
use parrot::{CompileParams, CompiledRegion, ParrotCompiler};

fn fast_compile(bench: &dyn Benchmark, scale: &Scale) -> CompiledRegion {
    let params = CompileParams {
        search: SearchParams {
            max_hidden_layers: 1,
            max_hidden_neurons: 8,
            train: TrainParams {
                epochs: 80,
                learning_rate: 0.1,
                ..TrainParams::default()
            },
            ..SearchParams::default()
        },
        max_training_samples: 400,
        ..CompileParams::default()
    };
    ParrotCompiler::new(params)
        .compile(&bench.region(), &bench.training_inputs(scale))
        .unwrap_or_else(|e| panic!("compiling {} failed: {e}", bench.name()))
}

/// Every benchmark's full transformed application runs to completion on
/// the NPU path and produces outputs of the right shape, with a bounded
/// error against the precise baseline.
#[test]
fn all_benchmarks_run_transformed_end_to_end() {
    let scale = Scale::small();
    for bench in all_benchmarks() {
        let compiled = fast_compile(bench.as_ref(), &scale);
        let precise_app = bench.build_app(&AppVariant::Precise, &scale);
        let precise = run_functional(&precise_app, &AppVariant::Precise)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", bench.name()));
        let variant = AppVariant::Npu(&compiled);
        let npu_app = bench.build_app(&variant, &scale);
        let npu = run_functional(&npu_app, &variant)
            .unwrap_or_else(|e| panic!("{} npu app: {e}", bench.name()));

        let reference = bench.extract_outputs(&precise.memory, &scale);
        let approx = bench.extract_outputs(&npu.memory, &scale);
        assert_eq!(
            reference.len(),
            approx.len(),
            "{}: output shapes differ",
            bench.name()
        );
        let error = bench.app_error(&reference, &approx);
        // Minimal training: errors are loose but must be far from chance.
        assert!(
            error < 0.5,
            "{}: whole-app error {error} out of range",
            bench.name()
        );
        // And the transformation must actually change something.
        assert!(
            error >= 0.0 && reference != approx,
            "{}: approximate run suspiciously identical",
            bench.name()
        );
    }
}

/// The transformed program executes NPU queue instructions in exactly the
/// ratio the region arity implies, and elides the region's work.
#[test]
fn queue_instruction_counts_match_region_arity() {
    let scale = Scale::small();
    let bench = benchmarks::sobel::Sobel;
    let compiled = fast_compile(&bench, &scale);
    let variant = AppVariant::Npu(&compiled);
    let app = bench.build_app(&variant, &scale);
    let (_, counts) = run_counting(&app, &variant).unwrap();
    let invocations = (scale.image_dim - 2) * (scale.image_dim - 2);
    let config_words = compiled.config().encoded_len() as u64;
    // 9 enq.d + 1 deq.d per invocation, plus the one-time enq.c stream.
    assert_eq!(
        counts.npu_queue,
        (invocations * 10) as u64 + config_words,
        "queue instruction accounting"
    );
}

/// The baseline application executes zero NPU queue instructions.
#[test]
fn baseline_never_touches_the_npu() {
    let scale = Scale::small();
    for bench in all_benchmarks() {
        let app = bench.build_app(&AppVariant::Precise, &scale);
        assert!(!app.needs_npu, "{}", bench.name());
        let (_, counts) = run_counting(&app, &AppVariant::Precise).unwrap();
        assert_eq!(counts.npu_queue, 0, "{}", bench.name());
    }
}

/// The functional NPU value seen by the application equals the compiled
/// region's reference evaluation, invocation by invocation.
#[test]
fn npu_application_values_match_reference_evaluation() {
    let scale = Scale::small();
    let bench = benchmarks::inversek2j::InverseK2j;
    let compiled = fast_compile(&bench, &scale);
    let variant = AppVariant::Npu(&compiled);
    let app = bench.build_app(&variant, &scale);
    let npu = run_functional(&app, &variant).unwrap();
    let outputs = bench.extract_outputs(&npu.memory, &scale);
    // Recompute the first few invocations directly from app memory inputs.
    for k in 0..5 {
        let x = app.memory[2 * k];
        let y = app.memory[2 * k + 1];
        let want = compiled.evaluate(&[x, y]);
        assert!(
            (outputs[2 * k] - want[0]).abs() < 1e-5 && (outputs[2 * k + 1] - want[1]).abs() < 1e-5,
            "invocation {k}: app ({}, {}) vs reference ({}, {})",
            outputs[2 * k],
            outputs[2 * k + 1],
            want[0],
            want[1]
        );
    }
}

/// Software-NN variant also runs end to end and approximates the same
/// function (Figure 9's configuration). Compared on sobel, whose
/// per-pixel outputs are independent — kmeans would amplify the tiny
/// LUT-vs-exact sigmoid difference through its argmin/centroid feedback.
#[test]
fn software_nn_variant_matches_npu_values() {
    let scale = Scale::small();
    let bench = benchmarks::sobel::Sobel;
    let compiled = fast_compile(&bench, &scale);

    let npu_variant = AppVariant::Npu(&compiled);
    let npu_app = bench.build_app(&npu_variant, &scale);
    let npu = run_functional(&npu_app, &npu_variant).unwrap();

    let sw_variant = AppVariant::SoftwareNn(&compiled);
    let sw_app = bench.build_app(&sw_variant, &scale);
    assert!(!sw_app.needs_npu);
    let sw = run_functional(&sw_app, &sw_variant).unwrap();

    let a = bench.extract_outputs(&npu.memory, &scale);
    let b = bench.extract_outputs(&sw.memory, &scale);
    // Same network; only sigmoid LUT quantization differs.
    let diff = parrot::quality::image_rmse(&a, &b, 1.0);
    assert!(diff < 0.01, "software vs hardware NN diverge: {diff}");
}

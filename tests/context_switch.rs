//! OS-visible NPU state: the configuration is architectural state that a
//! context switch must save (`deq.c`) and restore (`enq.c`) — paper
//! Section 5.2.

use ann::{Mlp, Normalizer, Topology};
use approx_ir::{Interpreter, NullSink, Program, Value};
use npu::{NpuConfig, NpuParams, NpuSim};
use parrot::codegen::{
    build_config_loader, build_config_restorer, build_config_saver, build_invocation_stub,
};
use parrot::NpuRuntime;

fn sample_config(seed: u64) -> NpuConfig {
    let t = Topology::new(vec![3, 8, 2]).unwrap();
    NpuConfig::new(
        Mlp::seeded(t, seed),
        Normalizer::new(vec![(0.0, 1.0), (-1.0, 1.0), (0.0, 4.0)]),
        Normalizer::new(vec![(0.0, 2.0), (-3.0, 3.0)]),
    )
}

/// Full save/restore round trip through the ISA path: process A's config
/// is read out with `deq.c`, process B runs with its own config, then A's
/// is restored with `enq.c` and produces identical results.
#[test]
fn context_switch_preserves_npu_results() {
    let config_a = sample_config(1);
    let config_b = sample_config(2);
    let inputs = [0.3f32, -0.4, 2.5];
    let expected_a = config_a.evaluate(&inputs);
    let expected_b = config_b.evaluate(&inputs);
    assert_ne!(expected_a, expected_b, "processes must differ");

    let mut sim = NpuSim::new(NpuParams::default());
    sim.configure(&config_a).unwrap();
    // Process A computes once.
    let got = sim.evaluate_invocation(&inputs).unwrap();
    assert_eq!(got, expected_a);

    // Context switch: OS saves A's configuration word stream.
    let n = sim.config_len().unwrap();
    let saved: Vec<u32> = (0..n).map(|_| sim.deq_config_word().unwrap()).collect();

    // Process B configures and runs.
    for w in config_b.encode() {
        sim.enq_config_word(w).unwrap();
    }
    let got_b = sim.evaluate_invocation(&inputs).unwrap();
    for (g, e) in got_b.iter().zip(&expected_b) {
        assert!((g - e).abs() < 1e-6);
    }

    // Switch back: restore A from the saved words.
    for w in saved {
        sim.enq_config_word(w).unwrap();
    }
    let got_a_again = sim.evaluate_invocation(&inputs).unwrap();
    assert_eq!(got_a_again, expected_a, "restored config must be identical");
}

/// The same flow driven entirely by IR programs (the loader/saver the
/// compiler emits), through the interpreter's NPU port.
#[test]
fn ir_level_save_and_restore() {
    let config = sample_config(7);
    let n_words = config.encoded_len();

    let mut program = Program::new();
    let loader = program.add_function(build_config_loader(&config));
    let saver = program.add_function(build_config_saver(n_words));
    let stub = program.add_function(build_invocation_stub(3, 2));

    let mut runtime = NpuRuntime::new(NpuParams::default());
    let mut sink = NullSink;

    // Configure via the generated enq.c loader.
    let mut interp = Interpreter::new(&program).with_memory(n_words);
    interp
        .run_full(loader, &[], &mut sink, Some(&mut runtime))
        .unwrap();
    assert!(runtime.is_configured());

    // Invoke once through the stub.
    let args = [Value::F(0.5), Value::F(0.0), Value::F(1.0)];
    let out = interp
        .run_full(stub, &args, &mut sink, Some(&mut runtime))
        .unwrap();
    let want = config.evaluate(&[0.5, 0.0, 1.0]);
    assert!((out.outputs[0].as_f32().unwrap() - want[0]).abs() < 1e-6);

    // Save via the generated deq.c saver: words land in data memory
    // (bit-preserving moves).
    interp
        .run_full(saver, &[], &mut sink, Some(&mut runtime))
        .unwrap();
    let words: Vec<u32> = interp.memory()[..n_words]
        .iter()
        .map(|f| f.to_bits())
        .collect();
    // The saved stream decodes to the original configuration.
    let decoded = NpuConfig::decode(&words).unwrap();
    assert_eq!(decoded, config);

    // And the generated restorer reconfigures a fresh NPU to identical
    // behaviour.
    let restorer = {
        // (built against the same program for id stability)
        build_config_restorer(n_words)
    };
    let mut program2 = Program::new();
    let restore_id = program2.add_function(restorer);
    let stub2 = program2.add_function(build_invocation_stub(3, 2));
    let mut fresh = NpuRuntime::new(NpuParams::default());
    let mut interp2 = Interpreter::new(&program2).with_memory(n_words);
    interp2.memory_mut()[..n_words].copy_from_slice(&interp.memory()[..n_words]);
    interp2
        .run_full(restore_id, &[], &mut sink, Some(&mut fresh))
        .unwrap();
    let out2 = interp2
        .run_full(stub2, &args, &mut sink, Some(&mut fresh))
        .unwrap();
    assert_eq!(out.outputs, out2.outputs, "restored NPU must match");
}

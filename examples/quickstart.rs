//! Quickstart: apply the Parrot transformation to your own function.
//!
//! This walks the full pipeline from the paper's Figure 1 — annotate,
//! observe, train, generate code, execute on the NPU — for a small
//! user-defined approximable function.
//!
//! Run with: `cargo run --release --example quickstart`

use approx_ir::{FunctionBuilder, Program};
use npu::estimate_latency;
use parrot::{CompileParams, ParrotCompiler, RegionSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -----------------------------------------------------------------
    // 1. Programming: write the candidate region and "annotate" it.
    //
    // The region must be pure, hot, approximable, and have fixed-size
    // inputs/outputs (paper Section 3.1). Ours is a little radial-basis
    // blend: f(x, y) = exp(-(x² + y²)) + 0.3 · sin(x · y).
    // -----------------------------------------------------------------
    let mut b = FunctionBuilder::new("blend", 2);
    let (x, y) = (b.param(0), b.param(1));
    let xx = b.fmul(x, x);
    let yy = b.fmul(y, y);
    let r2 = b.fadd(xx, yy);
    let neg = b.fneg(r2);
    let gauss = b.fexp(neg);
    let xy = b.fmul(x, y);
    let s = b.fsin(xy);
    let w = b.constf(0.3);
    let ripple = b.fmul(w, s);
    let out = b.fadd(gauss, ripple);
    b.ret(&[out]);

    let mut program = Program::new();
    let entry = program.add_function(b.build()?);
    let region = RegionSpec::new("blend", program, entry, 2, 1)?;
    println!("region `{}`:", region.name());
    println!("  static counts: {:?}", region.static_counts());

    // -----------------------------------------------------------------
    // 2. Observation inputs: representative samples of the input space
    //    (a test suite or random inputs, per paper Section 4.1).
    // -----------------------------------------------------------------
    let training: Vec<Vec<f32>> = (0..60)
        .flat_map(|i| {
            (0..60).map(move |j| vec![-2.0 + 4.0 * i as f32 / 59.0, -2.0 + 4.0 * j as f32 / 59.0])
        })
        .collect();
    println!("  observing {} executions…", training.len());

    // -----------------------------------------------------------------
    // 3. Compile: observation → topology search → training → codegen.
    // -----------------------------------------------------------------
    let compiler = ParrotCompiler::new(CompileParams::default());
    let compiled = compiler.compile(&region, &training)?;
    let best = &compiled.search_outcome().best;
    println!("  selected topology: {}", compiled.config().topology());
    println!("  test-split MSE:    {:.6}", best.test_mse);
    println!(
        "  NPU latency:       {} cycles/invocation",
        estimate_latency(compiled.config().topology(), compiled.npu_params())
    );
    println!(
        "  replacement stub:  {} instructions ({} enq.d + {} deq.d + ret)",
        compiled.invocation_stub().len(),
        region.n_inputs(),
        region.n_outputs()
    );
    println!(
        "  config stream:     {} words via enq.c",
        compiled.config().encoded_len()
    );

    // -----------------------------------------------------------------
    // 4. Execute: compare precise vs. NPU results on unseen inputs.
    // -----------------------------------------------------------------
    println!("\n  x      y      precise   npu       |error|");
    let mut worst = 0.0f32;
    for &(x, y) in &[
        (0.0f32, 0.0f32),
        (0.5, -0.5),
        (1.3, 0.7),
        (-1.2, 1.0),
        (0.33, 1.21),
    ] {
        let precise = region.evaluate(&[x, y])?[0];
        let approx = compiled.evaluate(&[x, y])[0];
        let err = (precise - approx).abs();
        worst = worst.max(err);
        println!("  {x:<6.2} {y:<6.2} {precise:<9.4} {approx:<9.4} {err:.4}");
    }
    println!("\n  worst sampled error: {worst:.4} — imprecise but acceptable,");
    println!("  and each invocation now costs a handful of queue instructions.");
    Ok(())
}

//! The paper's running example (Figure 2): Sobel edge detection with the
//! `sobel` function replaced by an NPU invocation.
//!
//! Runs the full application three ways — precise, NPU-accelerated, and
//! software-NN — and reports output quality, dynamic instruction counts,
//! and simulated cycles, then writes the edge maps as PGM images.
//!
//! Run with: `cargo run --release --example edge_detection`

use ann::{SearchParams, TrainParams};
use benchmarks::runner::{run_counting, run_timed};
use benchmarks::sobel::Sobel;
use benchmarks::{AppVariant, Benchmark, Scale};
use parrot::{quality, CompileParams, ParrotCompiler};
use std::fs;
use uarch::CoreConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale {
        image_dim: 128,
        ..Scale::small()
    };
    let bench = Sobel;

    // Parrot-transform the sobel function.
    println!("compiling the `sobel` region (observe → train → codegen)…");
    let params = CompileParams {
        search: SearchParams {
            train: TrainParams {
                epochs: 300,
                learning_rate: 0.05,
                ..TrainParams::default()
            },
            epoch_flops_budget: Some(500_000_000),
            ..SearchParams::default()
        },
        max_training_samples: 1_500,
        ..CompileParams::default()
    };
    let compiler = ParrotCompiler::new(params);
    let compiled = compiler.compile(&bench.region(), &bench.training_inputs(&scale))?;
    println!(
        "  topology {} (test MSE {:.5})",
        compiled.config().topology(),
        compiled.nn_mse()
    );

    // Run the application in each configuration.
    let precise_app = bench.build_app(&AppVariant::Precise, &scale);
    let (precise_out, precise_counts) = run_counting(&precise_app, &AppVariant::Precise)?;
    let (_, precise_stats, _) = run_timed(
        &precise_app,
        &AppVariant::Precise,
        CoreConfig::penryn_like(),
    )?;

    let npu_variant = AppVariant::Npu(&compiled);
    let npu_app = bench.build_app(&npu_variant, &scale);
    let (npu_out, npu_counts) = run_counting(&npu_app, &npu_variant)?;
    let (_, npu_stats, _) = run_timed(&npu_app, &npu_variant, CoreConfig::penryn_like())?;

    let reference = bench.extract_outputs(&precise_out.memory, &scale);
    let approx = bench.extract_outputs(&npu_out.memory, &scale);

    println!("\n                    precise      core+npu");
    println!(
        "dynamic insts       {:<12} {:<12}",
        precise_counts.total, npu_counts.total
    );
    println!(
        "  npu queue insts   {:<12} {:<12}",
        precise_counts.npu_queue, npu_counts.npu_queue
    );
    println!(
        "cycles              {:<12} {:<12}",
        precise_stats.cycles, npu_stats.cycles
    );
    println!(
        "speedup             {:.2}x",
        precise_stats.cycles as f64 / npu_stats.cycles as f64
    );
    println!(
        "image diff (RMSE)   {:.2}%",
        100.0 * quality::image_rmse(&reference, &approx, 1.0)
    );

    // Write both edge maps for visual inspection.
    fs::create_dir_all("target/examples")?;
    write_pgm(
        "target/examples/edges_precise.pgm",
        &reference,
        scale.image_dim,
    )?;
    write_pgm("target/examples/edges_npu.pgm", &approx, scale.image_dim)?;
    println!("\nwrote target/examples/edges_precise.pgm and edges_npu.pgm");
    Ok(())
}

/// Writes a grayscale `[0,1]` image as a binary PGM file.
fn write_pgm(path: &str, pixels: &[f32], dim: usize) -> std::io::Result<()> {
    let mut data = format!("P5\n{dim} {dim}\n255\n").into_bytes();
    data.extend(pixels.iter().map(|&v| (v.clamp(0.0, 1.0) * 255.0) as u8));
    fs::write(path, data)
}

//! Quality control in deployment (paper Section 8): combine the NPU with
//! an input-range guard and online error sampling.
//!
//! A deployed approximate accelerator faces inputs the training set never
//! covered. This example runs the `inversek2j` region on a drifting
//! workload — targets slowly move outside the trained envelope — and
//! shows how the two Section 8 mechanisms behave:
//!
//! * the [`GuardedRegion`] falls back to precise code for out-of-range
//!   inputs, keeping quality stable;
//! * the [`ErrorSampler`] notices the drift in the *unguarded* NPU
//!   results, the signal the paper says should trigger retraining.
//!
//! Run with: `cargo run --release --example guarded_quality`

use ann::{SearchParams, TrainParams};
use benchmarks::inversek2j::{forward_kinematics, inversek2j_reference, InverseK2j};
use benchmarks::{Benchmark, Scale};
use parrot::{CompileParams, ErrorSampler, GuardedRegion, ParrotCompiler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = InverseK2j;
    let region = bench.region();
    println!("compiling `inversek2j`…");
    let params = CompileParams {
        search: SearchParams {
            train: TrainParams {
                epochs: 400,
                learning_rate: 0.05,
                ..TrainParams::default()
            },
            epoch_flops_budget: Some(500_000_000),
            ..SearchParams::default()
        },
        max_training_samples: 2_000,
        ..CompileParams::default()
    };
    let compiled =
        ParrotCompiler::new(params).compile(&region, &bench.training_inputs(&Scale::paper()))?;
    println!(
        "  topology {} (test MSE {:.5})\n",
        compiled.config().topology(),
        compiled.nn_mse()
    );

    let mut guarded = GuardedRegion::new(&region, &compiled, 0.05);
    let mut sampler = ErrorSampler::new(&region, &compiled, 10);

    println!("phase        drift  guarded err  unguarded err  fallbacks  sampled err");
    for (phase, drift) in [("in-dist", 0.0f32), ("mild", 0.6), ("heavy", 1.3)] {
        let mut sum_g = 0.0f64;
        let mut sum_u = 0.0f64;
        let n = 500;
        for k in 0..n {
            // Workload drift: joint angles wander past the trained range.
            let t = k as f32 / n as f32;
            let th1 = 0.15 + 1.3 * t + drift;
            let th2 = 0.2 + 1.2 * (1.0 - t) + drift;
            let (x, y) = forward_kinematics(th1, th2);
            let (r1, r2) = inversek2j_reference(x, y);

            let g = guarded.evaluate(&[x, y])?;
            let _ = sampler.evaluate(&[x, y])?;
            let u = compiled.evaluate(&[x, y]);
            sum_g += rel(&[r1, r2], &g);
            sum_u += rel(&[r1, r2], &u);
        }
        println!(
            "{phase:<12} {drift:<6.1} {:<12.2} {:<14.2} {:<10} {:.3}",
            100.0 * sum_g / n as f64,
            100.0 * sum_u / n as f64,
            guarded.stats().fallbacks,
            sampler.mean_abs_error(),
        );
    }
    println!(
        "\nguard: {} NPU invocations, {} precise fallbacks ({:.1}% fallback rate)",
        guarded.stats().npu_invocations,
        guarded.stats().fallbacks,
        100.0 * guarded.stats().fallback_rate()
    );
    println!(
        "sampler: {} samples, worst observed output error {:.3} rad",
        sampler.samples(),
        sampler.max_abs_error()
    );
    println!("\nAs the workload drifts, the unguarded error climbs while the");
    println!("guarded error stays flat; the sampler's rising estimate is the");
    println!("signal the paper suggests should trigger network retraining.");
    Ok(())
}

fn rel(reference: &[f32], approx: &[f32]) -> f64 {
    reference
        .iter()
        .zip(approx)
        .map(|(&r, &a)| ((a - r).abs() / r.abs().max(0.05)) as f64)
        .sum::<f64>()
        / reference.len() as f64
}

//! Umbrella crate for the MICRO 2012 *Neural Acceleration for
//! General-Purpose Approximate Programs* reproduction.
//!
//! This package hosts the repository-level examples and cross-crate
//! integration tests; the functionality lives in the workspace crates,
//! re-exported here for convenience:
//!
//! * [`parrot`] — the Parrot transformation (observe → train → codegen)
//!   and quality control;
//! * [`ann`] — MLPs, backpropagation, topology search;
//! * [`approx_ir`] — the candidate-region IR and tracing interpreter;
//! * [`uarch`] — the out-of-order core model with NPU queue ISA;
//! * [`npu`] — the cycle-accurate neural processing unit;
//! * [`energy`] — the event-based 45 nm energy model;
//! * [`benchmarks`] — the six-application evaluation suite.
//!
//! Start with `examples/quickstart.rs`, or see README.md for the full
//! tour and `crates/bench` for the table/figure harness.

#![forbid(unsafe_code)]

pub use ann;
pub use approx_ir;
pub use benchmarks;
pub use energy;
pub use npu;
pub use parrot;
pub use uarch;

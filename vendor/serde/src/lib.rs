//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides a simplified but fully functional replacement built
//! around a self-describing [`Content`] tree:
//!
//! - [`Serialize`] / [`Deserialize`] traits converting types to and from
//!   [`Content`],
//! - `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//!   stub) for structs, tuple structs, and enums with unit/tuple/struct
//!   variants, using the same externally-tagged representation real serde
//!   uses for JSON,
//! - a [`json`] module that renders a [`Content`] tree to JSON text and
//!   parses it back.
//!
//! Only the API surface this workspace uses is implemented.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key/value map with preserved insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a [`Content::Map`].
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64`, coercing from `U64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, coercing from non-negative `I64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, coercing from integers and `Null` (NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced by deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Content`] tree.
    fn serialize(&self) -> Content;
}

/// Types reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Content`] tree.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i64().ok_or_else(|| {
                    DeError::msg(format!("expected integer, got {}", c.type_name()))
                })?;
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Content::I64(i),
                    Err(_) => Content::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v = c.as_u64().ok_or_else(|| {
                    DeError::msg(format!("expected unsigned integer, got {}", c.type_name()))
                })?;
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as f64;
                if v.is_finite() { Content::F64(v) } else { Content::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                c.as_f64().map(|v| v as $t).ok_or_else(|| {
                    DeError::msg(format!("expected float, got {}", c.type_name()))
                })
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::msg(format!(
                "expected sequence, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::deserialize(c)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| DeError::msg(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let expected = [$($idx,)+].len();
                        if items.len() != expected {
                            return Err(DeError::msg(format!(
                                "expected tuple of {expected}, got {}", items.len()
                            )));
                        }
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected sequence, got {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Map keys, rendered as JSON object keys (strings).
pub trait MapKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::msg(format!("invalid integer key `{s}`")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::msg(format!(
                "expected map, got {}",
                other.type_name()
            ))),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::msg(format!(
                "expected map, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

/// Support machinery used by `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Content, DeError, Deserialize};

    pub fn as_map<'a>(c: &'a Content, ty: &str) -> Result<&'a [(String, Content)], DeError> {
        match c {
            Content::Map(entries) => Ok(entries),
            other => Err(DeError::msg(format!(
                "{ty}: expected map, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_seq<'a>(c: &'a Content, ty: &str) -> Result<&'a [Content], DeError> {
        match c {
            Content::Seq(items) => Ok(items),
            other => Err(DeError::msg(format!(
                "{ty}: expected sequence, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn field<T: Deserialize>(m: &[(String, Content)], key: &str) -> Result<T, DeError> {
        let entry = m
            .iter()
            .find(|(k, _)| k == key)
            .ok_or_else(|| DeError::msg(format!("missing field `{key}`")))?;
        T::deserialize(&entry.1).map_err(|e| DeError::msg(format!("field `{key}`: {}", e.0)))
    }

    pub fn seq_field<T: Deserialize>(s: &[Content], idx: usize) -> Result<T, DeError> {
        let item = s
            .get(idx)
            .ok_or_else(|| DeError::msg(format!("missing tuple element {idx}")))?;
        T::deserialize(item)
    }
}

//! JSON text rendering and parsing for the [`Content`](crate::Content) tree.

use crate::{Content, DeError, Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), None, 0);
    out
}

/// Serializes a value to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), Some(2), 0);
    out
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, DeError> {
    T::deserialize(&parse(s)?)
}

/// Parses JSON text into a [`Content`] tree.
pub fn parse(s: &str) -> Result<Content, DeError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, DeError> {
        match self.peek() {
            None => Err(DeError::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(DeError::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(DeError::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(DeError::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(DeError::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(DeError::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| DeError::msg("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(DeError::msg(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(DeError::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| DeError::msg(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else {
            // Integer too large for 64 bits: fall back to float.
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| DeError::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "12", "-3", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v), text);
        }
    }

    #[test]
    fn round_trips_nested() {
        let text = r#"{"a":[1,2.5,null],"b":{"c":"x\ny"}}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v), text);
    }

    #[test]
    fn pretty_parses_back() {
        let v = parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}

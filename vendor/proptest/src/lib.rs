//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, range and `any::<T>()` strategies,
//! tuples of strategies, [`collection::vec`], `array::uniformN`, and
//! [`Strategy::prop_map`].
//!
//! Inputs are sampled uniformly from a per-test deterministic generator
//! (seeded from the test name), so failures reproduce across runs. There
//! is no shrinking: a failing case reports the iteration index and the
//! assertion message.

#![forbid(unsafe_code)]

/// Test-runner machinery used by the macros.
pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 generator for test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `[0, bound)`.
        pub fn index(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }
    }

    /// Why a property-test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed — the property is violated.
        Fail(String),
        /// The input was rejected by `prop_assume!` — skip, don't fail.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates an input rejection with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

use test_runner::TestRng;

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                *self.start() + (*self.end() - *self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide magnitude range.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.index(61) as i32 - 30;
        (mantissa * 2f64.powi(exp)) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.index(121) as i32 - 60;
        mantissa * 2f64.powi(exp)
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: fixed or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.index(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`uniformN`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($fn_name:ident => $n:literal),*) => {$(
            /// An array of independently sampled elements.
            pub fn $fn_name<S: Strategy>(s: S) -> UniformArray<S, $n> {
                UniformArray(s)
            }
        )*};
    }

    uniform_fns!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform7 => 7, uniform8 => 8, uniform9 => 9,
        uniform10 => 10, uniform16 => 16, uniform18 => 18, uniform32 => 32
    );
}

/// The usual glob import.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};
}

/// Runs each contained test function over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut __rejects: u32 = 0;
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __config.cases * 8,
                            "too many inputs rejected by prop_assume! ({__rejects})",
                        );
                    }
                    ::std::result::Result::Err(e) => {
                        panic!("property failed on case {}/{}: {}", __case + 1, __config.cases, e);
                    }
                }
            }
        }
    )*};
}

/// Rejects the current input inside a [`proptest!`] body; the case is
/// skipped rather than counted as a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

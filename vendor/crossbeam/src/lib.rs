//! Offline stand-in for `crossbeam`, providing [`scope`] on top of
//! `std::thread::scope` (std has had scoped threads since 1.63, so the
//! real crate's unsafe machinery is unnecessary here).

#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle; closures spawned through it may borrow from the
/// enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope itself so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope for spawning borrowing threads; joins them all before
/// returning.
///
/// Unlike crossbeam, a panicking child propagates its panic on join rather
/// than surfacing it in the `Err` variant — callers that `.expect()` the
/// result behave identically.
///
/// # Errors
///
/// Never returns `Err`; the type matches crossbeam's signature.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias used by some call sites.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let sum = std::sync::Mutex::new(0u64);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let partial: u64 = chunk.iter().sum();
                    *sum.lock().unwrap() += partial;
                });
            }
        })
        .unwrap();
        assert_eq!(sum.into_inner().unwrap(), 10);
    }
}

//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the macro walks
//! the raw token stream to recover the shape of the type — struct with named
//! fields, tuple struct, unit struct, or enum with unit/tuple/struct
//! variants — and emits impls of the stub's `Serialize`/`Deserialize`
//! traits using serde's externally-tagged enum representation.
//!
//! Generic types and `#[serde(...)]` attributes are not supported; the
//! workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_input(input: TokenStream) -> Input {
    let mut it: Tokens = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (doc comments included): skip the [...] group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip optional (crate)/(super) restriction.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut it);
            }
            Some(other) => panic!("serde stub derive: unexpected token `{other}`"),
            None => panic!("serde stub derive: no struct or enum found"),
        }
    }
}

fn parse_struct(it: &mut Tokens) -> Input {
    let name = expect_ident(it);
    reject_generics(it, &name);
    let kind = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Kind::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
        other => panic!("serde stub derive: unexpected struct body for {name}: {other:?}"),
    };
    Input { name, kind }
}

fn parse_enum(it: &mut Tokens) -> Input {
    let name = expect_ident(it);
    reject_generics(it, &name);
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde stub derive: expected enum body for {name}: {other:?}"),
    };
    let mut variants = Vec::new();
    let mut vt: Tokens = body.into_iter().peekable();
    loop {
        // Skip attributes / doc comments before the variant.
        while let Some(TokenTree::Punct(p)) = vt.peek() {
            if p.as_char() == '#' {
                vt.next();
                vt.next();
            } else {
                break;
            }
        }
        let vname = match vt.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stub derive: unexpected token in enum {name}: {other:?}"),
        };
        let fields = match vt.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                vt.next();
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                vt.next();
                VariantFields::Named(fields)
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut depth = 0i32;
        while let Some(tt) = vt.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    vt.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    vt.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    vt.next();
                }
                _ => {
                    vt.next();
                }
            }
        }
        variants.push(Variant {
            name: vname,
            fields,
        });
    }
    Input {
        name,
        kind: Kind::Enum(variants),
    }
}

fn expect_ident(it: &mut Tokens) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected identifier, got {other:?}"),
    }
}

fn reject_generics(it: &mut Tokens, name: &str) {
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported");
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it: Tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match it.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        }
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:`, got {other:?}"),
        }
        // Consume the type up to a top-level comma (angle-bracket aware;
        // commas inside (), [], {} are hidden by token groups).
        let mut depth = 0i32;
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    it.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    it.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
                None => break,
            }
        }
    }
    fields
}

/// Counts comma-separated fields in a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                saw_tokens = true;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Unit => "::serde::Content::Null".to_string(),
        Kind::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),")
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        Kind::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i}),"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{items}])")
        }
        Kind::Enum(variants) => {
            let arms: String = variants.iter().map(|v| gen_ser_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_ser_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => {
            format!("{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),")
        }
        VariantFields::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Content::Map(::std::vec![(\
                 \"{vname}\".to_string(), ::serde::Serialize::serialize(__f0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b}),"))
                .collect();
            format!(
                "{name}::{vname}({binds}) => ::serde::Content::Map(::std::vec![(\
                     \"{vname}\".to_string(), ::serde::Content::Seq(::std::vec![{items}]))]),",
                binds = binds.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize({f})),"))
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                     \"{vname}\".to_string(), \
                     ::serde::Content::Map(::std::vec![{entries}]))]),"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__m, \"{f}\")?,"))
                .collect();
            format!(
                "let __m = ::serde::__private::as_map(__c, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__c)?))")
        }
        Kind::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::__private::seq_field(__s, {i})?,"))
                .collect();
            format!(
                "let __s = ::serde::__private::as_seq(__c, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Kind::Enum(variants) => gen_de_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn gen_de_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                v = v.name
            )
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match &v.fields {
            VariantFields::Unit => None,
            VariantFields::Tuple(1) => Some(format!(
                "\"{v}\" => ::std::result::Result::Ok(\
                     {name}::{v}(::serde::Deserialize::deserialize(__v)?)),",
                v = v.name
            )),
            VariantFields::Tuple(n) => {
                let inits: String = (0..*n)
                    .map(|i| format!("::serde::__private::seq_field(__s, {i})?,"))
                    .collect();
                Some(format!(
                    "\"{v}\" => {{\n\
                         let __s = ::serde::__private::as_seq(__v, \"{name}::{v}\")?;\n\
                         ::std::result::Result::Ok({name}::{v}({inits}))\n\
                     }},",
                    v = v.name
                ))
            }
            VariantFields::Named(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__private::field(__m, \"{f}\")?,"))
                    .collect();
                Some(format!(
                    "\"{v}\" => {{\n\
                         let __m = ::serde::__private::as_map(__v, \"{name}::{v}\")?;\n\
                         ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                     }},",
                    v = v.name
                ))
            }
        })
        .collect();
    format!(
        "match __c {{\n\
             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                     {tagged_arms}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::msg(\
                         format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
             }},\n\
             _ => ::std::result::Result::Err(::serde::DeError::msg(\
                 \"invalid {name} representation\")),\n\
         }}"
    )
}

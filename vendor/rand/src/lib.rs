//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset of the API this workspace uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`seq::SliceRandom::shuffle`] — backed by a deterministic SplitMix64
//! generator. Stream values differ from the real crate, but every consumer
//! here seeds explicitly and only requires determinism, not a specific
//! stream.

#![forbid(unsafe_code)]

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-generation surface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of a standard type (`f32`/`f64` are
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Standard-distribution sampling (the `gen()` family).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`]. Generic over the element type so
/// the call site's expected type drives literal inference, as in real rand.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_range_float!(f32, f64);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate seeds.
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.) — passes BigCrush, one add + two
            // xor-shift-multiplies per output.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias: the same generator serves as the small RNG.
    pub type SmallRng = StdRng;
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// `rand::thread_rng()` stand-in: deterministic, process-local.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    SeedableRng::seed_from_u64(0x5eed ^ nanos)
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f32 = a.gen_range(-1.0f32..1.0);
            let y: f32 = b.gen_range(-1.0f32..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
            let n = a.gen_range(3usize..10);
            b.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

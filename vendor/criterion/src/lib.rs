//! Offline stand-in for `criterion`.
//!
//! A small wall-clock benchmark harness exposing the API surface this
//! workspace uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark is calibrated so one sample takes roughly
//! `CRITERION_SAMPLE_MS` milliseconds (default 10), then
//! `CRITERION_SAMPLES` samples (default 15) are collected and the median,
//! minimum, and maximum ns/iteration are printed. Positional command-line
//! arguments act as substring filters on benchmark names.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batches are always per-iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Measurement driver passed to benchmark closures.
pub struct Bencher {
    sample_target: Duration,
    samples: usize,
    result: Option<Stats>,
}

/// Summary of one benchmark's samples, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median across samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl Bencher {
    fn new(sample_target: Duration, samples: usize) -> Self {
        Bencher {
            sample_target,
            samples,
            result: None,
        }
    }

    /// Measures `routine` called in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample?
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.sample_target / 4 || iters >= 1 << 30 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let per_sample = ((self.sample_target.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            sample_ns.push(t0.elapsed().as_secs_f64() * 1e9 / per_sample as f64);
        }
        self.result = Some(summarize(sample_ns));
    }

    /// Measures `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with one timed call.
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let per_iter = t0.elapsed().as_secs_f64().max(1e-9);
        let per_sample = ((self.sample_target.as_secs_f64() / per_iter) as u64).clamp(1, 10_000);
        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut measured = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                measured += t0.elapsed();
            }
            sample_ns.push(measured.as_secs_f64() * 1e9 / per_sample as f64);
        }
        self.result = Some(summarize(sample_ns));
    }
}

fn summarize(mut sample_ns: Vec<f64>) -> Stats {
    sample_ns.sort_by(f64::total_cmp);
    let median_ns = sample_ns[sample_ns.len() / 2];
    Stats {
        median_ns,
        min_ns: sample_ns[0],
        max_ns: *sample_ns.last().unwrap(),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark registry and runner.
pub struct Criterion {
    filters: Vec<String>,
    sample_target: Duration,
    samples: usize,
    /// Results of every benchmark run so far: `(name, stats)`.
    pub results: Vec<(String, Stats)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        let sample_ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10u64);
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15usize);
        Criterion {
            filters,
            sample_target: Duration::from_millis(sample_ms),
            samples,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.matches(name) {
            return self;
        }
        let mut b = Bencher::new(self.sample_target, self.samples);
        f(&mut b);
        if let Some(stats) = b.result {
            println!(
                "{name:<40} median {:>12}/iter (min {}, max {})",
                format_ns(stats.median_ns),
                format_ns(stats.min_ns),
                format_ns(stats.max_ns),
            );
            self.results.push((name.to_string(), stats));
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- {name} --");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// If `CRITERION_JSON` names a file, appends one JSON line per result
    /// (`{"name": ..., "median_ns": ..., "min_ns": ..., "max_ns": ...}`)
    /// so CI jobs and the perf-baseline script can consume the numbers
    /// without parsing the human-readable table. Called automatically at
    /// the end of each [`criterion_group!`] function.
    pub fn export_json_if_requested(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        use std::io::Write;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path);
        let mut file = match file {
            Ok(f) => f,
            Err(e) => {
                eprintln!("criterion: cannot open CRITERION_JSON={path}: {e}");
                return;
            }
        };
        for (name, stats) in &self.results {
            // Names contain only identifier characters and '/', so plain
            // string interpolation is valid JSON here.
            let _ = writeln!(
                file,
                "{{\"name\":\"{name}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
                stats.median_ns, stats.min_ns, stats.max_ns
            );
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.export_json_if_requested();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `bytes`: a growable byte buffer backed by
//! `Vec<u8>` with the `BufMut` writer methods this workspace uses.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Byte sink trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Appends a slice (also available through [`BufMut`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// The contents as an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Freezes into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.0
    }
}

/// Immutable byte buffer (stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_surface() {
        let mut b = BytesMut::new();
        b.put_u8(0xFF);
        b.put_u16(0xD8E0);
        b.put_slice(b"JFIF");
        assert_eq!(&b[..3], &[0xFF, 0xD8, 0xE0]);
        assert_eq!(b.len(), 7);
        assert_eq!(b.to_vec().len(), 7);
    }
}

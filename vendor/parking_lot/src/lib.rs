//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's poison-free API shape.

#![forbid(unsafe_code)]

use std::sync;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock. A poisoned std mutex (a holder panicked) is
    /// recovered, matching parking_lot's no-poisoning semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}

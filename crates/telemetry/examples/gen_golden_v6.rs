//! Regenerates `tests/data/run_report_v6.json`, the golden file pinning
//! the current report schema. Run from the crate directory after an
//! intentional schema change:
//!
//! ```text
//! cargo run -p telemetry --example gen_golden_v6
//! ```
//!
//! The values mirror the v5 golden so schema diffs stay readable, plus
//! the v6 `serving` section.

use telemetry::{Histogram, PhaseTiming, PrecisionRow, RunReport, TenantServing};

fn main() {
    let mut report = RunReport::new("parrot-run", "sweep", "fast");
    report.wall_clock_us = 123_456;
    for (name, us) in [
        ("verify", 120),
        ("observe", 2_000),
        ("topology_search", 100_000),
        ("codegen", 450),
    ] {
        report.push_phase(PhaseTiming {
            name: name.into(),
            elapsed_us: us,
        });
    }

    report.lint.record("warning", "dead-store");
    report.lint.record("info", "unproven-scratch-bounds");
    report.lint.record("info", "unproven-scratch-bounds");
    report.lint.record("note", "proven-scratch-bounds");
    report.lint.record("note", "proven-scratch-bounds");
    report.lint.record("note", "proven-loop-bounds");

    report.precision.bounded = true;
    report.precision.datapath_int_bits = Some(9);
    report.precision.datapath_frac_bits = Some(23);
    report.precision.values = vec![
        PrecisionRow {
            name: "in0".into(),
            lo: Some(0.0),
            hi: Some(255.0),
            may_be_nan: false,
            int_bits: Some(9),
            frac_bits: Some(16),
        },
        PrecisionRow {
            name: "out0".into(),
            lo: Some(-128.0),
            hi: Some(127.0),
            may_be_nan: false,
            int_bits: Some(8),
            frac_bits: Some(17),
        },
        PrecisionRow {
            name: "intermediates".into(),
            lo: Some(-255.0),
            hi: Some(255.0),
            may_be_nan: false,
            int_bits: Some(9),
            frac_bits: Some(23),
        },
    ];

    report.scheduler.workers = 4;
    report.scheduler.jobs_total = 12;
    report.scheduler.jobs_executed = 9;
    report.scheduler.jobs_from_cache = 3;
    report.scheduler.cache_hits = 3;
    report.scheduler.cache_misses = 9;
    report.scheduler.cache_writes = 9;
    report.scheduler.max_queue_depth = 6;
    report.scheduler.wall_clock_us = 123_456;
    for (stage, us) in [
        ("observe", 2_000),
        ("report", 75),
        ("sim_cpu", 9_000),
        ("sim_npu", 4_200),
        ("train", 100_000),
    ] {
        report.scheduler.stage_wall_us.insert(stage.into(), us);
    }

    report.metrics.add("ann.search.candidates", 3);
    report.metrics.add("lint.infos", 2);
    report.metrics.add("lint.notes", 3);
    report.metrics.add("lint.warnings", 1);
    report.metrics.add("npu.macs", 5_120);
    report.metrics.add("scheduler.jobs_from_cache", 3);
    report.metrics.add("scheduler.jobs_total", 12);
    report.metrics.add("uarch.baseline.cycles", 900_000);
    report.metrics.add("uarch.baseline.committed", 1_350_000);
    report.metrics.set_gauge("npu.occupancy", 0.82);
    report.metrics.set_gauge("scheduler.cache_hit_rate", 0.25);
    report.metrics.set_gauge("uarch.baseline.ipc", 1.5);
    report.metrics.observe("ann.search.test_mse", 0.1);
    report.metrics.observe("ann.search.test_mse", 0.4);

    let mut cycles = Histogram::default();
    for latency in [60, 60, 62, 64, 64, 64, 70, 96, 128, 250] {
        cycles.observe(latency as f64);
    }
    report.push_distribution("npu.invocation_cycles", &cycles);

    let mut error = Histogram::default();
    for e in [0.0, 0.001, 0.004, 0.012, 0.02] {
        error.observe(e);
    }
    report.push_distribution("region.output_error", &error);

    report.serving.requests_total = 1_000;
    report.serving.completed = 990;
    report.serving.npu_served = 900;
    report.serving.precise_served = 90;
    report.serving.rejected = 8;
    report.serving.timed_out = 2;
    report.serving.protocol_errors = 0;
    report.serving.batches = 70;
    report.serving.batch_occupancy_mean = 14.142857142857142;
    report.serving.context_switches = 35;
    report.serving.context_switch_cycles = 12_670;
    report.serving.invocations_per_s = 125_000.0;
    report.serving.fairness_index = 0.998;
    report.serving.tenants.insert(
        "alpha".into(),
        TenantServing {
            weight: 2,
            completed: 660,
            npu_served: 600,
            precise_served: 60,
            rejected: 5,
            timed_out: 1,
            p50_us: 120.0,
            p99_us: 900.0,
            p999_us: 2_400.0,
        },
    );
    report.serving.tenants.insert(
        "beta".into(),
        TenantServing {
            weight: 1,
            completed: 330,
            npu_served: 300,
            precise_served: 30,
            rejected: 3,
            timed_out: 1,
            p50_us: 150.0,
            p99_us: 1_100.0,
            p999_us: 2_900.0,
        },
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    std::fs::create_dir_all(&path).unwrap();
    let file = path.join("run_report_v6.json");
    std::fs::write(&file, report.to_json()).unwrap();
    println!("wrote {}", file.display());
}

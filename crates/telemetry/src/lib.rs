//! Workspace-wide observability: structured causal tracing, a unified
//! metrics registry, and JSON run reports.
//!
//! Three layers, usable independently:
//!
//! 1. **Events** — typed records ([`EventKind`]) emitted through a global
//!    collector to pluggable [`Sink`]s (stderr pretty-printer, JSONL
//!    file, Chrome trace-event export, in-memory capture) and retained in
//!    a bounded ring buffer. Emission is gated on a single relaxed atomic
//!    load, so instrumentation left in simulator hot loops is effectively
//!    free while the level is [`Level::Off`] (the default). Every event
//!    carries a dense per-thread ordinal, and [`Span`]s carry
//!    process-unique span/parent ids propagated through a thread-local
//!    context stack — across threads via [`Handoff`] tokens — so a
//!    multi-worker sweep serializes into a causally linked trace.
//! 2. **Metrics** — a [`MetricsRegistry`] of namespaced counters, gauges,
//!    and log-bucketed [`Histogram`]s (p50/p90/p99/p99.9) that every
//!    subsystem (core simulator, NPU, trainer) exports into under its own
//!    prefix, with merge and serde support. A process-global sample
//!    registry ([`record_sample`]/[`take_samples`]) collects wall-clock
//!    distributions (training epoch time, cache lookup time) that belong
//!    only in the sweep-level report, never in deterministic per-job
//!    artifacts.
//! 3. **Reports** — a [`RunReport`] JSON schema combining wall-clock,
//!    per-phase timings, a metrics registry, and percentile
//!    [`Distribution`]s; the bench binaries write one per benchmark under
//!    `results/`.
//!
//! # Emitting
//!
//! ```
//! use telemetry::{EventKind, Level};
//!
//! let capture = telemetry::capture();
//! telemetry::set_level(Level::Info);
//! {
//!     let _span = telemetry::span("example", "setup");
//!     telemetry::emit(Level::Info, "example", || EventKind::Message {
//!         text: "ready".into(),
//!     });
//! } // span emits PhaseEnd here
//! assert_eq!(capture.events().len(), 3);
//! telemetry::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod report;
mod ring;
mod sink;
mod span;
mod trace;

pub use event::{Event, EventKind, Level};
pub use metrics::{Histogram, MetricsRegistry};
pub use report::{
    Distribution, LintSummary, PhaseTiming, PrecisionRow, PrecisionSummary, RunReport,
    SchedulerSummary, ServingSummary, TenantServing, SCHEMA_VERSION,
};
pub use ring::RingBuffer;
pub use sink::{CaptureSink, JsonlSink, NullSink, Sink, StderrSink};
pub use span::{ContextGuard, Handoff, Span};
pub use trace::ChromeTraceSink;

pub(crate) mod collector {
    use super::*;
    use parking_lot::Mutex;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::time::Instant;

    /// Collector verbosity; `0` = off. Relaxed ordering suffices: the
    /// check is a pure fast-path filter and sinks synchronize via the
    /// state lock.
    static LEVEL: AtomicU8 = AtomicU8::new(0);

    static STATE: Mutex<Option<State>> = Mutex::new(None);

    /// Wall-clock sample registry, separate from the event path so
    /// subsystems can record timing distributions without any sink
    /// installed. Drained by [`take_samples`].
    static SAMPLES: Mutex<Option<MetricsRegistry>> = Mutex::new(None);

    /// Next dense thread ordinal. `std::thread::ThreadId` integers are
    /// unstable, so we hand out our own in first-emission order.
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static THREAD_ORDINAL: Cell<Option<u64>> = const { Cell::new(None) };
    }

    pub(crate) fn thread_ordinal() -> u64 {
        THREAD_ORDINAL.with(|slot| match slot.get() {
            Some(id) => id,
            None => {
                let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
                slot.set(Some(id));
                id
            }
        })
    }

    const DEFAULT_RING_CAPACITY: usize = 1024;

    pub(crate) struct State {
        sinks: Vec<Box<dyn Sink>>,
        ring: RingBuffer,
        seq: u64,
        epoch: Instant,
    }

    impl State {
        fn new() -> State {
            State {
                sinks: Vec::new(),
                ring: RingBuffer::new(DEFAULT_RING_CAPACITY),
                seq: 0,
                epoch: Instant::now(),
            }
        }
    }

    fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
        let mut guard = STATE.lock();
        f(guard.get_or_insert_with(State::new))
    }

    pub(crate) fn set_level(level: Level) {
        LEVEL.store(level as u8, Ordering::Relaxed);
    }

    pub(crate) fn level() -> Level {
        Level::from_u8(LEVEL.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn enabled(level: Level) -> bool {
        level as u8 <= LEVEL.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn emit(level: Level, target: &str, build: impl FnOnce() -> EventKind) {
        if !enabled(level) {
            return;
        }
        let kind = build();
        let thread = thread_ordinal();
        with_state(|state| {
            state.seq += 1;
            let event = Event {
                seq: state.seq,
                elapsed_us: state.epoch.elapsed().as_micros() as u64,
                thread,
                level,
                target: target.to_string(),
                kind,
            };
            for sink in &state.sinks {
                sink.record(&event);
            }
            state.ring.push(event);
        });
    }

    pub(crate) fn add_sink(sink: Box<dyn Sink>) {
        with_state(|state| state.sinks.push(sink));
    }

    pub(crate) fn flush_sinks() {
        with_state(|state| {
            for sink in &state.sinks {
                sink.flush();
            }
        });
    }

    pub(crate) fn recent_events() -> Vec<Event> {
        with_state(|state| state.ring.snapshot())
    }

    pub(crate) fn set_ring_capacity(capacity: usize) {
        with_state(|state| state.ring = RingBuffer::new(capacity));
    }

    pub(crate) fn record_sample(key: &str, value: f64) {
        SAMPLES
            .lock()
            .get_or_insert_with(MetricsRegistry::new)
            .observe(key, value);
    }

    pub(crate) fn take_samples() -> MetricsRegistry {
        SAMPLES.lock().take().unwrap_or_default()
    }

    pub(crate) fn reset() {
        LEVEL.store(0, Ordering::Relaxed);
        *STATE.lock() = None;
        *SAMPLES.lock() = None;
    }
}

/// Sets the global collector level. Events above it are dropped before
/// construction.
pub fn set_level(level: Level) {
    collector::set_level(level);
}

/// The current collector level.
pub fn level() -> Level {
    collector::level()
}

/// Whether events at `level` would currently be recorded. One relaxed
/// atomic load — safe to call in simulator hot loops.
#[inline]
pub fn enabled(level: Level) -> bool {
    collector::enabled(level)
}

/// Records an event if `level` is enabled. `build` runs only when the
/// event will actually be recorded, so payload construction (formatting,
/// cloning) costs nothing while tracing is off.
#[inline]
pub fn emit(level: Level, target: &str, build: impl FnOnce() -> EventKind) {
    collector::emit(level, target, build);
}

/// Starts a phase timer that emits `PhaseStart` now and `PhaseEnd` when
/// finished or dropped. The span measures time regardless of the level,
/// so run reports get phase timings even with tracing off. The new span
/// nests under the innermost span open on this thread (or adopted via
/// [`Handoff`]).
pub fn span(target: &'static str, phase: &str) -> Span {
    Span::start(target, phase)
}

/// The id of the innermost span open on the calling thread, or 0.
pub fn current_span() -> u64 {
    span::current_span()
}

/// Captures the current span context into a [`Handoff`] token (emitting
/// `FlowBegin`) for adoption on another thread.
pub fn handoff(target: &'static str) -> Handoff {
    Handoff::capture(target)
}

/// The dense ordinal of the calling thread, assigned on first use.
pub fn thread_ordinal() -> u64 {
    collector::thread_ordinal()
}

/// Records one wall-clock sample into the process-global sample registry
/// under `key`. Use for timing distributions (epoch time, cache lookup
/// time) that must stay out of deterministic per-job artifacts.
pub fn record_sample(key: &str, value: f64) {
    collector::record_sample(key, value);
}

/// Drains and returns the process-global sample registry.
pub fn take_samples() -> MetricsRegistry {
    collector::take_samples()
}

/// Registers a sink receiving every admitted event from now on.
pub fn add_sink(sink: Box<dyn Sink>) {
    collector::add_sink(sink);
}

/// Flushes every installed sink (finalizing file formats that need a
/// footer, like the Chrome trace export). Call once before process exit.
pub fn flush_sinks() {
    collector::flush_sinks();
}

/// Installs the stderr pretty-printing sink.
pub fn install_stderr_sink() {
    add_sink(Box::new(StderrSink));
}

/// Installs a JSONL file sink writing to `path`.
///
/// # Errors
///
/// Fails if the file cannot be created.
pub fn install_jsonl_sink(path: &std::path::Path) -> std::io::Result<()> {
    add_sink(Box::new(JsonlSink::create(path)?));
    Ok(())
}

/// Installs a Chrome trace-event sink writing to `path` (open the file in
/// Perfetto or `chrome://tracing`). Call [`flush_sinks`] before exit to
/// finalize the JSON.
///
/// # Errors
///
/// Fails if the file cannot be created.
pub fn install_trace_sink(path: &std::path::Path) -> std::io::Result<()> {
    add_sink(Box::new(ChromeTraceSink::create(path)?));
    Ok(())
}

/// Installs an in-memory capture sink and returns a handle to read it —
/// the test-facing sink.
pub fn capture() -> CaptureSink {
    let sink = CaptureSink::new();
    add_sink(Box::new(sink.clone()));
    sink
}

/// The most recent events retained by the collector's ring buffer,
/// oldest first.
pub fn recent_events() -> Vec<Event> {
    collector::recent_events()
}

/// Replaces the ring buffer with one of the given capacity (discarding
/// retained events).
pub fn set_ring_capacity(capacity: usize) {
    collector::set_ring_capacity(capacity);
}

/// Returns the collector to its initial state: level off, no sinks, an
/// empty ring, empty samples. Intended for tests that must not observe
/// each other.
pub fn reset() {
    collector::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global and `cargo test` runs tests
    // concurrently, so the tests below share one exclusive lock.
    static GUARD: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn disabled_level_drops_events_without_building_them() {
        let _g = GUARD.lock();
        reset();
        let cap = capture();
        let mut built = false;
        emit(Level::Info, "test", || {
            built = true;
            EventKind::Message { text: "x".into() }
        });
        assert!(!built, "payload must not be built while level is off");
        assert!(cap.events().is_empty());
        reset();
    }

    #[test]
    fn events_reach_sinks_and_ring_in_order() {
        let _g = GUARD.lock();
        reset();
        set_level(Level::Debug);
        let cap = capture();
        emit(Level::Info, "a", || EventKind::Message { text: "1".into() });
        emit(Level::Trace, "a", || EventKind::Message {
            text: "no".into(),
        });
        emit(Level::Debug, "b", || EventKind::Message {
            text: "2".into(),
        });
        let got = cap.events();
        assert_eq!(got.len(), 2, "trace event must be filtered at debug level");
        assert!(got[0].seq < got[1].seq);
        assert_eq!(recent_events().len(), 2);
        reset();
    }

    #[test]
    fn span_emits_phase_pair_and_reports_timing() {
        let _g = GUARD.lock();
        reset();
        set_level(Level::Info);
        let cap = capture();
        let timing = span("test", "work").finish();
        assert_eq!(timing.name, "work");
        let got = cap.events();
        assert_eq!(got.len(), 2);
        match (&got[0].kind, &got[1].kind) {
            (
                EventKind::PhaseStart {
                    span: s0,
                    parent: p0,
                    ..
                },
                EventKind::PhaseEnd {
                    phase,
                    span: s1,
                    parent: p1,
                    aborted,
                    ..
                },
            ) => {
                assert_eq!(phase, "work");
                assert_eq!(s0, s1, "start/end must share the span id");
                assert_ne!(*s0, 0);
                assert_eq!(p0, p1);
                assert!(!aborted);
            }
            other => panic!("expected PhaseStart + PhaseEnd, got {other:?}"),
        }
        reset();
    }

    #[test]
    fn spans_measure_time_even_when_tracing_is_off() {
        let _g = GUARD.lock();
        reset();
        let span = span("test", "quiet");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let timing = span.finish();
        assert!(
            timing.elapsed_us >= 1_000,
            "elapsed = {}",
            timing.elapsed_us
        );
        reset();
    }

    #[test]
    fn span_dropped_during_unwind_emits_aborted_end_once() {
        let _g = GUARD.lock();
        reset();
        set_level(Level::Info);
        let cap = capture();
        let result = std::panic::catch_unwind(|| {
            let _span = span("test", "doomed");
            panic!("job body exploded");
        });
        assert!(result.is_err());
        let ends: Vec<_> = cap
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::PhaseEnd { phase, aborted, .. } => Some((phase, aborted)),
                _ => None,
            })
            .collect();
        assert_eq!(ends.len(), 1, "PhaseEnd must be emitted exactly once");
        assert_eq!(ends[0].0, "doomed");
        assert!(ends[0].1, "an unwound span must be marked aborted");
        assert_eq!(current_span(), 0, "context stack must be unwound");
        reset();
    }

    #[test]
    fn handoff_emits_flow_pair_and_links_parents() {
        let _g = GUARD.lock();
        reset();
        set_level(Level::Info);
        let cap = capture();
        let sweep = span("test", "sweep");
        let sweep_id = sweep.id();
        let token = handoff("test");
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ctx = token.adopt("test");
                let job = span("test", "job");
                assert_eq!(job.parent(), sweep_id);
                job.finish();
            });
        });
        sweep.finish();
        let events = cap.events();
        let flow_begin = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::FlowBegin { .. }))
            .expect("FlowBegin");
        let flow_end = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::FlowEnd { .. }))
            .expect("FlowEnd");
        assert_ne!(
            flow_begin.thread, flow_end.thread,
            "flow must cross threads"
        );
        let job_end = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::PhaseEnd { phase, parent, .. } if phase == "job" => Some(*parent),
                _ => None,
            })
            .expect("job PhaseEnd");
        assert_eq!(job_end, sweep_id, "worker-side span must link to sweep");
        reset();
    }

    #[test]
    fn samples_registry_accumulates_and_drains() {
        let _g = GUARD.lock();
        reset();
        record_sample("ann.train.epoch_us", 100.0);
        record_sample("ann.train.epoch_us", 300.0);
        let reg = take_samples();
        let h = reg.histogram("ann.train.epoch_us").unwrap();
        assert_eq!(h.count, 2);
        assert!(take_samples().is_empty(), "take must drain");
        reset();
    }
}

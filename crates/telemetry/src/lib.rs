//! Workspace-wide observability: structured tracing, a unified metrics
//! registry, and JSON run reports.
//!
//! Three layers, usable independently:
//!
//! 1. **Events** — typed records ([`EventKind`]) emitted through a global
//!    collector to pluggable [`Sink`]s (stderr pretty-printer, JSONL
//!    file, in-memory capture) and retained in a bounded ring buffer.
//!    Emission is gated on a single relaxed atomic load, so
//!    instrumentation left in simulator hot loops is effectively free
//!    while the level is [`Level::Off`] (the default).
//! 2. **Metrics** — a [`MetricsRegistry`] of namespaced counters, gauges,
//!    and histograms that every subsystem (core simulator, NPU, trainer)
//!    exports into under its own prefix, with merge and serde support.
//! 3. **Reports** — a [`RunReport`] JSON schema combining wall-clock,
//!    per-phase timings, and a metrics registry; the bench binaries write
//!    one per benchmark under `results/`.
//!
//! # Emitting
//!
//! ```
//! use telemetry::{EventKind, Level};
//!
//! let capture = telemetry::capture();
//! telemetry::set_level(Level::Info);
//! {
//!     let _span = telemetry::span("example", "setup");
//!     telemetry::emit(Level::Info, "example", || EventKind::Message {
//!         text: "ready".into(),
//!     });
//! } // span emits PhaseEnd here
//! assert_eq!(capture.events().len(), 3);
//! telemetry::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod report;
mod ring;
mod sink;
mod span;

pub use event::{Event, EventKind, Level};
pub use metrics::{Histogram, MetricsRegistry};
pub use report::{LintSummary, PhaseTiming, RunReport, SchedulerSummary, SCHEMA_VERSION};
pub use ring::RingBuffer;
pub use sink::{CaptureSink, JsonlSink, Sink, StderrSink};
pub use span::Span;

pub(crate) mod collector {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::time::Instant;

    /// Collector verbosity; `0` = off. Relaxed ordering suffices: the
    /// check is a pure fast-path filter and sinks synchronize via the
    /// state lock.
    static LEVEL: AtomicU8 = AtomicU8::new(0);

    static STATE: Mutex<Option<State>> = Mutex::new(None);

    const DEFAULT_RING_CAPACITY: usize = 1024;

    pub(crate) struct State {
        sinks: Vec<Box<dyn Sink>>,
        ring: RingBuffer,
        seq: u64,
        epoch: Instant,
    }

    impl State {
        fn new() -> State {
            State {
                sinks: Vec::new(),
                ring: RingBuffer::new(DEFAULT_RING_CAPACITY),
                seq: 0,
                epoch: Instant::now(),
            }
        }
    }

    fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
        let mut guard = STATE.lock();
        f(guard.get_or_insert_with(State::new))
    }

    pub(crate) fn set_level(level: Level) {
        LEVEL.store(level as u8, Ordering::Relaxed);
    }

    pub(crate) fn level() -> Level {
        Level::from_u8(LEVEL.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn enabled(level: Level) -> bool {
        level as u8 <= LEVEL.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn emit(level: Level, target: &str, build: impl FnOnce() -> EventKind) {
        if !enabled(level) {
            return;
        }
        let kind = build();
        with_state(|state| {
            state.seq += 1;
            let event = Event {
                seq: state.seq,
                elapsed_us: state.epoch.elapsed().as_micros() as u64,
                level,
                target: target.to_string(),
                kind,
            };
            for sink in &state.sinks {
                sink.record(&event);
            }
            state.ring.push(event);
        });
    }

    pub(crate) fn add_sink(sink: Box<dyn Sink>) {
        with_state(|state| state.sinks.push(sink));
    }

    pub(crate) fn recent_events() -> Vec<Event> {
        with_state(|state| state.ring.snapshot())
    }

    pub(crate) fn set_ring_capacity(capacity: usize) {
        with_state(|state| state.ring = RingBuffer::new(capacity));
    }

    pub(crate) fn reset() {
        LEVEL.store(0, Ordering::Relaxed);
        *STATE.lock() = None;
    }
}

/// Sets the global collector level. Events above it are dropped before
/// construction.
pub fn set_level(level: Level) {
    collector::set_level(level);
}

/// The current collector level.
pub fn level() -> Level {
    collector::level()
}

/// Whether events at `level` would currently be recorded. One relaxed
/// atomic load — safe to call in simulator hot loops.
#[inline]
pub fn enabled(level: Level) -> bool {
    collector::enabled(level)
}

/// Records an event if `level` is enabled. `build` runs only when the
/// event will actually be recorded, so payload construction (formatting,
/// cloning) costs nothing while tracing is off.
#[inline]
pub fn emit(level: Level, target: &str, build: impl FnOnce() -> EventKind) {
    collector::emit(level, target, build);
}

/// Starts a phase timer that emits `PhaseStart` now and `PhaseEnd` when
/// finished or dropped. The span measures time regardless of the level,
/// so run reports get phase timings even with tracing off.
pub fn span(target: &'static str, phase: &str) -> Span {
    Span::start(target, phase)
}

/// Registers a sink receiving every admitted event from now on.
pub fn add_sink(sink: Box<dyn Sink>) {
    collector::add_sink(sink);
}

/// Installs the stderr pretty-printing sink.
pub fn install_stderr_sink() {
    add_sink(Box::new(StderrSink));
}

/// Installs a JSONL file sink writing to `path`.
///
/// # Errors
///
/// Fails if the file cannot be created.
pub fn install_jsonl_sink(path: &std::path::Path) -> std::io::Result<()> {
    add_sink(Box::new(JsonlSink::create(path)?));
    Ok(())
}

/// Installs an in-memory capture sink and returns a handle to read it —
/// the test-facing sink.
pub fn capture() -> CaptureSink {
    let sink = CaptureSink::new();
    add_sink(Box::new(sink.clone()));
    sink
}

/// The most recent events retained by the collector's ring buffer,
/// oldest first.
pub fn recent_events() -> Vec<Event> {
    collector::recent_events()
}

/// Replaces the ring buffer with one of the given capacity (discarding
/// retained events).
pub fn set_ring_capacity(capacity: usize) {
    collector::set_ring_capacity(capacity);
}

/// Returns the collector to its initial state: level off, no sinks, an
/// empty ring. Intended for tests that must not observe each other.
pub fn reset() {
    collector::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global and `cargo test` runs tests
    // concurrently, so the tests below share one exclusive lock.
    static GUARD: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn disabled_level_drops_events_without_building_them() {
        let _g = GUARD.lock();
        reset();
        let cap = capture();
        let mut built = false;
        emit(Level::Info, "test", || {
            built = true;
            EventKind::Message { text: "x".into() }
        });
        assert!(!built, "payload must not be built while level is off");
        assert!(cap.events().is_empty());
        reset();
    }

    #[test]
    fn events_reach_sinks_and_ring_in_order() {
        let _g = GUARD.lock();
        reset();
        set_level(Level::Debug);
        let cap = capture();
        emit(Level::Info, "a", || EventKind::Message { text: "1".into() });
        emit(Level::Trace, "a", || EventKind::Message {
            text: "no".into(),
        });
        emit(Level::Debug, "b", || EventKind::Message {
            text: "2".into(),
        });
        let got = cap.events();
        assert_eq!(got.len(), 2, "trace event must be filtered at debug level");
        assert!(got[0].seq < got[1].seq);
        assert_eq!(recent_events().len(), 2);
        reset();
    }

    #[test]
    fn span_emits_phase_pair_and_reports_timing() {
        let _g = GUARD.lock();
        reset();
        set_level(Level::Info);
        let cap = capture();
        let timing = span("test", "work").finish();
        assert_eq!(timing.name, "work");
        let got = cap.events();
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0].kind, EventKind::PhaseStart { .. }));
        match &got[1].kind {
            EventKind::PhaseEnd { phase, .. } => assert_eq!(phase, "work"),
            other => panic!("expected PhaseEnd, got {other:?}"),
        }
        reset();
    }

    #[test]
    fn spans_measure_time_even_when_tracing_is_off() {
        let _g = GUARD.lock();
        reset();
        let span = span("test", "quiet");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let timing = span.finish();
        assert!(
            timing.elapsed_us >= 1_000,
            "elapsed = {}",
            timing.elapsed_us
        );
        reset();
    }
}

//! Event destinations: stderr pretty-printing, JSONL files, and an
//! in-memory capture for tests.

use crate::Event;
use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// A destination for recorded events. Sinks receive every event the
/// collector's level admits, in emission order.
pub trait Sink: Send {
    /// Handles one event. Called under the collector lock — keep it quick.
    fn record(&self, event: &Event);

    /// Finalizes any buffered output (file footers, etc.). Called by
    /// [`crate::flush_sinks`] before process exit; the default does
    /// nothing.
    fn flush(&self) {}
}

/// Accepts and discards every event — for measuring collector overhead
/// without I/O.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Renders each event as one human-readable line on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        eprintln!("{}", event.render());
    }
}

/// Appends each event as one JSON object per line (JSON Lines).
pub struct JsonlSink {
    file: Mutex<std::fs::File>,
}

impl JsonlSink {
    /// Creates (or truncates) `path` and writes events to it.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            file: Mutex::new(std::fs::File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = serde::json::to_string(event);
        let mut file = self.file.lock();
        // Best effort: a full disk should not bring the simulation down.
        let _ = writeln!(file, "{line}");
    }
}

/// Stores events in memory; cloneable handle for test assertions.
#[derive(Clone, Default)]
pub struct CaptureSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl CaptureSink {
    /// An empty capture.
    pub fn new() -> CaptureSink {
        CaptureSink::default()
    }

    /// A copy of everything captured so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Discards captured events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl Sink for CaptureSink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Level};

    fn sample() -> Event {
        Event {
            seq: 1,
            elapsed_us: 42,
            thread: 0,
            level: Level::Debug,
            target: "sink::test".into(),
            kind: EventKind::Message {
                text: "hello".into(),
            },
        }
    }

    #[test]
    fn capture_sink_keeps_order() {
        let cap = CaptureSink::new();
        cap.record(&sample());
        let mut second = sample();
        second.seq = 2;
        cap.record(&second);
        let got = cap.events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[1].seq, 2);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("telemetry-jsonl-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample());
        sink.record(&sample());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: Event = serde::json::from_str(line).unwrap();
            assert_eq!(back, sample());
        }
        let _ = std::fs::remove_file(&path);
    }
}

//! Event records: severity levels, the typed event taxonomy, and the
//! envelope that carries them to sinks.

use crate::Histogram;
use serde::{Deserialize, Serialize};

/// Event severity, ordered from silent to most verbose.
///
/// The global collector drops events above its configured level before
/// they are constructed, so tracing left in hot loops costs one relaxed
/// atomic load when disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// No events at all (the default).
    Off,
    /// Unrecoverable problems.
    Error,
    /// Suspicious conditions that do not stop a run.
    Warn,
    /// Phase boundaries and run summaries.
    Info,
    /// Per-candidate / per-invocation detail.
    Debug,
    /// Per-event simulator detail (squashes, mispredicts).
    Trace,
}

impl Level {
    /// Parses the usual lowercase names (`off`, `error`, `warn`, `info`,
    /// `debug`, `trace`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Off,
        }
    }
}

/// What happened. One variant per event class the pipeline and the
/// simulators report; fields carry the class-specific payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A named phase began (compilation step, timing run, …).
    PhaseStart {
        /// Phase name, e.g. `observe` or `topology_search`.
        phase: String,
        /// Span id of the phase timer (unique within a process, never 0).
        span: u64,
        /// Span id of the enclosing phase on the same logical context
        /// stack (0 = a root span).
        parent: u64,
    },
    /// A named phase finished.
    PhaseEnd {
        /// Phase name matching the corresponding [`EventKind::PhaseStart`].
        phase: String,
        /// Wall-clock duration of the phase in microseconds.
        elapsed_us: u64,
        /// Span id matching the `PhaseStart`.
        span: u64,
        /// Parent span id matching the `PhaseStart`.
        parent: u64,
        /// Whether the span ended during a panic unwind instead of a
        /// normal finish/drop.
        aborted: bool,
    },
    /// A causality edge begins: a handoff token was created inside the
    /// emitting context (e.g. the sweep enqueued a job).
    FlowBegin {
        /// Process-unique flow id tying this to the matching
        /// [`EventKind::FlowEnd`].
        flow: u64,
    },
    /// A causality edge ends: the handoff token was adopted by another
    /// context (e.g. a worker started the enqueued job).
    FlowEnd {
        /// Flow id matching the [`EventKind::FlowBegin`].
        flow: u64,
    },
    /// One sample of a monitored counter (queue depth, cache hit rate,
    /// …) — a point on a time-series, rendered as a counter track by the
    /// trace exporter.
    CounterSample {
        /// Counter name (`sched.queue_depth`, `cache.hit_rate`, …).
        name: String,
        /// Sampled value.
        value: f64,
    },
    /// A harness job reached a terminal state. Carries the DAG structure
    /// (job id + dependency ids) so trace tooling can recover the
    /// critical path without the original DAG.
    JobDone {
        /// Job id within the sweep's DAG.
        job: u64,
        /// Benchmark the job belonged to.
        bench: String,
        /// Pipeline stage (`observe`, `train`, `sim_npu`, …).
        stage: String,
        /// DAG ids of the job's dependencies.
        deps: Vec<u64>,
        /// Worker thread index that ran (or skipped) the job.
        worker: u64,
        /// Terminal state: `done`, `cached`, `failed`, or `skipped`.
        outcome: String,
        /// Span id of the job's execution span (0 for skipped jobs).
        span: u64,
        /// Job wall-clock in microseconds (0 for skipped jobs).
        elapsed_us: u64,
    },
    /// A snapshot of a named histogram, emitted at end of run so trace
    /// files carry the full distributions next to the span data.
    HistogramSnapshot {
        /// Histogram name (`npu.invocation_cycles`, …).
        name: String,
        /// The histogram state at snapshot time.
        hist: Histogram,
    },
    /// The topology search finished training one candidate network.
    CandidateTrained {
        /// The candidate's layer structure, e.g. `9->8->1`.
        topology: String,
        /// Mean squared error on the held-out test split.
        test_mse: f64,
        /// Mean squared error on the training split.
        train_mse: f64,
        /// Epochs actually executed.
        epochs: u64,
        /// Estimated NPU evaluation latency in cycles.
        npu_latency: u64,
    },
    /// A mid-training accuracy sample (the MSE learning curve).
    TrainEpoch {
        /// Epoch index the sample was taken after.
        epoch: u64,
        /// Training-set mean squared error at that point.
        mse: f64,
    },
    /// A core timing simulation finished.
    SimDone {
        /// Total cycles simulated.
        cycles: u64,
        /// Instructions committed.
        committed: u64,
    },
    /// The core resolved a mispredicted branch.
    BranchMispredict {
        /// Cycle at which the branch resolved.
        cycle: u64,
    },
    /// The NPU rolled back speculative FIFO traffic.
    NpuSquash {
        /// Speculative `enq.d` pushes undone.
        enq: u64,
        /// Speculative `deq.d` pops undone.
        deq: u64,
    },
    /// The NPU completed one invocation.
    NpuInvocation {
        /// Cycles from the invocation starting to its last output.
        cycles: u64,
    },
    /// Free-form text.
    Message {
        /// The message.
        text: String,
    },
}

/// One recorded event: an [`EventKind`] plus envelope metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotonic sequence number, unique within a process.
    pub seq: u64,
    /// Microseconds since the collector first recorded an event.
    pub elapsed_us: u64,
    /// Small dense ordinal of the emitting thread (assigned in first-use
    /// order, stable for the thread's lifetime).
    pub thread: u64,
    /// Severity.
    pub level: Level,
    /// Subsystem that emitted the event (crate or module path).
    pub target: String,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// A one-line human rendering (the stderr sink's format).
    pub fn render(&self) -> String {
        format!(
            "[{:>10.3}ms {:<5} {}] {}",
            self.elapsed_us as f64 / 1e3,
            self.level.as_str(),
            self.target,
            render_kind(&self.kind),
        )
    }
}

fn render_kind(kind: &EventKind) -> String {
    match kind {
        EventKind::PhaseStart { phase, .. } => format!("phase {phase} started"),
        EventKind::PhaseEnd {
            phase,
            elapsed_us,
            aborted,
            ..
        } => {
            let tag = if *aborted { " (aborted)" } else { "" };
            format!(
                "phase {phase} finished in {:.3}ms{tag}",
                *elapsed_us as f64 / 1e3
            )
        }
        EventKind::FlowBegin { flow } => format!("flow {flow} begins"),
        EventKind::FlowEnd { flow } => format!("flow {flow} ends"),
        EventKind::CounterSample { name, value } => format!("counter {name} = {value}"),
        EventKind::JobDone {
            job,
            bench,
            stage,
            outcome,
            elapsed_us,
            ..
        } => format!(
            "job {job} {stage}.{bench}: {outcome} in {:.3}ms",
            *elapsed_us as f64 / 1e3
        ),
        EventKind::HistogramSnapshot { name, hist } => {
            format!("histogram {name}: {} samples", hist.count)
        }
        EventKind::CandidateTrained {
            topology,
            test_mse,
            train_mse,
            epochs,
            npu_latency,
        } => format!(
            "candidate {topology}: test mse {test_mse:.6}, train mse {train_mse:.6}, \
             {epochs} epochs, {npu_latency} cycles"
        ),
        EventKind::TrainEpoch { epoch, mse } => format!("epoch {epoch}: train mse {mse:.6}"),
        EventKind::SimDone { cycles, committed } => {
            format!("simulation done: {cycles} cycles, {committed} committed")
        }
        EventKind::BranchMispredict { cycle } => format!("branch mispredict at cycle {cycle}"),
        EventKind::NpuSquash { enq, deq } => format!("npu squash: {enq} enq, {deq} deq undone"),
        EventKind::NpuInvocation { cycles } => format!("npu invocation done in {cycles} cycles"),
        EventKind::Message { text } => text.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips() {
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn event_serde_round_trips() {
        let ev = Event {
            seq: 7,
            elapsed_us: 1500,
            thread: 3,
            level: Level::Info,
            target: "parrot::compiler".into(),
            kind: EventKind::PhaseEnd {
                phase: "train".into(),
                elapsed_us: 1234,
                span: 11,
                parent: 4,
                aborted: false,
            },
        };
        let json = serde::json::to_string(&ev);
        let back: Event = serde::json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn aborted_phase_end_renders_the_tag() {
        let rendered = render_kind(&EventKind::PhaseEnd {
            phase: "train".into(),
            elapsed_us: 1000,
            span: 1,
            parent: 0,
            aborted: true,
        });
        assert!(rendered.contains("(aborted)"), "{rendered}");
    }
}

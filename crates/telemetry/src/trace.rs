//! Chrome trace-event export: serializes the event stream into a JSON
//! file loadable in Perfetto (or `chrome://tracing`).
//!
//! Mapping:
//!
//! * `PhaseEnd` → one `"X"` (complete) event per span, with `ts` backdated
//!   by the measured duration so nesting renders correctly; span/parent
//!   ids and the `aborted` flag ride in `args`.
//! * `CounterSample` → `"C"` counter events (one track per counter name).
//! * `FlowBegin`/`FlowEnd` → `"s"`/`"f"` flow events drawing causality
//!   arrows from the enqueuing span to the worker that ran the job.
//! * `JobDone`, `TrainEpoch`, `NpuInvocation`, and everything else →
//!   `"i"` instant events with the payload in `args`.
//! * `HistogramSnapshot` → collected and written at flush time into a
//!   top-level `parrotHistograms` object next to `traceEvents` (the
//!   trace-event spec tolerates extra top-level keys).
//!
//! The file is streamed: each event appends one array element, and
//! [`ChromeTraceSink::flush`] (via [`crate::flush_sinks`]) writes the
//! footer exactly once.

use crate::{Event, EventKind, Histogram, Sink};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::Path;

/// The process id written into every event. The trace describes one
/// process; Perfetto groups tracks under it.
const PID: u64 = 1;

struct Inner {
    out: BufWriter<std::fs::File>,
    any_event: bool,
    finished: bool,
    histograms: BTreeMap<String, Histogram>,
}

/// A [`Sink`] writing Chrome trace-event JSON to a file.
pub struct ChromeTraceSink {
    inner: Mutex<Inner>,
}

impl ChromeTraceSink {
    /// Creates (or truncates) `path` and writes the trace header.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created or the header not written.
    pub fn create(path: &Path) -> std::io::Result<ChromeTraceSink> {
        let mut out = BufWriter::new(std::fs::File::create(path)?);
        write!(out, "{{\"traceEvents\":[")?;
        Ok(ChromeTraceSink {
            inner: Mutex::new(Inner {
                out,
                any_event: false,
                finished: false,
                histograms: BTreeMap::new(),
            }),
        })
    }

    fn append(inner: &mut Inner, element: &str) {
        if inner.finished {
            return;
        }
        let sep = if inner.any_event { "," } else { "" };
        inner.any_event = true;
        // Best effort: a full disk should not bring the run down.
        let _ = write!(inner.out, "{sep}\n{element}");
    }
}

/// A JSON string literal (quoted, escaped) for `s`.
fn quoted(s: &str) -> String {
    serde::json::to_string(&s.to_string())
}

fn serialize(event: &Event) -> Option<String> {
    let ts = event.elapsed_us;
    let tid = event.thread;
    let cat = quoted(&event.target);
    match &event.kind {
        EventKind::PhaseEnd {
            phase,
            elapsed_us,
            span,
            parent,
            aborted,
        } => {
            let start = ts.saturating_sub(*elapsed_us);
            Some(format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":{cat},\"pid\":{PID},\"tid\":{tid},\
                 \"ts\":{start},\"dur\":{elapsed_us},\
                 \"args\":{{\"span\":{span},\"parent\":{parent},\"aborted\":{aborted}}}}}",
                quoted(phase),
            ))
        }
        // The matching PhaseEnd carries the whole interval; an extra "B"
        // event would double-draw the span.
        EventKind::PhaseStart { .. } => None,
        EventKind::CounterSample { name, value } => Some(format!(
            "{{\"ph\":\"C\",\"name\":{},\"pid\":{PID},\"ts\":{ts},\
             \"args\":{{\"value\":{value}}}}}",
            quoted(name),
        )),
        EventKind::FlowBegin { flow } => Some(format!(
            "{{\"ph\":\"s\",\"name\":\"handoff\",\"cat\":{cat},\"id\":{flow},\
             \"pid\":{PID},\"tid\":{tid},\"ts\":{ts}}}"
        )),
        EventKind::FlowEnd { flow } => Some(format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"handoff\",\"cat\":{cat},\"id\":{flow},\
             \"pid\":{PID},\"tid\":{tid},\"ts\":{ts}}}"
        )),
        EventKind::JobDone {
            job,
            bench,
            stage,
            deps,
            worker,
            outcome,
            span,
            elapsed_us,
        } => {
            let deps = deps
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(",");
            Some(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":{},\"cat\":\"job\",\
                 \"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\
                 \"args\":{{\"job\":{job},\"bench\":{},\"stage\":{},\"deps\":[{deps}],\
                 \"worker\":{worker},\"outcome\":{},\"span\":{span},\
                 \"elapsed_us\":{elapsed_us}}}}}",
                quoted(&format!("{stage}.{bench}")),
                quoted(bench),
                quoted(stage),
                quoted(outcome),
            ))
        }
        // Snapshots go into the parrotHistograms footer, not the stream.
        EventKind::HistogramSnapshot { .. } => None,
        other => {
            let name = match other {
                EventKind::TrainEpoch { .. } => "train_epoch",
                EventKind::CandidateTrained { .. } => "candidate_trained",
                EventKind::SimDone { .. } => "sim_done",
                EventKind::BranchMispredict { .. } => "branch_mispredict",
                EventKind::NpuSquash { .. } => "npu_squash",
                EventKind::NpuInvocation { .. } => "npu_invocation",
                _ => "message",
            };
            Some(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"cat\":{cat},\
                 \"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\
                 \"args\":{{\"detail\":{}}}}}",
                quoted(&event.render()),
            ))
        }
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock();
        if let EventKind::HistogramSnapshot { name, hist } = &event.kind {
            // Later snapshots of the same name win — they are cumulative.
            inner.histograms.insert(name.clone(), hist.clone());
            return;
        }
        if let Some(element) = serialize(event) {
            Self::append(&mut inner, &element);
        }
    }

    fn flush(&self) {
        let mut inner = self.inner.lock();
        if inner.finished {
            return;
        }
        inner.finished = true;
        let hists = serde::json::to_string(&inner.histograms);
        let _ = write!(
            inner.out,
            "\n],\n\"displayTimeUnit\":\"ms\",\n\"parrotHistograms\":{hists}\n}}\n"
        );
        let _ = inner.out.flush();
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        // Finalize even if flush_sinks was never called (e.g. the
        // collector was reset): a truncated trace is useless.
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    fn event(seq: u64, elapsed_us: u64, thread: u64, kind: EventKind) -> Event {
        Event {
            seq,
            elapsed_us,
            thread,
            level: Level::Info,
            target: "trace::test".into(),
            kind,
        }
    }

    #[test]
    fn trace_file_is_valid_json_with_expected_phases() {
        let path =
            std::env::temp_dir().join(format!("telemetry-trace-{}.json", std::process::id()));
        let sink = ChromeTraceSink::create(&path).unwrap();
        sink.record(&event(
            1,
            10,
            0,
            EventKind::PhaseStart {
                phase: "sweep".into(),
                span: 5,
                parent: 0,
            },
        ));
        sink.record(&event(2, 12, 0, EventKind::FlowBegin { flow: 9 }));
        sink.record(&event(3, 20, 1, EventKind::FlowEnd { flow: 9 }));
        sink.record(&event(
            4,
            900,
            1,
            EventKind::PhaseEnd {
                phase: "train.fft".into(),
                elapsed_us: 880,
                span: 6,
                parent: 5,
                aborted: false,
            },
        ));
        sink.record(&event(
            5,
            905,
            1,
            EventKind::JobDone {
                job: 3,
                bench: "fft".into(),
                stage: "train".into(),
                deps: vec![1, 2],
                worker: 1,
                outcome: "done".into(),
                span: 6,
                elapsed_us: 880,
            },
        ));
        sink.record(&event(
            6,
            950,
            0,
            EventKind::CounterSample {
                name: "sched.queue_depth".into(),
                value: 4.0,
            },
        ));
        let mut hist = Histogram::default();
        hist.observe(10.0);
        hist.observe(20.0);
        sink.record(&event(
            7,
            990,
            0,
            EventKind::HistogramSnapshot {
                name: "npu.invocation_cycles".into(),
                hist,
            },
        ));
        sink.flush();
        sink.flush(); // idempotent

        let text = std::fs::read_to_string(&path).unwrap();
        let root = serde::json::parse(&text).expect("trace must be valid JSON");
        let serde::Content::Seq(items) = root.get("traceEvents").expect("traceEvents key") else {
            panic!("traceEvents must be an array");
        };
        // PhaseStart and HistogramSnapshot don't serialize as events.
        assert_eq!(items.len(), 5);
        let phs: Vec<&str> = items
            .iter()
            .map(|item| match item.get("ph").expect("ph field") {
                serde::Content::Str(s) => s.as_str(),
                other => panic!("ph must be a string, got {other:?}"),
            })
            .collect();
        assert_eq!(phs, ["s", "f", "X", "i", "C"]);
        let hists = root.get("parrotHistograms").expect("histogram footer");
        assert_eq!(
            hists
                .get("npu.invocation_cycles")
                .and_then(|h| h.get("count"))
                .and_then(|c| c.as_u64()),
            Some(2)
        );
        // The X event backdates its start by the duration.
        assert!(text.contains("\"ts\":20,\"dur\":880"));
        let _ = std::fs::remove_file(&path);
    }
}

//! The unified metrics registry: namespaced counters, gauges, and
//! log-bucketed streaming histograms with merge and serde support.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sub-octave resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal-width buckets, bounding relative bucket width (and
/// hence quantile error) to `2^-7` ≈ 0.78%.
const SUB_BITS: u32 = 7;
/// Right-shift applied to a positive f64's bit pattern to obtain its
/// bucket index: drops the 52 mantissa bits except the top `SUB_BITS`.
const BUCKET_SHIFT: u32 = 52 - SUB_BITS;

/// Streaming log-bucketed (HDR-style) histogram.
///
/// Positive samples are binned by exponent plus the top [`SUB_BITS`]
/// mantissa bits of their IEEE-754 representation — a pure bit shift, no
/// `log2` — so bucket boundaries are bit-exact on every platform and
/// recording is O(1) with no allocation on the hot path once a bucket
/// exists. Non-positive and NaN samples land in a dedicated underflow
/// bucket. Shards recorded on different threads merge by bucket-count
/// addition: `count`, `min`, `max`, and every bucket are exactly equal to
/// whole-stream recording regardless of shard order (`sum` only up to
/// f64 rounding).
///
/// Full sample retention is deliberately avoided: simulator loops observe
/// millions of values, and the registry must stay cheap to merge and
/// serialize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Samples that were zero, negative, or NaN (kept out of the
    /// log-spaced buckets, which only cover positive finite values).
    nonpositive: u64,
    /// Sparse log-spaced buckets: index → sample count. `BTreeMap` keeps
    /// iteration (and serialization) in ascending value order.
    buckets: BTreeMap<u32, u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            nonpositive: 0,
            buckets: BTreeMap::new(),
        }
    }
}

impl Histogram {
    /// The bucket index a positive finite `value` falls into. Deterministic
    /// across platforms: a pure bit manipulation of the IEEE-754 encoding.
    pub fn bucket_index(value: f64) -> u32 {
        debug_assert!(value > 0.0 && value.is_finite());
        (value.to_bits() >> BUCKET_SHIFT) as u32
    }

    /// The half-open value range `[lo, hi)` covered by bucket `index`.
    /// `hi` is non-finite for the topmost bucket.
    pub fn bucket_bounds(index: u32) -> (f64, f64) {
        let lo = f64::from_bits(u64::from(index) << BUCKET_SHIFT);
        let hi = f64::from_bits((u64::from(index) + 1) << BUCKET_SHIFT);
        (lo, hi)
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if value > 0.0 && value.is_finite() {
            *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
        } else {
            self.nonpositive += 1;
        }
    }

    /// Mean of the observed samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Samples that fell below the positive range (zero, negative, NaN).
    pub fn nonpositive(&self) -> u64 {
        self.nonpositive
    }

    /// The sparse bucket table (index → count), ascending by value.
    pub fn buckets(&self) -> &BTreeMap<u32, u64> {
        &self.buckets
    }

    /// The value at quantile `q` in `[0, 1]`: the representative
    /// (bucket-midpoint) value of the sample at rank `ceil(q·count)`,
    /// clamped to the exact observed `[min, max]`. Returns 0 when empty.
    ///
    /// Monotone in `q`, and within one bucket width (≈0.78% relative) of
    /// the true order statistic for positive samples.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are the exactly tracked min/max samples.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = self.nonpositive;
        if rank <= seen {
            // All we know about underflow samples is that they are ≤ 0;
            // min is exact when the smallest sample was one of them.
            return self.min.min(0.0);
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                let (lo, hi) = Self::bucket_bounds(idx);
                let mid = if hi.is_finite() { (lo + hi) / 2.0 } else { lo };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Folds `other`'s samples into `self` by bucket-count addition.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.nonpositive += other.nonpositive;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }
}

/// Namespaced counters, gauges, and histograms for one run.
///
/// Keys are dot-separated paths (`uarch.l1d.hits`, `npu.macs`,
/// `ann.search.candidates`); exporters prepend their subsystem prefix so
/// one registry can hold a whole run without collisions. Insertion uses
/// `BTreeMap` so serialization and iteration order are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `key` (creating it at 0).
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Adds 1 to the counter `key`.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// The counter `key`, or 0 if never touched.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets the gauge `key`.
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// The gauge `key`, if set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Records one sample into the histogram `key`.
    pub fn observe(&mut self, key: &str, value: f64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(value);
    }

    /// Merges a whole histogram into the histogram `key`.
    pub fn observe_histogram(&mut self, key: &str, hist: &Histogram) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .merge(hist);
    }

    /// The histogram `key`, if any samples were observed.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, sorted by key.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, histograms combine, and
    /// `other`'s gauges win (last-writer semantics, matching how a later
    /// pipeline stage overrides an earlier snapshot of the same gauge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut reg = MetricsRegistry::new();
        reg.incr("a.b");
        reg.add("a.b", 4);
        assert_eq!(reg.counter("a.b"), 5);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        for v in [2.0, -1.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.nonpositive(), 1);
        assert_eq!(h.buckets().values().sum::<u64>(), 2);
    }

    #[test]
    fn bucket_index_is_a_bit_shift() {
        // 1.0 has biased exponent 1023; its index is the exponent and top
        // 7 mantissa bits.
        assert_eq!(Histogram::bucket_index(1.0), 1023 << SUB_BITS);
        // Doubling a value advances the index by exactly one octave.
        assert_eq!(
            Histogram::bucket_index(2.0),
            Histogram::bucket_index(1.0) + (1 << SUB_BITS)
        );
        // Values inside the same 1/128 octave slice share a bucket; the
        // first slice above 1.0 ends at 1 + 1/128 = 1.0078125.
        assert_eq!(Histogram::bucket_index(1.0), Histogram::bucket_index(1.007));
        assert_ne!(Histogram::bucket_index(1.0), Histogram::bucket_index(1.008));
    }

    #[test]
    fn bucket_bounds_bracket_their_members() {
        for v in [1e-9, 0.37, 1.0, 42.0, 1e12] {
            let idx = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            // Relative width stays within the design bound of 1/128.
            assert!((hi - lo) / lo <= 1.0 / 128.0 + 1e-12);
        }
    }

    #[test]
    fn quantiles_land_near_true_order_statistics() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        for (q, truth) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            assert!(
                (got - truth).abs() / truth < 0.01,
                "q{q}: got {got}, want ≈{truth}"
            );
        }
        assert_eq!(h.quantile(0.0), 1.0, "q0 clamps to min");
        assert_eq!(h.quantile(1.0), 1000.0, "q1 clamps to max");
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        let mut h = Histogram::default();
        h.observe(7.5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7.5);
        }
    }

    #[test]
    fn quantile_with_nonpositive_underflow() {
        let mut h = Histogram::default();
        h.observe(-3.0);
        h.observe(-1.0);
        h.observe(10.0);
        h.observe(20.0);
        assert_eq!(h.quantile(0.25), -3.0, "underflow reports min");
        assert!(h.quantile(0.75) > 0.0);
        assert_eq!(h.quantile(1.0), 20.0);
    }

    #[test]
    fn merge_equals_whole_stream_on_bucket_state() {
        let samples: Vec<f64> = (0..200).map(|i| 0.1 + (i as f64) * 3.7).collect();
        let mut whole = Histogram::default();
        for &v in &samples {
            whole.observe(v);
        }
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count, whole.count);
        assert_eq!(a.min, whole.min);
        assert_eq!(a.max, whole.max);
        assert_eq!(a.nonpositive, whole.nonpositive);
        assert_eq!(a.buckets, whole.buckets);
        assert!((a.sum - whole.sum).abs() < 1e-6 * whole.sum.abs());
    }

    #[test]
    fn merge_combines_all_three_kinds() {
        let mut a = MetricsRegistry::new();
        a.add("hits", 10);
        a.set_gauge("rate", 0.5);
        a.observe("lat", 1.0);

        let mut b = MetricsRegistry::new();
        b.add("hits", 5);
        b.add("misses", 2);
        b.set_gauge("rate", 0.75);
        b.observe("lat", 3.0);

        a.merge(&b);
        assert_eq!(a.counter("hits"), 15);
        assert_eq!(a.counter("misses"), 2);
        assert_eq!(a.gauge("rate"), Some(0.75), "later gauge must win");
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        a.observe("h", 2.0);
        let before = a.clone();
        a.merge(&MetricsRegistry::new());
        assert_eq!(a, before);
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let mut reg = MetricsRegistry::new();
        reg.add("uarch.cycles", 123_456);
        reg.add("npu.macs", 789);
        reg.set_gauge("uarch.ipc", 1.75);
        reg.observe("phase.us", 10.0);
        reg.observe("phase.us", 30.0);
        reg.observe("phase.us", -2.0);
        let json = serde::json::to_string_pretty(&reg);
        let back: MetricsRegistry = serde::json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }
}

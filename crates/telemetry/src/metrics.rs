//! The unified metrics registry: namespaced counters, gauges, and
//! histograms with merge and serde support.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Streaming summary of observed samples (count/sum/min/max).
///
/// Full sample retention is deliberately avoided: simulator loops observe
/// millions of values, and a four-word summary keeps registries cheap to
/// merge and serialize.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observed samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Namespaced counters, gauges, and histograms for one run.
///
/// Keys are dot-separated paths (`uarch.l1d.hits`, `npu.macs`,
/// `ann.search.candidates`); exporters prepend their subsystem prefix so
/// one registry can hold a whole run without collisions. Insertion uses
/// `BTreeMap` so serialization and iteration order are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `key` (creating it at 0).
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Adds 1 to the counter `key`.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// The counter `key`, or 0 if never touched.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets the gauge `key`.
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// The gauge `key`, if set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Records one sample into the histogram `key`.
    pub fn observe(&mut self, key: &str, value: f64) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .observe(value);
    }

    /// The histogram `key`, if any samples were observed.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by key.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, sorted by key.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, histograms combine, and
    /// `other`'s gauges win (last-writer semantics, matching how a later
    /// pipeline stage overrides an earlier snapshot of the same gauge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut reg = MetricsRegistry::new();
        reg.incr("a.b");
        reg.add("a.b", 4);
        assert_eq!(reg.counter("a.b"), 5);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::default();
        for v in [2.0, -1.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_all_three_kinds() {
        let mut a = MetricsRegistry::new();
        a.add("hits", 10);
        a.set_gauge("rate", 0.5);
        a.observe("lat", 1.0);

        let mut b = MetricsRegistry::new();
        b.add("hits", 5);
        b.add("misses", 2);
        b.set_gauge("rate", 0.75);
        b.observe("lat", 3.0);

        a.merge(&b);
        assert_eq!(a.counter("hits"), 15);
        assert_eq!(a.counter("misses"), 2);
        assert_eq!(a.gauge("rate"), Some(0.75), "later gauge must win");
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        a.observe("h", 2.0);
        let before = a.clone();
        a.merge(&MetricsRegistry::new());
        assert_eq!(a, before);
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let mut reg = MetricsRegistry::new();
        reg.add("uarch.cycles", 123_456);
        reg.add("npu.macs", 789);
        reg.set_gauge("uarch.ipc", 1.75);
        reg.observe("phase.us", 10.0);
        reg.observe("phase.us", 30.0);
        let json = serde::json::to_string_pretty(&reg);
        let back: MetricsRegistry = serde::json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }
}

//! A bounded in-memory event buffer.

use crate::Event;
use std::collections::VecDeque;

/// Fixed-capacity FIFO of recent events: when full, pushing evicts the
/// oldest record. The collector keeps one so the most recent activity is
/// inspectable (e.g. on panic or in tests) even with no sink installed.
#[derive(Debug)]
pub struct RingBuffer {
    buf: VecDeque<Event>,
    capacity: usize,
    evicted: u64,
}

impl RingBuffer {
    /// Creates a buffer holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
        }
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }

    /// How many events are currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have been evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drops all retained events (the eviction count survives).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Level};

    fn msg(seq: u64) -> Event {
        Event {
            seq,
            elapsed_us: 0,
            thread: 0,
            level: Level::Info,
            target: "test".into(),
            kind: EventKind::Message {
                text: format!("event {seq}"),
            },
        }
    }

    #[test]
    fn evicts_oldest_first() {
        let mut ring = RingBuffer::new(3);
        for seq in 0..5 {
            ring.push(msg(seq));
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest two must have been evicted");
        assert_eq!(ring.evicted(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut ring = RingBuffer::new(8);
        for seq in 0..5 {
            ring.push(msg(seq));
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.evicted(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = RingBuffer::new(0);
        ring.push(msg(1));
        ring.push(msg(2));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.snapshot()[0].seq, 2);
    }
}

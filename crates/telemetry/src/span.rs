//! Phase timers: RAII spans with process-unique ids, a thread-local
//! parent stack for same-thread nesting, and [`Handoff`] tokens carrying
//! a span's context across threads.

use crate::{collector, EventKind, Level, PhaseTiming};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Span/flow id allocator. Ids start at 1; 0 means "no parent".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The stack of span ids currently open on this thread. The top is
    /// the parent of the next span started here.
    static CONTEXT: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost span open on the calling thread, or 0 when
/// none is.
pub(crate) fn current_span() -> u64 {
    CONTEXT.with(|c| c.borrow().last().copied().unwrap_or(0))
}

fn push_context(id: u64) {
    CONTEXT.with(|c| c.borrow_mut().push(id));
}

/// Removes `id` from the context stack. Normally it is the top; spans
/// finished out of LIFO order (e.g. a guard held across a span's end)
/// are removed from wherever they sit so the stack never leaks.
fn pop_context(id: u64) {
    CONTEXT.with(|c| {
        let mut stack = c.borrow_mut();
        if stack.last() == Some(&id) {
            stack.pop();
        } else if let Some(pos) = stack.iter().rposition(|&s| s == id) {
            stack.remove(pos);
        }
    });
}

/// A running phase timer.
///
/// Created by [`crate::span`]; emits `PhaseStart` immediately and
/// `PhaseEnd` (with the measured duration) exactly once when finished or
/// dropped — including drops during panic unwinding, which mark the end
/// event `aborted` so the phase never silently vanishes from a trace.
///
/// Each span has a process-unique id; its parent is whatever span was
/// innermost on the same thread (or adopted via [`Handoff`]) when it
/// started, giving traces a proper hierarchy. Call
/// [`finish`](Span::finish) to also get the [`PhaseTiming`] back for a
/// run report.
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    phase: String,
    start: Instant,
    id: u64,
    parent: u64,
    ended: bool,
}

impl Span {
    pub(crate) fn start(target: &'static str, phase: &str) -> Span {
        let id = next_id();
        let parent = current_span();
        push_context(id);
        collector::emit(Level::Info, target, || EventKind::PhaseStart {
            phase: phase.to_string(),
            span: id,
            parent,
        });
        Span {
            target,
            phase: phase.to_string(),
            start: Instant::now(),
            id,
            parent,
            ended: false,
        }
    }

    /// The phase name.
    pub fn phase(&self) -> &str {
        &self.phase
    }

    /// This span's process-unique id (never 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the span this one nests under, or 0 for a root span.
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// Microseconds elapsed so far.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn end(&mut self, aborted: bool) -> PhaseTiming {
        self.ended = true;
        pop_context(self.id);
        let timing = PhaseTiming {
            name: self.phase.clone(),
            elapsed_us: self.elapsed_us(),
        };
        let (phase, elapsed_us) = (timing.name.clone(), timing.elapsed_us);
        let (span, parent) = (self.id, self.parent);
        collector::emit(Level::Info, self.target, move || EventKind::PhaseEnd {
            phase,
            elapsed_us,
            span,
            parent,
            aborted,
        });
        timing
    }

    /// Ends the span and returns its timing record.
    pub fn finish(mut self) -> PhaseTiming {
        self.end(false)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.ended {
            // A span dropped while unwinding still emits its PhaseEnd —
            // exactly once, marked aborted.
            self.end(std::thread::panicking());
        }
    }
}

/// A context token carrying a span's identity across threads.
///
/// Created by [`crate::handoff`] inside the producing span (emitting a
/// `FlowBegin` event); the consuming thread calls [`adopt`](Handoff::adopt)
/// to emit the matching `FlowEnd` and make the captured span the parent
/// of everything it opens while the returned guard lives. Trace viewers
/// draw the begin→end pair as a causality arrow between the two threads.
#[derive(Debug, Clone, Copy)]
pub struct Handoff {
    parent: u64,
    flow: u64,
}

impl Handoff {
    pub(crate) fn capture(target: &'static str) -> Handoff {
        let parent = current_span();
        let flow = next_id();
        collector::emit(Level::Info, target, || EventKind::FlowBegin { flow });
        Handoff { parent, flow }
    }

    /// The span id the token carries (0 if captured outside any span).
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// The flow id linking this token's `FlowBegin`/`FlowEnd` pair.
    pub fn flow(&self) -> u64 {
        self.flow
    }

    /// Adopts the carried context on the calling thread: emits `FlowEnd`
    /// and pushes the captured span as the current parent until the
    /// returned guard drops.
    pub fn adopt(&self, target: &'static str) -> ContextGuard {
        let flow = self.flow;
        collector::emit(Level::Info, target, || EventKind::FlowEnd { flow });
        push_context(self.parent);
        ContextGuard {
            pushed: self.parent,
            _not_send: PhantomData,
        }
    }
}

/// Keeps an adopted span on the thread-local context stack; popping it
/// on drop. Not `Send` — the stack it guards is thread-local.
#[derive(Debug)]
pub struct ContextGuard {
    pushed: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_context(self.pushed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let outer = Span::start("test", "outer");
        assert_eq!(current_span(), outer.id());
        let inner = Span::start("test", "inner");
        assert_eq!(inner.parent(), outer.id());
        assert_eq!(current_span(), inner.id());
        drop(inner);
        assert_eq!(current_span(), outer.id());
        drop(outer);
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn out_of_order_end_still_unwinds_the_stack() {
        let outer = Span::start("test", "outer");
        let inner = Span::start("test", "inner");
        // Finish the outer span first — the inner one must still leave a
        // clean stack behind.
        drop(outer);
        assert_eq!(current_span(), inner.id());
        drop(inner);
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn handoff_carries_the_capturing_span_across_threads() {
        let sweep = Span::start("test", "sweep");
        let token = Handoff::capture("test");
        assert_eq!(token.parent(), sweep.id());
        let sweep_id = sweep.id();
        std::thread::scope(|s| {
            s.spawn(move || {
                assert_eq!(current_span(), 0, "fresh thread starts contextless");
                let _ctx = token.adopt("test");
                let job = Span::start("test", "job");
                assert_eq!(job.parent(), sweep_id);
            });
        });
        assert_eq!(current_span(), sweep.id());
    }
}

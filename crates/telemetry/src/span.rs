//! Phase timers: RAII spans that emit `PhaseStart`/`PhaseEnd` events and
//! report their duration.

use crate::{collector, EventKind, Level, PhaseTiming};
use std::time::Instant;

/// A running phase timer.
///
/// Created by [`crate::span`]; emits `PhaseStart` immediately and
/// `PhaseEnd` (with the measured duration) when finished or dropped. Call
/// [`finish`](Span::finish) to also get the [`PhaseTiming`] back for a
/// run report.
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    phase: String,
    start: Instant,
    ended: bool,
}

impl Span {
    pub(crate) fn start(target: &'static str, phase: &str) -> Span {
        collector::emit(Level::Info, target, || EventKind::PhaseStart {
            phase: phase.to_string(),
        });
        Span {
            target,
            phase: phase.to_string(),
            start: Instant::now(),
            ended: false,
        }
    }

    /// The phase name.
    pub fn phase(&self) -> &str {
        &self.phase
    }

    /// Microseconds elapsed so far.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn end(&mut self) -> PhaseTiming {
        self.ended = true;
        let timing = PhaseTiming {
            name: self.phase.clone(),
            elapsed_us: self.elapsed_us(),
        };
        let (phase, elapsed_us) = (timing.name.clone(), timing.elapsed_us);
        collector::emit(Level::Info, self.target, move || EventKind::PhaseEnd {
            phase,
            elapsed_us,
        });
        timing
    }

    /// Ends the span and returns its timing record.
    pub fn finish(mut self) -> PhaseTiming {
        self.end()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.ended {
            self.end();
        }
    }
}

//! JSON run reports: the machine-readable summary every experiment
//! binary can emit alongside its human-readable tables.

use crate::{Histogram, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the [`RunReport`] JSON layout. Bump on breaking changes so
/// downstream diff tooling can refuse mismatched files.
///
/// History: v1 — initial layout; v2 — added the `lint` section
/// ([`LintSummary`], the region safety verifier's findings); v3 — added
/// the `scheduler` section ([`SchedulerSummary`], the experiment
/// harness's job/cache accounting); v4 — added the `distributions`
/// section ([`Distribution`] percentile summaries backed by log-bucketed
/// histograms) and bucket state inside every serialized [`Histogram`];
/// v5 — added `notes` to [`LintSummary`] (proof-artifact findings from
/// the interval analysis) and the `precision` section
/// ([`PrecisionSummary`], static fixed-point bit-width requirements);
/// v6 — added the `serving` section ([`ServingSummary`], the
/// `parrot-serve` invocation server's request/batching/fairness
/// accounting).
pub const SCHEMA_VERSION: u64 = 6;

/// Percentile summary of one sampled quantity, added in schema v4.
///
/// Carries the full log-bucketed [`Histogram`] next to the extracted
/// percentiles so downstream tooling can re-merge or re-query shards,
/// while diff scripts only need the flat p50/p99 fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// The backing histogram (mergeable, re-queryable).
    pub hist: Histogram,
}

impl Distribution {
    /// Summarizes `hist` into its percentile snapshot.
    pub fn from_histogram(hist: &Histogram) -> Distribution {
        Distribution {
            count: hist.count,
            mean: hist.mean(),
            min: hist.min,
            max: hist.max,
            p50: hist.p50(),
            p90: hist.p90(),
            p99: hist.p99(),
            p999: hist.p999(),
            hist: hist.clone(),
        }
    }
}

/// Wall-clock duration of one named pipeline phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name (`observe`, `topology_search`, `timing.baseline`, …).
    pub name: String,
    /// Duration in microseconds.
    pub elapsed_us: u64,
}

/// Aggregated findings from the region safety verifier (`parrot-lint`),
/// keyed per severity and per lint name.
///
/// The verifier itself lives in `approx-ir`; this type only carries the
/// counts, so telemetry stays dependency-free. Severity strings are the
/// verifier's `error` / `warning` / `info` / `note` (notes, added in
/// schema v5, are positive proof artifacts, not problems).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LintSummary {
    /// Error-severity findings (a region with any of these is rejected
    /// before observation/training).
    pub errors: u64,
    /// Warning-severity findings (suspicious but executable).
    pub warnings: u64,
    /// Info-severity findings (statically unprovable, checked at runtime).
    pub infos: u64,
    /// Note-severity findings (properties the static analysis *proved*:
    /// in-bounds scratch accesses, terminating loops).
    pub notes: u64,
    /// Finding counts keyed by lint name (`uninit-read`,
    /// `proven-scratch-bounds`, …).
    pub by_lint: BTreeMap<String, u64>,
}

impl LintSummary {
    /// Records one finding of `lint` at `severity` (`"error"`,
    /// `"warning"`, `"info"`, or `"note"`; anything else counts only
    /// under [`by_lint`](Self::by_lint)).
    pub fn record(&mut self, severity: &str, lint: &str) {
        match severity {
            "error" => self.errors += 1,
            "warning" => self.warnings += 1,
            "info" => self.infos += 1,
            "note" => self.notes += 1,
            _ => {}
        }
        *self.by_lint.entry(lint.to_string()).or_insert(0) += 1;
    }

    /// Total findings across severities, notes included.
    pub fn total(&self) -> u64 {
        self.errors + self.warnings + self.infos + self.notes
    }

    /// Whether nothing above note severity was recorded (notes are
    /// proofs, not problems).
    pub fn is_clean(&self) -> bool {
        self.errors + self.warnings + self.infos == 0
    }

    /// Exports the summary into `metrics` under `prefix`: per-severity
    /// counters (`<prefix>.errors`, …) and one `<prefix>.by.<lint>`
    /// counter per lint that fired.
    pub fn export(&self, metrics: &mut MetricsRegistry, prefix: &str) {
        metrics.add(&format!("{prefix}.errors"), self.errors);
        metrics.add(&format!("{prefix}.warnings"), self.warnings);
        metrics.add(&format!("{prefix}.infos"), self.infos);
        metrics.add(&format!("{prefix}.notes"), self.notes);
        for (lint, n) in &self.by_lint {
            metrics.add(&format!("{prefix}.by.{lint}"), *n);
        }
    }
}

/// One value row of the static precision analysis, added in schema v5.
///
/// Bounds are `None` when the interval analysis could not bound the
/// value (the JSON carries `null`; ±∞ is deliberately never serialized).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRow {
    /// `in<k>` for region inputs, `out<k>` for outputs, `intermediates`
    /// for the hull over float-typed definitions.
    pub name: String,
    /// Inferred lower bound, when finite.
    pub lo: Option<f32>,
    /// Inferred upper bound, when finite.
    pub hi: Option<f32>,
    /// Whether the value may be NaN.
    pub may_be_nan: bool,
    /// Sign + integer-part bits, `None` when unbounded.
    pub int_bits: Option<u8>,
    /// Fraction bits to f32-ulp resolution, `None` when unbounded.
    pub frac_bits: Option<u8>,
}

/// Static fixed-point precision requirements for the benchmark's region
/// (the analysis lives in `approx-ir`; this type only carries the
/// derived numbers). Added in schema v5.
///
/// Mirrors the NPU's fixed-point datapath sizing question: how many
/// integer and fraction bits each region value needs, given the region's
/// declared input ranges.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrecisionSummary {
    /// Whether every tracked value has a finite requirement.
    pub bounded: bool,
    /// Widest integer-bit requirement across rows, `None` when any row
    /// is unbounded.
    pub datapath_int_bits: Option<u8>,
    /// Widest fraction-bit requirement across rows, `None` when any row
    /// is unbounded.
    pub datapath_frac_bits: Option<u8>,
    /// Per-value rows (inputs, outputs, intermediate hull, in order).
    pub values: Vec<PrecisionRow>,
}

/// Job-scheduler and artifact-cache accounting from the experiment
/// harness (`crates/harness`), added in schema v3.
///
/// Per-benchmark reports carry an all-zero summary (their content must be
/// byte-identical across `--jobs` settings, while scheduling is
/// inherently timing-dependent); the sweep-level report carries the real
/// numbers. The harness defines the semantics; telemetry only carries the
/// counts, mirroring how [`LintSummary`] stays verifier-free.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedulerSummary {
    /// Worker threads the sweep ran with (`--jobs`).
    pub workers: u64,
    /// Nodes in the job DAG.
    pub jobs_total: u64,
    /// Jobs whose body actually executed (cache misses).
    pub jobs_executed: u64,
    /// Jobs served from the content-addressed artifact cache.
    pub jobs_from_cache: u64,
    /// Jobs whose body returned an error.
    pub jobs_failed: u64,
    /// Jobs skipped because an upstream dependency failed.
    pub jobs_skipped: u64,
    /// Artifact-cache lookups that hit.
    pub cache_hits: u64,
    /// Artifact-cache lookups that missed.
    pub cache_misses: u64,
    /// Artifacts written back to the cache.
    pub cache_writes: u64,
    /// High-water mark of the ready queue (jobs runnable but not yet
    /// claimed by a worker).
    pub max_queue_depth: u64,
    /// Whole-sweep wall-clock time in microseconds.
    pub wall_clock_us: u64,
    /// Wall-clock microseconds spent executing each pipeline stage,
    /// summed over jobs (cache hits contribute their load time).
    pub stage_wall_us: BTreeMap<String, u64>,
}

impl SchedulerSummary {
    /// Cache hit rate over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Whether every job was served from the cache (a fully warm sweep).
    pub fn fully_warm(&self) -> bool {
        self.jobs_total > 0 && self.jobs_from_cache == self.jobs_total
    }

    /// Exports the summary into `metrics` under `prefix`
    /// (e.g. `scheduler`): per-field counters, the hit-rate gauge, and
    /// one `<prefix>.stage.<name>_us` counter per stage.
    pub fn export(&self, metrics: &mut MetricsRegistry, prefix: &str) {
        metrics.add(&format!("{prefix}.workers"), self.workers);
        metrics.add(&format!("{prefix}.jobs_total"), self.jobs_total);
        metrics.add(&format!("{prefix}.jobs_executed"), self.jobs_executed);
        metrics.add(&format!("{prefix}.jobs_from_cache"), self.jobs_from_cache);
        metrics.add(&format!("{prefix}.jobs_failed"), self.jobs_failed);
        metrics.add(&format!("{prefix}.jobs_skipped"), self.jobs_skipped);
        metrics.add(&format!("{prefix}.cache_hits"), self.cache_hits);
        metrics.add(&format!("{prefix}.cache_misses"), self.cache_misses);
        metrics.add(&format!("{prefix}.cache_writes"), self.cache_writes);
        metrics.add(&format!("{prefix}.max_queue_depth"), self.max_queue_depth);
        metrics.set_gauge(&format!("{prefix}.cache_hit_rate"), self.hit_rate());
        for (stage, us) in &self.stage_wall_us {
            metrics.add(&format!("{prefix}.stage.{stage}_us"), *us);
        }
    }
}

/// Per-tenant accounting from one `parrot-serve` run, added in schema v6.
///
/// Latency percentiles are end-to-end (submit to completion) in
/// microseconds, re-queryable from the `serve.latency_us.<tenant>` entry
/// of [`RunReport::distributions`] when present.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantServing {
    /// Scheduling weight (deficit round-robin credits per round).
    pub weight: u64,
    /// Requests answered (NPU or precise path).
    pub completed: u64,
    /// Requests answered by the batched NPU path.
    pub npu_served: u64,
    /// Requests answered by the precise CPU path (explicit region
    /// offloads plus quality-budget degradation).
    pub precise_served: u64,
    /// Requests rejected with backpressure (`retry-after`).
    pub rejected: u64,
    /// Requests that missed their deadline and got a timeout reply.
    pub timed_out: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile end-to-end latency, microseconds.
    pub p999_us: f64,
}

/// Invocation-server accounting from `parrot-serve` /
/// `parrot-serve-bench` (`crates/serve`), added in schema v6.
///
/// All-default outside serving runs, mirroring how [`SchedulerSummary`]
/// stays all-zero outside harness sweeps. The serve crate defines the
/// semantics; telemetry only carries the numbers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingSummary {
    /// Requests received (accepted + rejected + malformed).
    pub requests_total: u64,
    /// Requests answered with outputs (NPU or precise path).
    pub completed: u64,
    /// Requests answered by the batched NPU path.
    pub npu_served: u64,
    /// Requests answered by the precise CPU path.
    pub precise_served: u64,
    /// Requests rejected with backpressure (bounded queue full).
    pub rejected: u64,
    /// Requests that missed their deadline.
    pub timed_out: u64,
    /// Frames that failed to decode or carried an invalid body.
    pub protocol_errors: u64,
    /// Batches flushed through the NPU evaluator.
    pub batches: u64,
    /// Mean invocations per flushed batch (0 when no batch flushed).
    pub batch_occupancy_mean: f64,
    /// Simulated NPU context switches (tenant config reloads).
    pub context_switches: u64,
    /// Simulated cycles spent saving/restoring configs across switches.
    pub context_switch_cycles: u64,
    /// Completed invocations per wall-clock second.
    pub invocations_per_s: f64,
    /// Jain fairness index over weight-normalized per-tenant completed
    /// throughput (1.0 = perfectly weighted-fair; 0 when no tenant
    /// completed anything).
    pub fairness_index: f64,
    /// Per-tenant breakdown, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantServing>,
}

impl ServingSummary {
    /// Fraction of completed requests served by the NPU path.
    pub fn npu_fraction(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.npu_served as f64 / self.completed as f64
        }
    }

    /// Exports the summary into `metrics` under `prefix`
    /// (e.g. `serving`): per-field counters and gauges, plus per-tenant
    /// `<prefix>.tenant.<name>.completed` counters.
    pub fn export(&self, metrics: &mut MetricsRegistry, prefix: &str) {
        metrics.add(&format!("{prefix}.requests_total"), self.requests_total);
        metrics.add(&format!("{prefix}.completed"), self.completed);
        metrics.add(&format!("{prefix}.npu_served"), self.npu_served);
        metrics.add(&format!("{prefix}.precise_served"), self.precise_served);
        metrics.add(&format!("{prefix}.rejected"), self.rejected);
        metrics.add(&format!("{prefix}.timed_out"), self.timed_out);
        metrics.add(&format!("{prefix}.protocol_errors"), self.protocol_errors);
        metrics.add(&format!("{prefix}.batches"), self.batches);
        metrics.add(&format!("{prefix}.context_switches"), self.context_switches);
        metrics.add(
            &format!("{prefix}.context_switch_cycles"),
            self.context_switch_cycles,
        );
        metrics.set_gauge(
            &format!("{prefix}.batch_occupancy_mean"),
            self.batch_occupancy_mean,
        );
        metrics.set_gauge(
            &format!("{prefix}.invocations_per_s"),
            self.invocations_per_s,
        );
        metrics.set_gauge(&format!("{prefix}.fairness_index"), self.fairness_index);
        metrics.set_gauge(&format!("{prefix}.npu_fraction"), self.npu_fraction());
        for (name, t) in &self.tenants {
            metrics.add(&format!("{prefix}.tenant.{name}.completed"), t.completed);
        }
    }
}

/// Machine-readable record of one benchmark run.
///
/// Serialized (pretty JSON) into `results/<benchmark>.json` by the bench
/// binaries when `--json-out` is given. Two reports from different
/// commits can be diffed key-by-key: phase timings show where compile or
/// simulation time moved, and the metrics registry carries every unified
/// counter (core `SimStats`, NPU event counts, training statistics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// The suite or binary that produced the report (e.g. `run_all`).
    pub suite: String,
    /// Benchmark name (`fft`, `sobel`, …).
    pub benchmark: String,
    /// Run mode: `fast` or `paper`.
    pub mode: String,
    /// Whole-run wall-clock time in microseconds.
    pub wall_clock_us: u64,
    /// Per-phase wall-clock timings, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Region safety-verifier findings for the benchmark's region.
    pub lint: LintSummary,
    /// Static fixed-point precision requirements for the benchmark's
    /// region (all-default when no precision analysis ran; see
    /// [`PrecisionSummary`]). Added in schema v5.
    pub precision: PrecisionSummary,
    /// Experiment-harness scheduler and artifact-cache accounting
    /// (all-zero outside harness-driven sweeps; see [`SchedulerSummary`]).
    pub scheduler: SchedulerSummary,
    /// Invocation-server accounting (all-default outside `parrot-serve`
    /// runs; see [`ServingSummary`]). Added in schema v6.
    pub serving: ServingSummary,
    /// Percentile summaries keyed by quantity name
    /// (`npu.invocation_cycles`, `region.output_error`, …), added in
    /// schema v4. Per-benchmark entries are deterministic (simulated
    /// cycles, output error); wall-clock distributions appear only in the
    /// sweep-level report.
    pub distributions: BTreeMap<String, Distribution>,
    /// Unified counters/gauges/histograms gathered from every subsystem.
    pub metrics: MetricsRegistry,
}

impl RunReport {
    /// An empty report for `benchmark` produced by `suite` in `mode`.
    pub fn new(suite: &str, benchmark: &str, mode: &str) -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            suite: suite.to_string(),
            benchmark: benchmark.to_string(),
            mode: mode.to_string(),
            wall_clock_us: 0,
            phases: Vec::new(),
            lint: LintSummary::default(),
            precision: PrecisionSummary::default(),
            scheduler: SchedulerSummary::default(),
            serving: ServingSummary::default(),
            distributions: BTreeMap::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Appends one phase timing.
    pub fn push_phase(&mut self, timing: PhaseTiming) {
        self.phases.push(timing);
    }

    /// Records the percentile summary of `hist` under `name` (skipping
    /// empty histograms, which carry no information).
    pub fn push_distribution(&mut self, name: &str, hist: &Histogram) {
        if hist.count > 0 {
            self.distributions
                .insert(name.to_string(), Distribution::from_histogram(hist));
        }
    }

    /// Total time across recorded phases, in microseconds.
    pub fn phase_total_us(&self) -> u64 {
        self.phases.iter().map(|p| p.elapsed_us).sum()
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a missing field, or a schema version this
    /// build does not understand.
    pub fn from_json(s: &str) -> Result<RunReport, serde::DeError> {
        let report: RunReport = serde::json::from_str(s)?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(serde::DeError::msg(format!(
                "unsupported run-report schema version {} (this build reads {})",
                report.schema_version, SCHEMA_VERSION
            )));
        }
        Ok(report)
    }

    /// Writes the report as `<dir>/<benchmark>.json`, creating `dir` if
    /// needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or the file written.
    pub fn write_into(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.benchmark));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let mut report = RunReport::new("run_all", "fft", "fast");
        report.wall_clock_us = 42_000;
        report.push_phase(PhaseTiming {
            name: "observe".into(),
            elapsed_us: 1_000,
        });
        report.push_phase(PhaseTiming {
            name: "train".into(),
            elapsed_us: 41_000,
        });
        report.metrics.add("uarch.baseline.cycles", 123);
        report.metrics.set_gauge("uarch.baseline.ipc", 2.5);
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.phase_total_us(), 42_000);
    }

    #[test]
    fn lint_summary_records_and_exports() {
        let mut lint = LintSummary::default();
        assert!(lint.is_clean());
        lint.record("error", "uninit-read");
        lint.record("warning", "dead-store");
        lint.record("warning", "dead-store");
        lint.record("info", "unproven-scratch-bounds");
        lint.record("note", "proven-scratch-bounds");
        assert_eq!(lint.errors, 1);
        assert_eq!(lint.warnings, 2);
        assert_eq!(lint.infos, 1);
        assert_eq!(lint.notes, 1);
        assert_eq!(lint.total(), 5);
        assert_eq!(lint.by_lint["dead-store"], 2);

        let mut metrics = MetricsRegistry::new();
        lint.export(&mut metrics, "lint");
        assert_eq!(metrics.counter("lint.errors"), 1);
        assert_eq!(metrics.counter("lint.warnings"), 2);
        assert_eq!(metrics.counter("lint.notes"), 1);
        assert_eq!(metrics.counter("lint.by.dead-store"), 2);
        assert_eq!(metrics.counter("lint.by.uninit-read"), 1);
    }

    #[test]
    fn notes_do_not_make_a_report_dirty() {
        let mut lint = LintSummary::default();
        lint.record("note", "proven-loop-bounds");
        assert!(lint.is_clean(), "proofs are not problems");
        lint.record("info", "unproven-scratch-bounds");
        assert!(!lint.is_clean());
    }

    #[test]
    fn precision_section_survives_the_json_round_trip() {
        let mut report = RunReport::new("run_all", "jpeg", "fast");
        report.precision.bounded = false;
        report.precision.values = vec![PrecisionRow {
            name: "intermediates".into(),
            lo: None, // unbounded below: serialized as null, not -inf
            hi: Some(255.0),
            may_be_nan: true,
            int_bits: None,
            frac_bits: None,
        }];
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.precision.values[0].lo, None);
        assert_eq!(back.precision.values[0].hi, Some(255.0));
    }

    #[test]
    fn lint_section_survives_the_json_round_trip() {
        let mut report = RunReport::new("run_all", "sobel", "fast");
        report.lint.record("warning", "unbounded-loop");
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.lint.warnings, 1);
        assert_eq!(back, report);
    }

    #[test]
    fn distributions_survive_the_json_round_trip() {
        let mut hist = Histogram::default();
        for i in 1..=100 {
            hist.observe(i as f64 * 10.0);
        }
        let mut report = RunReport::new("run_all", "fft", "fast");
        report.push_distribution("npu.invocation_cycles", &hist);
        let empty = Histogram::default();
        report.push_distribution("ignored.empty", &empty);
        assert!(!report.distributions.contains_key("ignored.empty"));

        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        let dist = &back.distributions["npu.invocation_cycles"];
        assert_eq!(dist.count, 100);
        assert!(dist.p50 <= dist.p90 && dist.p90 <= dist.p99 && dist.p99 <= dist.p999);
        assert_eq!(dist.hist.quantile(0.99), dist.p99, "hist must re-query");
    }

    #[test]
    fn serving_section_survives_the_json_round_trip() {
        let mut report = RunReport::new("parrot-serve-bench", "serve", "fast");
        report.serving.requests_total = 1_000;
        report.serving.completed = 990;
        report.serving.npu_served = 900;
        report.serving.precise_served = 90;
        report.serving.rejected = 8;
        report.serving.timed_out = 2;
        report.serving.batches = 70;
        report.serving.batch_occupancy_mean = 14.1;
        report.serving.invocations_per_s = 125_000.0;
        report.serving.fairness_index = 0.99;
        report.serving.tenants.insert(
            "t0".into(),
            TenantServing {
                weight: 2,
                completed: 500,
                npu_served: 500,
                p50_us: 120.0,
                p99_us: 900.0,
                p999_us: 2_400.0,
                ..TenantServing::default()
            },
        );
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!((back.serving.npu_fraction() - 900.0 / 990.0).abs() < 1e-12);

        let mut metrics = MetricsRegistry::new();
        back.serving.export(&mut metrics, "serving");
        assert_eq!(metrics.counter("serving.completed"), 990);
        assert_eq!(metrics.counter("serving.tenant.t0.completed"), 500);
        assert_eq!(metrics.gauge("serving.fairness_index"), Some(0.99));
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let mut report = RunReport::new("run_all", "fft", "fast");
        report.schema_version = SCHEMA_VERSION + 1;
        let err = RunReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn write_into_creates_dir_and_file() {
        let dir = std::env::temp_dir().join(format!("telemetry-report-{}", std::process::id()));
        let report = RunReport::new("table1", "sobel", "paper");
        let path = report.write_into(&dir).unwrap();
        assert!(path.ends_with("sobel.json"));
        let back = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Property tests for the log-bucketed streaming histogram: sharded
//! recording must merge back to the whole-stream state, quantiles must be
//! monotone and bounded by observed samples, and bucket boundaries must
//! be a pure function of the value (no platform- or order-dependence).

use proptest::prelude::*;
use telemetry::Histogram;

/// Sample values spanning ten orders of magnitude plus the non-positive
/// underflow cases.
fn sample_value() -> impl Strategy<Value = f64> {
    (0u8..10, 1e-6f64..1e6).prop_map(|(tag, v)| match tag {
        0 => -(v % 10.0), // negative underflow
        1 => 0.0,         // exact-zero underflow
        _ => v,           // positive, log-bucketed
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Recording a stream in shards and merging (in either order) gives
    /// exactly the whole-stream count/min/max/bucket state.
    #[test]
    fn merge_of_shards_equals_whole_stream(
        samples in proptest::collection::vec(sample_value(), 1..300),
        split in 0usize..300,
    ) {
        let split = split.min(samples.len());
        let mut whole = Histogram::default();
        for &v in &samples {
            whole.observe(v);
        }

        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for &v in &samples[..split] {
            left.observe(v);
        }
        for &v in &samples[split..] {
            right.observe(v);
        }

        let mut forward = left.clone();
        forward.merge(&right);
        let mut backward = right.clone();
        backward.merge(&left);

        for merged in [&forward, &backward] {
            prop_assert_eq!(merged.count, whole.count);
            prop_assert_eq!(merged.min, whole.min);
            prop_assert_eq!(merged.max, whole.max);
            prop_assert_eq!(merged.nonpositive(), whole.nonpositive());
            prop_assert_eq!(merged.buckets(), whole.buckets());
            // f64 addition is not associative; sum agrees only approximately.
            let tol = 1e-9 * whole.sum.abs().max(1.0);
            prop_assert!((merged.sum - whole.sum).abs() <= tol);
        }
    }

    /// quantile(q) never decreases as q grows, and always stays inside
    /// the observed [min, max].
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in proptest::collection::vec(sample_value(), 1..200),
    ) {
        let mut h = Histogram::default();
        for &v in &samples {
            h.observe(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({}) = {} < {}", q, v, prev);
            prop_assert!(v >= h.min && v <= h.max, "quantile({}) = {} outside [{}, {}]", q, v, h.min, h.max);
            prev = v;
        }
        prop_assert_eq!(h.quantile(0.0), h.min);
        prop_assert_eq!(h.quantile(1.0), h.max);
    }

    /// The bucket index is deterministic, its bounds bracket the value,
    /// and the bucket's relative width never exceeds the 1/128 design
    /// bound — for any positive finite sample.
    #[test]
    fn bucket_boundaries_are_deterministic(v in 1e-12f64..1e12) {
        let idx = Histogram::bucket_index(v);
        prop_assert_eq!(idx, Histogram::bucket_index(v), "index must be pure");
        let (lo, hi) = Histogram::bucket_bounds(idx);
        prop_assert!(lo <= v && v < hi, "{} outside [{}, {})", v, lo, hi);
        prop_assert!((hi - lo) / lo <= 1.0 / 128.0 + 1e-12);
        // Monotone: a strictly larger value in a different bucket has a
        // larger index.
        let idx2 = Histogram::bucket_index(v * 1.01);
        prop_assert!(idx2 >= idx);
    }

    /// Quantiles stay within one bucket width (≈0.78% relative) of the
    /// true order statistic for positive samples.
    #[test]
    fn quantile_error_is_bounded(
        mut samples in proptest::collection::vec(1e-3f64..1e9, 2..200),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::default();
        for &v in &samples {
            h.observe(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let truth = samples[rank - 1];
        let got = h.quantile(q);
        prop_assert!(
            (got - truth).abs() <= truth / 128.0 + 1e-12,
            "quantile({}) = {}, true order statistic {}",
            q, got, truth
        );
    }
}

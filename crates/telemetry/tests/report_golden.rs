//! Golden-file test: a checked-in v1 run report must keep parsing, and
//! re-serializing it must preserve every value. This pins the external
//! JSON schema — if this test breaks, bump `SCHEMA_VERSION` and update
//! the diff documentation instead of silently changing the layout.

use telemetry::RunReport;

const GOLDEN: &str = include_str!("data/run_report_v1.json");

#[test]
fn golden_report_parses_back() {
    let report = RunReport::from_json(GOLDEN).expect("golden v1 report must parse");
    assert_eq!(report.schema_version, telemetry::SCHEMA_VERSION);
    assert_eq!(report.suite, "run_all");
    assert_eq!(report.benchmark, "fft");
    assert_eq!(report.mode, "fast");
    assert_eq!(report.wall_clock_us, 123_456);

    assert_eq!(report.phases.len(), 3);
    assert_eq!(report.phases[0].name, "observe");
    assert_eq!(report.phases[1].elapsed_us, 100_000);
    assert_eq!(report.phase_total_us(), 102_450);

    assert_eq!(report.metrics.counter("uarch.baseline.cycles"), 900_000);
    assert_eq!(report.metrics.counter("npu.macs"), 5_120);
    assert_eq!(report.metrics.gauge("uarch.baseline.ipc"), Some(1.5));
    let mse = report.metrics.histogram("ann.search.test_mse").unwrap();
    assert_eq!(mse.count, 2);
    assert_eq!(mse.min, 0.1);
    assert_eq!(mse.max, 0.4);
}

#[test]
fn golden_report_round_trips_unchanged() {
    let report = RunReport::from_json(GOLDEN).unwrap();
    let back = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);
}

#[test]
fn missing_field_is_an_error_not_a_default() {
    let truncated = GOLDEN.replace("\"wall_clock_us\": 123456,", "");
    assert!(RunReport::from_json(&truncated).is_err());
}

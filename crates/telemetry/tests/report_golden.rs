//! Golden-file test: a checked-in v6 run report must keep parsing, and
//! re-serializing it must preserve every value. This pins the external
//! JSON schema — if this test breaks, bump `SCHEMA_VERSION`, regenerate
//! the golden (`cargo run -p telemetry --example gen_golden_v6`), and
//! update the diff documentation instead of silently changing the layout.
//!
//! Schema history: v1 → v2 added the required `lint` section (region
//! safety-verifier findings); v2 → v3 added the required `scheduler`
//! section (experiment-harness job/cache accounting); v3 → v4 added the
//! required `distributions` section (percentile summaries) and bucket
//! state inside every serialized histogram; v4 → v5 added the required
//! `notes` lint counter and the `precision` section (static fixed-point
//! bit-width requirements); v5 → v6 added the required `serving` section
//! (the `parrot-serve` invocation server's request/batching/fairness
//! accounting). v1–v5 reports are deliberately rejected — the checks
//! below pin that behaviour.

use telemetry::RunReport;

const GOLDEN: &str = include_str!("data/run_report_v6.json");
const GOLDEN_V1: &str = include_str!("data/run_report_v1.json");
const GOLDEN_V2: &str = include_str!("data/run_report_v2.json");
const GOLDEN_V3: &str = include_str!("data/run_report_v3.json");
const GOLDEN_V4: &str = include_str!("data/run_report_v4.json");
const GOLDEN_V5: &str = include_str!("data/run_report_v5.json");

#[test]
fn golden_report_parses_back() {
    let report = RunReport::from_json(GOLDEN).expect("golden v6 report must parse");
    assert_eq!(report.schema_version, telemetry::SCHEMA_VERSION);
    assert_eq!(report.suite, "parrot-run");
    assert_eq!(report.benchmark, "sweep");
    assert_eq!(report.mode, "fast");
    assert_eq!(report.wall_clock_us, 123_456);

    assert_eq!(report.phases.len(), 4);
    assert_eq!(report.phases[0].name, "verify");
    assert_eq!(report.phases[1].name, "observe");
    assert_eq!(report.phases[2].elapsed_us, 100_000);
    assert_eq!(report.phase_total_us(), 102_570);

    assert_eq!(report.lint.errors, 0);
    assert_eq!(report.lint.warnings, 1);
    assert_eq!(report.lint.infos, 2);
    assert_eq!(report.lint.notes, 3);
    assert_eq!(report.lint.by_lint["unproven-scratch-bounds"], 2);
    assert_eq!(report.lint.by_lint["proven-scratch-bounds"], 2);
    assert_eq!(report.lint.by_lint["proven-loop-bounds"], 1);

    assert!(report.precision.bounded);
    assert_eq!(report.precision.datapath_int_bits, Some(9));
    assert_eq!(report.precision.datapath_frac_bits, Some(23));
    assert_eq!(report.precision.values.len(), 3);
    assert_eq!(report.precision.values[0].name, "in0");
    assert_eq!(report.precision.values[0].lo, Some(0.0));
    assert_eq!(report.precision.values[0].hi, Some(255.0));
    assert!(!report.precision.values[0].may_be_nan);
    assert_eq!(report.precision.values[2].name, "intermediates");
    assert_eq!(report.precision.values[2].frac_bits, Some(23));

    assert_eq!(report.scheduler.workers, 4);
    assert_eq!(report.scheduler.jobs_total, 12);
    assert_eq!(report.scheduler.jobs_executed, 9);
    assert_eq!(report.scheduler.jobs_from_cache, 3);
    assert_eq!(report.scheduler.cache_hits, 3);
    assert_eq!(report.scheduler.cache_misses, 9);
    assert_eq!(report.scheduler.max_queue_depth, 6);
    assert!((report.scheduler.hit_rate() - 0.25).abs() < 1e-12);
    assert_eq!(report.scheduler.stage_wall_us["train"], 100_000);
    assert_eq!(report.scheduler.stage_wall_us.len(), 5);

    assert_eq!(report.distributions.len(), 2);
    let cycles = &report.distributions["npu.invocation_cycles"];
    assert_eq!(cycles.count, 10);
    assert_eq!(cycles.min, 60.0);
    assert_eq!(cycles.max, 250.0);
    assert!(cycles.p50 <= cycles.p90 && cycles.p90 <= cycles.p99 && cycles.p99 <= cycles.p999);
    assert_eq!(cycles.p999, 250.0);
    // The embedded histogram is live: re-querying reproduces the flat
    // percentile fields exactly.
    assert_eq!(cycles.hist.p99(), cycles.p99);
    assert_eq!(cycles.hist.buckets().values().sum::<u64>(), 10);
    let err = &report.distributions["region.output_error"];
    assert_eq!(err.count, 5);
    assert_eq!(err.hist.nonpositive(), 1, "exact-zero error underflows");

    assert_eq!(report.serving.requests_total, 1_000);
    assert_eq!(report.serving.completed, 990);
    assert_eq!(report.serving.npu_served, 900);
    assert_eq!(report.serving.precise_served, 90);
    assert_eq!(report.serving.rejected, 8);
    assert_eq!(report.serving.timed_out, 2);
    assert_eq!(report.serving.protocol_errors, 0);
    assert_eq!(report.serving.batches, 70);
    assert!(report.serving.batch_occupancy_mean > 14.0);
    assert_eq!(report.serving.context_switches, 35);
    assert_eq!(report.serving.invocations_per_s, 125_000.0);
    assert!((report.serving.fairness_index - 0.998).abs() < 1e-12);
    assert!((report.serving.npu_fraction() - 900.0 / 990.0).abs() < 1e-12);
    assert_eq!(report.serving.tenants.len(), 2);
    let alpha = &report.serving.tenants["alpha"];
    assert_eq!((alpha.weight, alpha.completed), (2, 660));
    assert!(alpha.p50_us <= alpha.p99_us && alpha.p99_us <= alpha.p999_us);
    // Weighted-fair shares: alpha (weight 2) completed twice beta's count.
    assert_eq!(
        alpha.completed,
        2 * report.serving.tenants["beta"].completed
    );

    assert_eq!(report.metrics.counter("uarch.baseline.cycles"), 900_000);
    assert_eq!(report.metrics.counter("npu.macs"), 5_120);
    assert_eq!(report.metrics.counter("lint.warnings"), 1);
    assert_eq!(report.metrics.counter("scheduler.jobs_from_cache"), 3);
    assert_eq!(report.metrics.gauge("uarch.baseline.ipc"), Some(1.5));
    assert_eq!(report.metrics.gauge("scheduler.cache_hit_rate"), Some(0.25));
    let mse = report.metrics.histogram("ann.search.test_mse").unwrap();
    assert_eq!(mse.count, 2);
    assert_eq!(mse.min, 0.1);
    assert_eq!(mse.max, 0.4);
}

#[test]
fn golden_report_round_trips_unchanged() {
    let report = RunReport::from_json(GOLDEN).unwrap();
    let back = RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);
}

#[test]
fn v1_report_without_lint_section_is_rejected() {
    // The required `lint` field is absent from v1 files, so parsing fails
    // before the explicit schema-version check even runs.
    let err = RunReport::from_json(GOLDEN_V1).unwrap_err();
    assert!(
        err.to_string().contains("lint") || err.to_string().contains("schema version"),
        "unexpected rejection reason: {err}"
    );
}

#[test]
fn v2_report_without_scheduler_section_is_rejected() {
    // v2 files predate the required `scheduler` field (and the v5 `notes`
    // counter inside `lint`), so parsing fails before the explicit
    // schema-version check even runs.
    let err = RunReport::from_json(GOLDEN_V2).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("scheduler") || msg.contains("notes") || msg.contains("schema version"),
        "unexpected rejection reason: {err}"
    );
}

#[test]
fn v3_report_without_distributions_is_rejected() {
    // v3 files predate the required `distributions` section, the bucketed
    // histogram fields, and the v5 `notes` counter inside `lint`, so
    // parsing fails before the explicit schema-version check even runs.
    let err = RunReport::from_json(GOLDEN_V3).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("distributions")
            || msg.contains("buckets")
            || msg.contains("notes")
            || msg.contains("schema version"),
        "unexpected rejection reason: {err}"
    );
}

#[test]
fn v4_report_without_precision_section_is_rejected() {
    // v4 files predate the required `notes` lint counter and the
    // `precision` section, so parsing fails before the explicit
    // schema-version check even runs.
    let err = RunReport::from_json(GOLDEN_V4).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("precision") || msg.contains("notes") || msg.contains("schema version"),
        "unexpected rejection reason: {err}"
    );
}

#[test]
fn v5_report_without_serving_section_is_rejected() {
    // v5 files predate the required `serving` section, so parsing fails
    // before the explicit schema-version check even runs.
    let err = RunReport::from_json(GOLDEN_V5).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("serving") || msg.contains("schema version"),
        "unexpected rejection reason: {err}"
    );
}

#[test]
fn missing_field_is_an_error_not_a_default() {
    let truncated = GOLDEN.replace("\"wall_clock_us\": 123456,\n  \"phases\"", "\"phases\"");
    assert!(
        truncated.len() < GOLDEN.len(),
        "replacement must actually strip the field"
    );
    assert!(RunReport::from_json(&truncated).is_err());
}

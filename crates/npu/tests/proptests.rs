//! Property-based tests: the cycle-accurate NPU is functionally
//! equivalent to the reference MLP evaluation, the static scheduler
//! conserves work, and the speculative FIFOs never corrupt committed
//! state.

use ann::{Mlp, Normalizer, Topology};
use npu::{BusDest, BusSource, InputFifo, NpuConfig, NpuParams, NpuSim, OutputFifo, Scheduler};
use proptest::prelude::*;

fn schedulable_topology() -> impl Strategy<Value = Topology> {
    (
        1usize..12,
        proptest::collection::vec(1usize..17, 1..3),
        1usize..8,
    )
        .prop_map(|(inputs, hidden, outputs)| {
            let mut layers = vec![inputs];
            layers.extend(hidden);
            layers.push(outputs);
            Topology::new(layers).expect("nonzero layers")
        })
}

fn config_for(topology: Topology, seed: u64) -> NpuConfig {
    let (i, o) = (topology.inputs(), topology.outputs());
    NpuConfig::new(
        Mlp::seeded(topology, seed),
        Normalizer::identity(i),
        Normalizer::identity(o),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hardware model computes exactly what `NpuConfig::evaluate`
    /// specifies, for arbitrary schedulable networks and inputs.
    #[test]
    fn sim_equals_reference(
        topology in schedulable_topology(),
        seed in 0u64..1000,
        input_seed in 0u64..1000,
    ) {
        let config = config_for(topology.clone(), seed);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        let inputs: Vec<f32> = (0..topology.inputs())
            .map(|i| (((input_seed + i as u64) * 2654435761) % 1000) as f32 / 1000.0)
            .collect();
        let got = sim.evaluate_invocation(&inputs).unwrap();
        let want = config.evaluate(&inputs);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    /// The scheduler assigns every neuron exactly once, keeps masks
    /// within the PE count, and ends with the output drain in order.
    #[test]
    fn scheduler_conserves_work(
        topology in schedulable_topology(),
        n_pes in 1usize..12,
    ) {
        let config = config_for(topology.clone(), 3);
        let params = NpuParams::with_pes(n_pes).unbounded();
        let schedule = Scheduler::new(params).schedule(&config).unwrap();
        // Total MACs = weights (minus biases, which seed accumulators).
        let macs: usize = schedule
            .pe_tasks
            .iter()
            .flatten()
            .map(|t| t.weights.len())
            .sum();
        let biases: usize = schedule.pe_tasks.iter().flatten().count();
        prop_assert_eq!(macs + biases, topology.weight_count());
        prop_assert_eq!(biases, topology.computing_neurons());
        // Masks never address PEs beyond the configured count.
        for entry in &schedule.entries {
            if let BusDest::Pes(mask) = entry.dest {
                prop_assert_eq!(mask >> n_pes, 0, "mask {:b} exceeds {} PEs", mask, n_pes);
            }
        }
        // The final entries drain outputs 0..n in order.
        let drains: Vec<usize> = schedule
            .entries
            .iter()
            .filter_map(|e| match (e.src, e.dest) {
                (BusSource::Neuron { index, .. }, BusDest::OutputFifo) => Some(index),
                _ => None,
            })
            .collect();
        let expected: Vec<usize> = (0..topology.outputs()).collect();
        prop_assert_eq!(drains, expected);
    }

    /// Config wire encoding round-trips for arbitrary networks.
    #[test]
    fn config_encoding_round_trips(topology in schedulable_topology(), seed in 0u64..1000) {
        let config = config_for(topology, seed);
        let decoded = NpuConfig::decode(&config.encode()).unwrap();
        prop_assert_eq!(decoded, config);
    }

    /// Input FIFO: any sequence of push/commit/read with a final squash of
    /// the speculative suffix leaves committed data intact and re-readable.
    #[test]
    fn input_fifo_squash_preserves_committed(
        values in proptest::collection::vec(-100.0f32..100.0, 1..20),
        n_commit in 0usize..20,
        n_read in 0usize..20,
    ) {
        let mut fifo = InputFifo::new(32);
        for &v in &values {
            fifo.push_spec(v).unwrap();
        }
        let n_commit = n_commit.min(values.len());
        for _ in 0..n_commit {
            fifo.commit_push();
        }
        let n_read = n_read.min(values.len());
        for _ in 0..n_read {
            fifo.read_next();
        }
        // Squash the whole speculative suffix.
        let squashed = values.len() - n_commit;
        let overrun = fifo.squash_pushes(squashed);
        prop_assert_eq!(overrun as usize, n_read.saturating_sub(n_commit));
        // Rewind and re-read: the committed prefix must be intact.
        fifo.rewind_to(0);
        for &expected in values.iter().take(n_commit) {
            prop_assert_eq!(fifo.read_next(), Some(expected));
        }
        prop_assert_eq!(fifo.read_next(), None);
    }

    /// Output FIFO: speculative pops always replay identically after a
    /// squash, regardless of interleaving.
    #[test]
    fn output_fifo_replay_is_exact(
        values in proptest::collection::vec(-100.0f32..100.0, 1..16),
        n_pop in 1usize..16,
    ) {
        let mut fifo = OutputFifo::new(32);
        for &v in &values {
            fifo.push(v).unwrap();
        }
        let n_pop = n_pop.min(values.len());
        let first: Vec<f32> = (0..n_pop).map(|_| fifo.pop_spec().unwrap()).collect();
        fifo.squash_pops(n_pop);
        let second: Vec<f32> = (0..n_pop).map(|_| fifo.pop_spec().unwrap()).collect();
        prop_assert_eq!(first, second);
    }

    /// Back-to-back invocations through one sim stay equivalent to the
    /// reference — no state leaks between invocations.
    #[test]
    fn repeated_invocations_are_independent(
        topology in schedulable_topology(),
        seed in 0u64..200,
    ) {
        let config = config_for(topology.clone(), seed);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        for round in 0..3u64 {
            let inputs: Vec<f32> = (0..topology.inputs())
                .map(|i| ((round * 13 + i as u64 * 7) % 100) as f32 / 100.0)
                .collect();
            let got = sim.evaluate_invocation(&inputs).unwrap();
            let want = config.evaluate(&inputs);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-5);
            }
        }
    }
}

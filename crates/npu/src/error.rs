use std::error::Error;
use std::fmt;

/// Errors from configuring or driving the NPU.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NpuError {
    /// A data or readback operation ran before any configuration.
    NotConfigured,
    /// The configuration word stream failed to decode.
    InvalidConfig(String),
    /// A network does not fit the NPU's structures.
    CapacityExceeded {
        /// Which structure overflowed.
        structure: &'static str,
        /// Entries required by the network.
        needed: usize,
        /// Entries available in hardware.
        available: usize,
    },
    /// An enqueue hit a full FIFO (callers should check occupancy first;
    /// the core model stalls the instruction instead).
    FifoFull(&'static str),
    /// A dequeue hit an empty FIFO.
    FifoEmpty(&'static str),
}

impl fmt::Display for NpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpuError::NotConfigured => write!(f, "npu has not been configured"),
            NpuError::InvalidConfig(why) => write!(f, "invalid npu configuration: {why}"),
            NpuError::CapacityExceeded {
                structure,
                needed,
                available,
            } => write!(
                f,
                "network needs {needed} {structure} entries but hardware has {available}"
            ),
            NpuError::FifoFull(name) => write!(f, "{name} fifo is full"),
            NpuError::FifoEmpty(name) => write!(f, "{name} fifo is empty"),
        }
    }
}

impl Error for NpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_message_names_structure() {
        let e = NpuError::CapacityExceeded {
            structure: "weight cache",
            needed: 600,
            available: 512,
        };
        assert!(e.to_string().contains("weight cache"));
        assert!(e.to_string().contains("600"));
    }
}

//! Cycle-accurate model of the paper's reconfigurable digital NPU.
//!
//! The MICRO 2012 NPU (paper Section 6, Figure 5) is an ASIC containing
//! eight identical processing engines (PEs) and a scaling unit, joined by a
//! single shared bus whose transfers are *statically scheduled* at compile
//! time from the trained network's topology. Each PE holds a weight buffer,
//! a small input FIFO, a multiply-add unit, a sigmoid lookup table, and an
//! output register file. The CPU communicates through three FIFOs — config,
//! input, and output — exposed to the pipeline via the `enq.c`/`deq.c`/
//! `enq.d`/`deq.d` ISA extensions (Section 5).
//!
//! This crate provides:
//!
//! * [`NpuConfig`] — the trained network plus normalization ranges, with a
//!   `u32` wire encoding (what `enq.c` ships and `deq.c` reads back on a
//!   context switch);
//! * [`Scheduler`]/[`NpuSchedule`] — the static neuron-to-PE assignment and
//!   bus schedule (Section 6.2);
//! * [`NpuSim`] — the cycle-accurate unit, including the speculative
//!   input/output FIFO protocol of Section 5.2 (`squash`);
//! * [`estimate_latency`] — per-invocation latency for a topology, used by
//!   the compiler's topology search;
//! * [`NpuStats`] — event counts for the energy model.
//!
//! # Modelling note
//!
//! The real PE writes neuron results into an 8-entry output register file
//! that the bus later reads. We store inter-layer values in per-layer
//! buffers (equivalent to streaming output-layer values straight to the
//! output FIFO and double-buffering between layers), which sidesteps
//! write-after-read hazards on register reuse without changing any
//! transfer count or latency. Capacity checks against the register file
//! size are still enforced per layer.
//!
//! # Example
//!
//! ```
//! use ann::{Mlp, Normalizer, Topology};
//! use npu::{NpuConfig, NpuParams, NpuSim};
//!
//! let topology = Topology::new(vec![2, 4, 1])?;
//! let mlp = Mlp::seeded(topology, 1);
//! let config = NpuConfig::new(
//!     mlp,
//!     Normalizer::identity(2),
//!     Normalizer::identity(1),
//! );
//! let mut sim = NpuSim::new(NpuParams::default());
//! sim.configure(&config)?;
//! sim.enqueue_input(0.3);
//! sim.enqueue_input(0.7);
//! sim.commit_inputs(2);
//! let out = sim.run_until_output().expect("one output");
//! let expected = config.evaluate(&[0.3, 0.7]);
//! assert!((out - expected[0]).abs() < 1e-5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod fifo;
mod params;
mod quant;
mod replay;
mod schedule;
mod sim;
mod stats;

pub use config::NpuConfig;
pub use error::NpuError;
pub use fifo::{InputFifo, OutputFifo};
pub use params::NpuParams;
pub use quant::{FormatSource, QuantInvocation, QuantizedNpu};
pub use replay::BatchEvaluator;
pub use schedule::{BusDest, BusEntry, BusSource, NpuSchedule, Scheduler};
pub use sim::NpuSim;
pub use stats::NpuStats;

/// Estimates the NPU's per-invocation latency (cycles from first input
/// consumed to last output produced) for `topology` under `params`, by
/// running one zero-weight invocation through the cycle-accurate model.
///
/// The paper's topology search uses this cost to break accuracy ties
/// ("the lowest latency on the NPU").
///
/// # Errors
///
/// Returns the scheduler's [`NpuError`] when the topology does not fit
/// the hardware — such candidates are excluded from the topology search.
pub fn try_estimate_latency(topology: &ann::Topology, params: &NpuParams) -> Result<u64, NpuError> {
    let mlp = ann::Mlp::zeroed(topology.clone());
    let config = NpuConfig::new(
        mlp,
        ann::Normalizer::identity(topology.inputs()),
        ann::Normalizer::identity(topology.outputs()),
    );
    let mut sim = NpuSim::new(params.clone());
    sim.configure(&config)?;
    for _ in 0..topology.inputs() {
        sim.enqueue_input(0.5);
    }
    sim.commit_inputs(topology.inputs());
    let start = sim.cycle();
    sim.run_until_idle();
    Ok(sim.cycle() - start)
}

/// Like [`try_estimate_latency`], for topologies known to fit.
///
/// # Panics
///
/// Panics if the topology cannot be scheduled under `params`.
pub fn estimate_latency(topology: &ann::Topology, params: &NpuParams) -> u64 {
    try_estimate_latency(topology, params)
        .expect("topology not schedulable under these NPU parameters")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::Topology;

    #[test]
    fn latency_grows_with_network_size() {
        let params = NpuParams::default();
        let small = estimate_latency(&Topology::new(vec![2, 2, 1]).unwrap(), &params);
        let large = estimate_latency(&Topology::new(vec![18, 32, 8, 2]).unwrap(), &params);
        assert!(large > 3 * small, "small={small} large={large}");
    }

    #[test]
    fn more_pes_reduce_latency_for_wide_layers() {
        let topology = Topology::new(vec![16, 32, 16]).unwrap();
        // One PE needs an oversized bus schedule buffer; the Figure 11
        // sensitivity sweep uses unbounded buffers for exactly this reason.
        let one = estimate_latency(&topology, &NpuParams::with_pes(1).unbounded());
        let eight = estimate_latency(&topology, &NpuParams::with_pes(8));
        assert!(eight < one, "1 PE: {one}, 8 PEs: {eight}");
    }
}

//! The cycle-accurate NPU model.

use crate::fifo::{InputFifo, OutputFifo};
use crate::schedule::{BusDest, BusSource, NpuSchedule, Scheduler};
use crate::{NpuConfig, NpuError, NpuParams, NpuStats};
use ann::SigmoidLut;
use std::collections::VecDeque;

/// A sigmoid evaluation in flight inside a PE.
#[derive(Debug, Clone, Copy)]
struct PendingSigmoid {
    layer: usize,
    neuron: usize,
    sum: f32,
    ready_at: u64,
}

/// Per-PE execution state within one invocation.
#[derive(Debug, Clone)]
struct PeRun {
    in_fifo: VecDeque<f32>,
    task_idx: usize,
    weight_idx: usize,
    acc: f32,
    pending: Option<PendingSigmoid>,
}

impl PeRun {
    fn new() -> Self {
        PeRun {
            in_fifo: VecDeque::new(),
            task_idx: 0,
            weight_idx: 0,
            acc: 0.0,
            pending: None,
        }
    }
}

/// One in-flight network evaluation.
#[derive(Debug, Clone)]
struct Invocation {
    bus_pc: usize,
    /// Cycle at which the invocation started (for latency accounting).
    start_cycle: u64,
    /// Normalized inputs latched from the input FIFO (multi-round layers
    /// re-read latched values instead of re-popping the FIFO).
    latched_inputs: Vec<f32>,
    /// Absolute input-FIFO position where this invocation started reading.
    input_start: u64,
    /// Raw FIFO entries consumed so far.
    raw_reads: usize,
    /// Computed neuron values per computing layer: `(value, ready_cycle)`.
    layer_values: Vec<Vec<Option<(f32, u64)>>>,
    outputs_pushed: usize,
    pes: Vec<PeRun>,
}

/// A completed invocation whose inputs may still be speculative; kept so a
/// later squash can invalidate its outputs.
#[derive(Debug, Clone, Copy)]
struct CompletedRecord {
    /// Absolute input-FIFO position one past this invocation's last input.
    input_end: u64,
    /// Outputs it pushed.
    outputs: usize,
}

#[derive(Debug, Clone)]
struct Configured {
    config: NpuConfig,
    schedule: NpuSchedule,
    encoded: Vec<u32>,
    inv: Option<Invocation>,
    history: VecDeque<CompletedRecord>,
}

/// The cycle-accurate NPU: eight (configurable) PEs, a statically
/// scheduled bus, a scaling unit, and the three CPU-facing FIFOs.
///
/// Drive it with [`tick`](Self::tick) (one cycle), feed it through the
/// FIFO methods, and roll back misspeculation with [`squash`](Self::squash).
/// The functional result of an invocation is bit-identical to
/// [`NpuConfig::evaluate`] (accumulation order and LUT sigmoid match).
#[derive(Debug)]
pub struct NpuSim {
    params: NpuParams,
    lut: SigmoidLut,
    state: Option<Configured>,
    input_fifo: InputFifo,
    output_fifo: OutputFifo,
    /// Config words accumulated from `enq.c` until a full configuration
    /// decodes.
    cfg_accum: Vec<u32>,
    /// Read position for `deq.c` context-switch readback.
    readback_pos: usize,
    cycle: u64,
    stats: NpuStats,
    /// Per-invocation latency distribution in simulated cycles (squashed
    /// invocations are excluded — they never complete architecturally).
    invocation_hist: telemetry::Histogram,
    /// xorshift64* state for deterministic fault injection.
    fault_rng: u64,
}

impl NpuSim {
    /// Creates an unconfigured NPU.
    pub fn new(params: NpuParams) -> Self {
        let lut = SigmoidLut::new(params.sigmoid_lut.max(2), 8.0);
        NpuSim {
            input_fifo: InputFifo::new(params.input_fifo),
            output_fifo: OutputFifo::new(params.output_fifo),
            lut,
            state: None,
            cfg_accum: Vec::new(),
            readback_pos: 0,
            cycle: 0,
            stats: NpuStats::default(),
            invocation_hist: telemetry::Histogram::default(),
            fault_rng: params.fault_seed | 1,
            params,
        }
    }

    /// The hardware parameters.
    pub fn params(&self) -> &NpuParams {
        &self.params
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated event statistics.
    pub fn stats(&self) -> &NpuStats {
        &self.stats
    }

    /// Per-invocation latency distribution in simulated cycles.
    pub fn invocation_cycles(&self) -> &telemetry::Histogram {
        &self.invocation_hist
    }

    /// Whether a configuration is loaded.
    pub fn configured(&self) -> bool {
        self.state.is_some()
    }

    /// Whether an invocation is in flight.
    pub fn busy(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.inv.is_some()) || self.input_fifo.readable()
    }

    // ------------------------------------------------------------------
    // Configuration path
    // ------------------------------------------------------------------

    /// Loads a configuration directly (the compiler-side shortcut; the ISA
    /// path is [`enq_config_word`](Self::enq_config_word)).
    ///
    /// # Errors
    ///
    /// Returns a scheduling error if the network does not fit the hardware.
    pub fn configure(&mut self, config: &NpuConfig) -> Result<(), NpuError> {
        let schedule = Scheduler::new(self.params.clone()).schedule(config)?;
        let encoded = config.encode();
        self.stats.config_words += encoded.len() as u64;
        self.state = Some(Configured {
            config: config.clone(),
            schedule,
            encoded,
            inv: None,
            history: VecDeque::new(),
        });
        self.readback_pos = 0;
        Ok(())
    }

    /// Absorbs one configuration word from `enq.c`. When the accumulated
    /// stream forms a complete configuration, the NPU reconfigures itself.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidConfig`] as soon as the stream is
    /// provably malformed, or a capacity error once complete.
    pub fn enq_config_word(&mut self, word: u32) -> Result<(), NpuError> {
        self.cfg_accum.push(word);
        self.stats.config_words += 1;
        if let Some(expected) = Self::expected_config_len(&self.cfg_accum)? {
            if self.cfg_accum.len() == expected {
                let words = std::mem::take(&mut self.cfg_accum);
                let config = NpuConfig::decode(&words)?;
                let schedule = Scheduler::new(self.params.clone()).schedule(&config)?;
                self.state = Some(Configured {
                    config,
                    schedule,
                    encoded: words,
                    inv: None,
                    history: VecDeque::new(),
                });
                self.readback_pos = 0;
            }
        }
        Ok(())
    }

    /// Total words of a configuration stream once its header is visible.
    fn expected_config_len(words: &[u32]) -> Result<Option<usize>, NpuError> {
        NpuConfig::stream_len(words)
    }

    /// Reads back one configuration word (`deq.c`), used by the OS to save
    /// NPU state on a context switch. Words stream out in the same order
    /// `enq.c` would write them; after the full configuration is read the
    /// position wraps.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::NotConfigured`] when nothing is loaded.
    pub fn deq_config_word(&mut self) -> Result<u32, NpuError> {
        let state = self.state.as_ref().ok_or(NpuError::NotConfigured)?;
        let word = state.encoded[self.readback_pos];
        self.readback_pos = (self.readback_pos + 1) % state.encoded.len();
        Ok(word)
    }

    /// Number of words [`deq_config_word`](Self::deq_config_word) yields
    /// per full readback.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::NotConfigured`] when nothing is loaded.
    pub fn config_len(&self) -> Result<usize, NpuError> {
        self.state
            .as_ref()
            .map(|s| s.encoded.len())
            .ok_or(NpuError::NotConfigured)
    }

    /// The loaded configuration, if any.
    pub fn current_config(&self) -> Option<&NpuConfig> {
        self.state.as_ref().map(|s| &s.config)
    }

    /// The compiled schedule, if configured.
    pub fn schedule(&self) -> Option<&NpuSchedule> {
        self.state.as_ref().map(|s| &s.schedule)
    }

    // ------------------------------------------------------------------
    // Data path (CPU side)
    // ------------------------------------------------------------------

    /// Whether an `enq.d` can execute (input FIFO not full).
    pub fn input_has_space(&self) -> bool {
        self.input_fifo.has_space()
    }

    /// Current input FIFO occupancy (issue logic accounts values still in
    /// flight on the CPU→NPU link against the remaining space).
    pub fn input_fifo_len(&self) -> usize {
        self.input_fifo.len()
    }

    /// Input FIFO capacity.
    pub fn input_fifo_capacity(&self) -> usize {
        self.params.input_fifo
    }

    /// Current output FIFO occupancy.
    pub fn output_fifo_len(&self) -> usize {
        self.output_fifo.len()
    }

    /// Speculatively enqueues an input value (at `enq.d` execute).
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — the issue logic must check
    /// [`input_has_space`](Self::input_has_space) first.
    pub fn enqueue_input(&mut self, value: f32) {
        self.input_fifo
            .push_spec(value)
            .expect("enq.d issued with full input fifo");
    }

    /// Notifies the NPU that `n` `enq.d` instructions committed.
    pub fn commit_inputs(&mut self, n: usize) {
        for _ in 0..n {
            self.input_fifo.commit_push();
        }
        self.retire_history();
    }

    /// Whether a `deq.d` can execute (an unread output exists).
    pub fn output_available(&self) -> bool {
        self.output_fifo.available()
    }

    /// Speculatively dequeues an output (at `deq.d` issue).
    ///
    /// # Panics
    ///
    /// Panics if no output is available — check
    /// [`output_available`](Self::output_available) first.
    pub fn dequeue_output(&mut self) -> f32 {
        self.output_fifo
            .pop_spec()
            .expect("deq.d issued with empty output fifo")
    }

    /// Notifies the NPU that `n` `deq.d` instructions committed.
    pub fn commit_outputs(&mut self, n: usize) {
        for _ in 0..n {
            self.output_fifo.commit_pop();
        }
    }

    /// Misspeculation rollback (paper Section 5.2): the core reports how
    /// many speculative `enq.d` and `deq.d` instructions were squashed.
    /// The NPU adjusts the input tail, restores the output FIFO's
    /// speculative head, resets any invocation that consumed invalidated
    /// inputs, and invalidates outputs derived from them.
    pub fn squash(&mut self, n_enq: usize, n_deq: usize) {
        if telemetry::enabled(telemetry::Level::Trace) {
            telemetry::emit(telemetry::Level::Trace, "npu::sim", || {
                telemetry::EventKind::NpuSquash {
                    enq: n_enq as u64,
                    deq: n_deq as u64,
                }
            });
        }
        self.output_fifo.squash_pops(n_deq);
        let overrun = self.input_fifo.squash_pushes(n_enq);
        if overrun == 0 {
            return;
        }
        let new_pushed = self.input_fifo.pushed();
        if let Some(state) = &mut self.state {
            // Invalidate completed speculative invocations that lost inputs,
            // youngest first.
            while let Some(rec) = state.history.back() {
                if rec.input_end > new_pushed {
                    self.output_fifo.invalidate_tail(rec.outputs);
                    self.stats.squashed_invocations += 1;
                    state.history.pop_back();
                } else {
                    break;
                }
            }
            // Reset the in-flight invocation if it read invalidated inputs.
            if let Some(inv) = &state.inv {
                let inv_end = inv.input_start + inv.raw_reads as u64;
                if inv_end > new_pushed {
                    self.output_fifo.invalidate_tail(inv.outputs_pushed);
                    self.input_fifo.rewind_to(inv.input_start);
                    self.stats.squashed_invocations += 1;
                    state.inv = None;
                }
            }
        }
    }

    fn retire_history(&mut self) {
        let committed = self.input_fifo.committed();
        if let Some(state) = &mut self.state {
            while let Some(rec) = state.history.front() {
                if rec.input_end <= committed {
                    state.history.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Cycle model
    // ------------------------------------------------------------------

    /// Advances the NPU by one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.stats.total_cycles += 1;
        let Some(state) = &mut self.state else {
            return;
        };
        // Start a new invocation when input data arrives.
        if state.inv.is_none() && self.input_fifo.readable() {
            let n_pes = state.schedule.n_pes;
            state.inv = Some(Invocation {
                bus_pc: 0,
                start_cycle: self.cycle,
                latched_inputs: Vec::new(),
                input_start: self.input_fifo.consumed(),
                raw_reads: 0,
                layer_values: state.schedule.layer_sizes[1..]
                    .iter()
                    .map(|&n| vec![None; n])
                    .collect(),
                outputs_pushed: 0,
                pes: (0..n_pes).map(|_| PeRun::new()).collect(),
            });
        }
        let Some(inv) = &mut state.inv else {
            return;
        };
        self.stats.active_cycles += 1;
        let now = self.cycle;

        // --- PE phase: resolve sigmoid results, then one MAC per PE. ---
        for (pe_idx, pe) in inv.pes.iter_mut().enumerate() {
            if let Some(p) = pe.pending {
                if p.ready_at <= now {
                    let y = self.lut.eval(p.sum);
                    inv.layer_values[p.layer][p.neuron] = Some((y, now));
                    self.stats.sigmoids += 1;
                    pe.pending = None;
                }
            }
            let tasks = &state.schedule.pe_tasks[pe_idx];
            if pe.task_idx < tasks.len() {
                let task = &tasks[pe.task_idx];
                let completing = pe.weight_idx + 1 == task.weights.len();
                // The single sigmoid unit must be free to accept a new sum.
                let blocked = completing && pe.pending.is_some();
                if !blocked {
                    if let Some(x) = pe.in_fifo.front().copied() {
                        if pe.weight_idx == 0 {
                            pe.acc = task.bias;
                        }
                        pe.in_fifo.pop_front();
                        let mut w = task.weights[pe.weight_idx];
                        let rate = self.params.weight_fault_rate;
                        if rate > 0.0 {
                            // xorshift64*: deterministic, dependency-free.
                            self.fault_rng ^= self.fault_rng << 13;
                            self.fault_rng ^= self.fault_rng >> 7;
                            self.fault_rng ^= self.fault_rng << 17;
                            let draw = (self.fault_rng >> 11) as f64 / (1u64 << 53) as f64;
                            if draw < rate {
                                let bit = (self.fault_rng % 32) as u32;
                                w = f32::from_bits(w.to_bits() ^ (1 << bit));
                                self.stats.faults_injected += 1;
                            }
                        }
                        pe.acc += w * x;
                        pe.weight_idx += 1;
                        self.stats.macs += 1;
                        self.stats.weight_reads += 1;
                        if pe.weight_idx == task.weights.len() {
                            pe.pending = Some(PendingSigmoid {
                                layer: task.layer,
                                neuron: task.neuron,
                                sum: pe.acc,
                                ready_at: now + 1,
                            });
                            pe.task_idx += 1;
                            pe.weight_idx = 0;
                        }
                    }
                }
            }
        }

        // --- Bus phase: at most one scheduled transfer per cycle. ---
        if inv.bus_pc < state.schedule.entries.len() {
            let entry = state.schedule.entries[inv.bus_pc];
            // Destination readiness first (so we never consume a source
            // value and then stall).
            let dest_ready = match entry.dest {
                BusDest::Pes(mask) => (0..state.schedule.n_pes).all(|pe| {
                    mask & (1 << pe) == 0 || inv.pes[pe].in_fifo.len() < self.params.pe_input_fifo
                }),
                BusDest::OutputFifo => self.output_fifo.has_space(),
            };
            if dest_ready {
                let value = match entry.src {
                    BusSource::InputFifo { index } => {
                        if index < inv.latched_inputs.len() {
                            Some(inv.latched_inputs[index])
                        } else if let Some(raw) = self.input_fifo.read_next() {
                            debug_assert_eq!(index, inv.latched_inputs.len());
                            let norm = state.config.input_norm().normalize_one(index, raw);
                            inv.latched_inputs.push(norm);
                            inv.raw_reads += 1;
                            self.stats.input_reads += 1;
                            Some(norm)
                        } else {
                            None
                        }
                    }
                    BusSource::Neuron { layer, index } => inv.layer_values[layer][index]
                        .filter(|&(_, at)| at <= now)
                        .map(|(v, _)| v),
                };
                if let Some(v) = value {
                    match entry.dest {
                        BusDest::Pes(mask) => {
                            for pe in 0..state.schedule.n_pes {
                                if mask & (1 << pe) != 0 {
                                    inv.pes[pe].in_fifo.push_back(v);
                                }
                            }
                        }
                        BusDest::OutputFifo => {
                            let denorm = state
                                .config
                                .output_norm()
                                .denormalize_one(inv.outputs_pushed, v);
                            self.output_fifo.push(denorm).expect("space checked above");
                            inv.outputs_pushed += 1;
                            self.stats.outputs_produced += 1;
                        }
                    }
                    inv.bus_pc += 1;
                    self.stats.bus_transfers += 1;
                }
            }
        }

        // --- Completion. ---
        let done = inv.bus_pc == state.schedule.entries.len()
            && inv.pes.iter().enumerate().all(|(i, pe)| {
                pe.task_idx == state.schedule.pe_tasks[i].len() && pe.pending.is_none()
            });
        if done {
            let raw_reads = inv.raw_reads;
            let outputs = inv.outputs_pushed;
            let input_end = inv.input_start + raw_reads as u64;
            // Latency in simulated cycles, inclusive of the start cycle —
            // deterministic, so it may feed per-benchmark reports.
            let latency = self.cycle - inv.start_cycle + 1;
            state.inv = None;
            state
                .history
                .push_back(CompletedRecord { input_end, outputs });
            self.input_fifo.mark_processed(raw_reads);
            self.stats.invocations += 1;
            self.invocation_hist.observe(latency as f64);
            if telemetry::enabled(telemetry::Level::Trace) {
                telemetry::emit(telemetry::Level::Trace, "npu::sim", || {
                    telemetry::EventKind::NpuInvocation { cycles: latency }
                });
            }
            self.retire_history();
        }
    }

    /// Runs until the NPU is idle (no in-flight invocation and no readable
    /// input). Useful for functional evaluation and latency measurement.
    ///
    /// # Panics
    ///
    /// Panics if the NPU makes no progress for a long time (e.g. the
    /// output FIFO is full and nobody drains it).
    pub fn run_until_idle(&mut self) {
        let mut stall = 0u32;
        while self.busy() {
            let before = (self.stats.bus_transfers, self.stats.macs);
            self.tick();
            if (self.stats.bus_transfers, self.stats.macs) == before {
                stall += 1;
                assert!(stall < 1_000_000, "npu deadlock: no progress");
            } else {
                stall = 0;
            }
        }
    }

    /// Runs until at least one output is available, then speculatively
    /// dequeues and commits it. Returns `None` if the NPU goes idle
    /// without producing output.
    pub fn run_until_output(&mut self) -> Option<f32> {
        let mut stall = 0u32;
        while !self.output_fifo.available() {
            if !self.busy() {
                return None;
            }
            let before = self.stats.bus_transfers;
            self.tick();
            if self.stats.bus_transfers == before {
                stall += 1;
                if stall > 1_000_000 {
                    return None;
                }
            } else {
                stall = 0;
            }
        }
        let v = self.output_fifo.pop_spec();
        if v.is_some() {
            self.output_fifo.commit_pop();
        }
        v
    }

    /// Convenience: evaluates one full invocation functionally (enqueue all
    /// inputs committed, run, collect all outputs).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::NotConfigured`] when no configuration is loaded.
    pub fn evaluate_invocation(&mut self, inputs: &[f32]) -> Result<Vec<f32>, NpuError> {
        let n_out = self
            .state
            .as_ref()
            .ok_or(NpuError::NotConfigured)?
            .config
            .topology()
            .outputs();
        for &v in inputs {
            self.enqueue_input(v);
        }
        self.commit_inputs(inputs.len());
        let mut out = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            match self.run_until_output() {
                Some(v) => out.push(v),
                None => return Err(NpuError::FifoEmpty("output")),
            }
        }
        Ok(out)
    }
}

/// Streaming timing replay: drives the cycle model directly from a dynamic
/// trace, so sweep pipelines can push events into the NPU as the
/// interpreter produces them instead of materialising a `Vec<TraceEvent>`.
///
/// Trace events carry no data values, but NPU *timing* is data-independent
/// (every invocation walks the same static bus schedule), so the replay
/// enqueues a placeholder input per `enq.d` and still reproduces the exact
/// cycle counts of the original run. Non-queue events advance the NPU by
/// one cycle, modelling the concurrent CPU/NPU execution the paper's
/// integration assumes (Section 5.1).
impl approx_ir::TraceSink for NpuSim {
    fn event(&mut self, ev: &approx_ir::TraceEvent) {
        use approx_ir::OpClass;
        match ev.class {
            OpClass::NpuEnqD => {
                if self.configured() {
                    let mut stall = 0u32;
                    while !self.input_has_space() {
                        self.tick();
                        stall += 1;
                        assert!(stall < 1_000_000, "npu deadlock: input fifo never drains");
                    }
                    self.enqueue_input(0.5);
                    self.commit_inputs(1);
                } else {
                    self.tick();
                }
            }
            OpClass::NpuDeqD => {
                self.run_until_output();
            }
            _ => self.tick(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Mlp, Normalizer, Topology};

    fn config_for(layers: Vec<usize>, seed: u64) -> NpuConfig {
        let t = Topology::new(layers).unwrap();
        let (i, o) = (t.inputs(), t.outputs());
        NpuConfig::new(
            Mlp::seeded(t, seed),
            Normalizer::identity(i),
            Normalizer::identity(o),
        )
    }

    #[test]
    fn sim_matches_functional_evaluation() {
        for layers in [
            vec![2, 4, 1],
            vec![9, 8, 1],
            vec![3, 8, 4, 2],
            vec![6, 8, 4, 1],
        ] {
            let config = config_for(layers.clone(), 9);
            let mut sim = NpuSim::new(NpuParams::default());
            sim.configure(&config).unwrap();
            let inputs: Vec<f32> = (0..config.topology().inputs())
                .map(|i| (i as f32 * 0.17) % 1.0)
                .collect();
            let got = sim.evaluate_invocation(&inputs).unwrap();
            let want = config.evaluate(&inputs);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-6, "{layers:?}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn back_to_back_invocations_work() {
        let config = config_for(vec![2, 4, 1], 3);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        for k in 0..5 {
            let inputs = [0.1 * k as f32, 0.9 - 0.1 * k as f32];
            let got = sim.evaluate_invocation(&inputs).unwrap();
            let want = config.evaluate(&inputs);
            assert!((got[0] - want[0]).abs() < 1e-6);
        }
        assert_eq!(sim.stats().invocations, 5);
        let hist = sim.invocation_cycles();
        assert_eq!(
            hist.count, 5,
            "every completed invocation must record its latency"
        );
        assert!(hist.min >= 1.0);
        assert_eq!(
            hist.min, hist.max,
            "identical topology must give identical latency"
        );
    }

    #[test]
    fn trace_sink_replay_matches_real_invocation_timing() {
        use approx_ir::{OpClass, TraceEvent, TraceSink};

        let config = config_for(vec![9, 8, 1], 4);
        let (n_in, n_out) = (config.topology().inputs(), config.topology().outputs());

        // Reference: real data through the FIFO protocol.
        let mut real = NpuSim::new(NpuParams::default());
        real.configure(&config).unwrap();
        for k in 0..3 {
            let inputs: Vec<f32> = (0..n_in).map(|i| ((i + k) as f32 * 0.11) % 1.0).collect();
            real.evaluate_invocation(&inputs).unwrap();
        }

        // Replay: the same invocation shape as anonymous trace events.
        let mut replay = NpuSim::new(NpuParams::default());
        replay.configure(&config).unwrap();
        for _ in 0..3 {
            for _ in 0..n_in {
                replay.event(&TraceEvent::simple(0, OpClass::NpuEnqD, [None; 3], None));
            }
            for _ in 0..n_out {
                replay.event(&TraceEvent::simple(0, OpClass::NpuDeqD, [None; 3], None));
            }
        }

        // NPU timing is data-independent: identical invocation cycle counts.
        assert_eq!(replay.stats().invocations, real.stats().invocations);
        assert_eq!(replay.stats().macs, real.stats().macs);
        assert_eq!(
            replay.stats().active_cycles,
            real.stats().active_cycles,
            "replay timing diverged from the data-carrying run"
        );
    }

    #[test]
    fn trace_sink_ignores_npu_ops_when_unconfigured() {
        use approx_ir::{OpClass, TraceEvent, TraceSink};
        let mut sim = NpuSim::new(NpuParams::default());
        sim.event(&TraceEvent::simple(0, OpClass::NpuEnqD, [None; 3], None));
        sim.event(&TraceEvent::simple(0, OpClass::NpuDeqD, [None; 3], None));
        sim.event(&TraceEvent::simple(0, OpClass::IntAlu, [None; 3], None));
        assert_eq!(sim.stats().invocations, 0);
    }

    #[test]
    fn config_word_stream_configures() {
        let config = config_for(vec![2, 2, 1], 5);
        let mut sim = NpuSim::new(NpuParams::default());
        for w in config.encode() {
            sim.enq_config_word(w).unwrap();
        }
        assert!(sim.configured());
        let got = sim.evaluate_invocation(&[0.5, 0.25]).unwrap();
        let want = config.evaluate(&[0.5, 0.25]);
        assert!((got[0] - want[0]).abs() < 1e-6);
    }

    #[test]
    fn config_readback_round_trips() {
        let config = config_for(vec![3, 4, 2], 8);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        // OS context-switch save: deq.c the whole configuration…
        let n = sim.config_len().unwrap();
        let words: Vec<u32> = (0..n).map(|_| sim.deq_config_word().unwrap()).collect();
        // …and restore it into a different NPU.
        let mut other = NpuSim::new(NpuParams::default());
        for w in words {
            other.enq_config_word(w).unwrap();
        }
        assert_eq!(other.current_config(), Some(&config));
    }

    #[test]
    fn bad_config_stream_is_rejected_early() {
        let mut sim = NpuSim::new(NpuParams::default());
        assert!(matches!(
            sim.enq_config_word(0x1234_5678),
            Err(NpuError::InvalidConfig(_))
        ));
    }

    #[test]
    fn normalization_applied_in_hardware_path() {
        let t = Topology::new(vec![1, 2, 1]).unwrap();
        let config = NpuConfig::new(
            Mlp::seeded(t, 4),
            Normalizer::new(vec![(0.0, 10.0)]),
            Normalizer::new(vec![(100.0, 200.0)]),
        );
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        let got = sim.evaluate_invocation(&[7.0]).unwrap();
        let want = config.evaluate(&[7.0]);
        assert!((got[0] - want[0]).abs() < 1e-4);
        assert!(got[0] >= 100.0 && got[0] <= 200.0);
    }

    #[test]
    fn squash_of_unread_inputs_is_invisible() {
        let config = config_for(vec![2, 2, 1], 6);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        // Complete a clean invocation first.
        let clean = sim.evaluate_invocation(&[0.2, 0.8]).unwrap();
        // Speculatively push garbage, then squash before the NPU runs.
        sim.enqueue_input(9.9);
        sim.squash(1, 0);
        // A fresh committed invocation still computes correctly.
        let again = sim.evaluate_invocation(&[0.2, 0.8]).unwrap();
        assert_eq!(clean, again);
    }

    #[test]
    fn squash_mid_invocation_resets_and_replays() {
        let config = config_for(vec![2, 2, 1], 6);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        // Commit the first input, speculate the second.
        sim.enqueue_input(0.3);
        sim.commit_inputs(1);
        sim.enqueue_input(0.7);
        // Let the NPU consume both inputs.
        for _ in 0..4 {
            sim.tick();
        }
        // Misspeculation: the second enq.d is squashed.
        sim.squash(1, 0);
        assert_eq!(sim.stats().squashed_invocations, 1);
        // The correct-path value arrives and commits.
        sim.enqueue_input(0.4);
        sim.commit_inputs(1);
        let mut out = Vec::new();
        while out.is_empty() {
            if let Some(v) = sim.run_until_output() {
                out.push(v);
            }
        }
        let want = config.evaluate(&[0.3, 0.4]);
        assert!((out[0] - want[0]).abs() < 1e-6, "{} vs {}", out[0], want[0]);
    }

    #[test]
    fn squash_after_speculative_completion_invalidates_outputs() {
        let config = config_for(vec![2, 2, 1], 6);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        // Entire invocation runs on speculative inputs.
        sim.enqueue_input(0.5);
        sim.enqueue_input(0.5);
        sim.run_until_idle();
        assert!(sim.output_available());
        // Both enq.d squashed: the output must disappear.
        sim.squash(2, 0);
        assert!(!sim.output_available());
        // Correct path proceeds normally.
        let got = sim.evaluate_invocation(&[0.1, 0.9]).unwrap();
        let want = config.evaluate(&[0.1, 0.9]);
        assert!((got[0] - want[0]).abs() < 1e-6);
    }

    #[test]
    fn speculative_output_read_replay_via_squash() {
        let config = config_for(vec![1, 2, 2], 2);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        sim.enqueue_input(0.5);
        sim.commit_inputs(1);
        sim.run_until_idle();
        let first = sim.dequeue_output();
        let second = sim.dequeue_output();
        // Both deq.d squashed (e.g. older branch mispredicted).
        sim.squash(0, 2);
        assert_eq!(sim.dequeue_output(), first);
        assert_eq!(sim.dequeue_output(), second);
        sim.commit_outputs(2);
    }

    #[test]
    fn stats_count_events() {
        let config = config_for(vec![9, 8, 1], 1);
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config).unwrap();
        let inputs = [0.1; 9];
        sim.evaluate_invocation(&inputs).unwrap();
        let s = sim.stats();
        assert_eq!(s.macs, (9 * 8 + 8) as u64);
        assert_eq!(s.sigmoids, 9);
        assert_eq!(s.bus_transfers, (9 + 8 + 1) as u64);
        assert_eq!(s.input_reads, 9);
        assert_eq!(s.outputs_produced, 1);
        assert_eq!(s.invocations, 1);
    }

    #[test]
    fn unconfigured_npu_reports_errors() {
        let mut sim = NpuSim::new(NpuParams::default());
        assert!(matches!(sim.config_len(), Err(NpuError::NotConfigured)));
        assert!(matches!(
            sim.deq_config_word(),
            Err(NpuError::NotConfigured)
        ));
        assert!(matches!(
            sim.evaluate_invocation(&[1.0]),
            Err(NpuError::NotConfigured)
        ));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use ann::{Mlp, Normalizer, Topology};

    fn config() -> NpuConfig {
        let t = Topology::new(vec![4, 8, 2]).unwrap();
        NpuConfig::new(
            Mlp::seeded(t, 11),
            Normalizer::identity(4),
            Normalizer::identity(2),
        )
    }

    #[test]
    fn zero_fault_rate_injects_nothing() {
        let mut sim = NpuSim::new(NpuParams::default());
        sim.configure(&config()).unwrap();
        sim.evaluate_invocation(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(sim.stats().faults_injected, 0);
    }

    #[test]
    fn full_fault_rate_corrupts_every_weight_read() {
        let mut sim = NpuSim::new(NpuParams::default().with_fault_rate(1.0));
        sim.configure(&config()).unwrap();
        sim.evaluate_invocation(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        let s = sim.stats();
        assert_eq!(s.faults_injected, s.macs);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = |seed: u64| {
            let params = NpuParams {
                fault_seed: seed,
                ..NpuParams::default().with_fault_rate(0.05)
            };
            let mut sim = NpuSim::new(params);
            sim.configure(&config()).unwrap();
            sim.evaluate_invocation(&[0.1, 0.2, 0.3, 0.4]).unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn rare_faults_leave_most_invocations_intact() {
        // The paper's related work (Temam) argues hardware neural networks
        // degrade gracefully under defects; with a low fault rate most
        // outputs stay close to the fault-free values.
        let cfg = config();
        let mut clean = NpuSim::new(NpuParams::default());
        clean.configure(&cfg).unwrap();
        let mut faulty = NpuSim::new(NpuParams::default().with_fault_rate(0.001));
        faulty.configure(&cfg).unwrap();
        let mut close = 0;
        let n = 100;
        for k in 0..n {
            let x = [0.01 * k as f32, 0.5, 1.0 - 0.01 * k as f32, 0.25];
            let a = clean.evaluate_invocation(&x).unwrap();
            let b = faulty.evaluate_invocation(&x).unwrap();
            if a.iter().zip(&b).all(|(p, q)| (p - q).abs() < 0.05) {
                close += 1;
            }
        }
        assert!(close >= 85, "only {close}/{n} invocations unaffected");
    }
}

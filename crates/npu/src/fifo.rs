//! The speculative CPU↔NPU FIFOs (paper Section 5.2, Figure 3).
//!
//! The input FIFO distinguishes a *speculative tail* (entries pushed by
//! `enq.d` instructions that have executed but not committed) from its
//! committed prefix; entries are recycled only once their `enq.d` has
//! committed **and** the NPU has finished the invocation that consumed
//! them. The output FIFO keeps a *speculative head* (advanced by issued
//! `deq.d`s) and a *non-speculative head* (advanced at commit), so a
//! misspeculated dequeue can be replayed.
//!
//! The input FIFO tracks *absolute* (monotonically increasing) push,
//! commit, read, and process counts, which makes rollback across multiple
//! in-flight invocations straightforward for the simulator.

use crate::NpuError;
use std::collections::VecDeque;

/// The CPU→NPU input FIFO with speculative-tail semantics.
#[derive(Debug, Clone)]
pub struct InputFifo {
    /// Live entries (pushed, not yet freed).
    buf: VecDeque<f32>,
    /// Absolute count of entries freed (recycled) so far.
    freed: u64,
    /// Absolute count of committed pushes.
    committed: u64,
    /// Absolute read cursor (entries the NPU has consumed).
    consumed: u64,
    /// Absolute count of entries whose consuming invocation completed.
    processed: u64,
    capacity: usize,
}

impl InputFifo {
    /// Creates an empty FIFO with the given capacity.
    pub fn new(capacity: usize) -> Self {
        InputFifo {
            buf: VecDeque::with_capacity(capacity),
            freed: 0,
            committed: 0,
            consumed: 0,
            processed: 0,
            capacity,
        }
    }

    /// Absolute count of pushes so far.
    pub fn pushed(&self) -> u64 {
        self.freed + self.buf.len() as u64
    }

    /// Absolute count of committed pushes so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Absolute read cursor.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Occupied entries (committed + speculative).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the FIFO holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether a further `enq.d` would find space (the scheduler "only
    /// issues an enqueue instruction if the corresponding FIFO is not
    /// full").
    pub fn has_space(&self) -> bool {
        self.buf.len() < self.capacity
    }

    /// Whether the NPU has an unread entry available.
    pub fn readable(&self) -> bool {
        self.consumed < self.pushed()
    }

    /// Speculatively pushes a value (at `enq.d` execute).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::FifoFull`] when at capacity.
    pub fn push_spec(&mut self, value: f32) -> Result<(), NpuError> {
        if !self.has_space() {
            return Err(NpuError::FifoFull("input"));
        }
        self.buf.push_back(value);
        Ok(())
    }

    /// Marks the oldest speculative entry committed (at `enq.d` commit).
    ///
    /// # Panics
    ///
    /// Panics if there is no speculative entry to commit.
    pub fn commit_push(&mut self) {
        assert!(
            self.committed < self.pushed(),
            "commit without matching speculative push"
        );
        self.committed += 1;
        self.try_free();
    }

    /// NPU-side: reads the next unconsumed entry, advancing the cursor.
    pub fn read_next(&mut self) -> Option<f32> {
        if self.readable() {
            let idx = (self.consumed - self.freed) as usize;
            let v = self.buf[idx];
            self.consumed += 1;
            Some(v)
        } else {
            None
        }
    }

    /// NPU-side: declares that the invocation consuming the oldest `n`
    /// read-but-unprocessed entries has completed, making them eligible
    /// for recycling once committed.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the number of read entries.
    pub fn mark_processed(&mut self, n: usize) {
        assert!(
            self.processed + n as u64 <= self.consumed,
            "cannot process more entries than were read"
        );
        self.processed += n as u64;
        self.try_free();
    }

    fn try_free(&mut self) {
        let target = self.processed.min(self.committed);
        while self.freed < target {
            self.buf.pop_front();
            self.freed += 1;
        }
    }

    /// Misspeculation rollback: removes the youngest `n` (speculative)
    /// entries. Returns how many of the removed entries the NPU had
    /// already read (the caller resets in-flight state accordingly).
    ///
    /// # Panics
    ///
    /// Panics if asked to squash committed entries.
    pub fn squash_pushes(&mut self, n: usize) -> u64 {
        assert!(
            self.pushed() - self.committed >= n as u64,
            "cannot squash committed entries"
        );
        let new_pushed = self.pushed() - n as u64;
        let overrun = self.consumed.saturating_sub(new_pushed);
        self.buf.truncate((new_pushed - self.freed) as usize);
        self.consumed = self.consumed.min(new_pushed);
        self.processed = self.processed.min(new_pushed);
        overrun
    }

    /// Rewinds the read cursor to absolute position `to` (the start of a
    /// reset invocation).
    ///
    /// # Panics
    ///
    /// Panics if `to` points at already-freed or not-yet-pushed entries.
    pub fn rewind_to(&mut self, to: u64) {
        assert!(
            to >= self.freed && to <= self.pushed(),
            "rewind out of range"
        );
        self.consumed = to;
    }

    /// Entries pushed but not yet committed (speculative suffix length).
    pub fn speculative_len(&self) -> usize {
        (self.pushed() - self.committed) as usize
    }
}

/// The NPU→CPU output FIFO with speculative-head semantics.
#[derive(Debug, Clone)]
pub struct OutputFifo {
    buf: VecDeque<f32>,
    /// Entries speculatively read by issued-but-uncommitted `deq.d`s.
    spec_head: usize,
    capacity: usize,
}

impl OutputFifo {
    /// Creates an empty FIFO with the given capacity.
    pub fn new(capacity: usize) -> Self {
        OutputFifo {
            buf: VecDeque::with_capacity(capacity),
            spec_head: 0,
            capacity,
        }
    }

    /// Occupied entries (including speculatively read ones, which are
    /// retained until their `deq.d` commits).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the FIFO holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the NPU can push another output.
    pub fn has_space(&self) -> bool {
        self.buf.len() < self.capacity
    }

    /// Whether a `deq.d` can issue (an unread entry exists).
    pub fn available(&self) -> bool {
        self.spec_head < self.buf.len()
    }

    /// NPU-side: appends a computed output.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::FifoFull`] when at capacity.
    pub fn push(&mut self, value: f32) -> Result<(), NpuError> {
        if !self.has_space() {
            return Err(NpuError::FifoFull("output"));
        }
        self.buf.push_back(value);
        Ok(())
    }

    /// Speculatively reads the next entry (at `deq.d` issue): advances the
    /// speculative head but preserves the value for possible replay.
    pub fn pop_spec(&mut self) -> Option<f32> {
        if self.available() {
            let v = self.buf[self.spec_head];
            self.spec_head += 1;
            Some(v)
        } else {
            None
        }
    }

    /// Commits the oldest speculative read (at `deq.d` commit), actually
    /// freeing the slot ("the non-speculative head pointer is only updated
    /// when the instruction commits").
    ///
    /// # Panics
    ///
    /// Panics if no speculative read is outstanding.
    pub fn commit_pop(&mut self) {
        assert!(self.spec_head > 0, "commit_pop without speculative read");
        self.buf.pop_front();
        self.spec_head -= 1;
    }

    /// Misspeculation rollback: undoes the youngest `n` speculative reads
    /// (restores the speculative head toward the non-speculative head).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` speculative reads are outstanding.
    pub fn squash_pops(&mut self, n: usize) {
        assert!(n <= self.spec_head, "cannot squash committed pops");
        self.spec_head -= n;
    }

    /// Removes the youngest `n` entries — outputs computed from inputs
    /// that were invalidated by a squash ("adjusts the output FIFO tail
    /// pointer to invalidate any outputs that are based on the invalidated
    /// inputs").
    ///
    /// # Panics
    ///
    /// Panics if that would remove speculatively read entries (run
    /// [`squash_pops`](Self::squash_pops) first).
    pub fn invalidate_tail(&mut self, n: usize) {
        assert!(
            n <= self.buf.len() - self.spec_head,
            "invalidating entries that were already read"
        );
        self.buf.truncate(self.buf.len() - n);
    }

    /// Entries read speculatively but not yet committed.
    pub fn speculative_reads(&self) -> usize {
        self.spec_head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_fifo_basic_flow() {
        let mut f = InputFifo::new(4);
        f.push_spec(1.0).unwrap();
        f.push_spec(2.0).unwrap();
        assert_eq!(f.read_next(), Some(1.0));
        assert_eq!(f.read_next(), Some(2.0));
        assert_eq!(f.read_next(), None);
        // Invocation done but nothing committed: entries stay.
        f.mark_processed(2);
        assert_eq!(f.len(), 2);
        f.commit_push();
        assert_eq!(f.len(), 1); // first freed
        f.commit_push();
        assert!(f.is_empty());
    }

    #[test]
    fn input_fifo_commit_before_processing_frees_lazily() {
        let mut f = InputFifo::new(4);
        f.push_spec(1.0).unwrap();
        f.commit_push();
        assert_eq!(f.len(), 1); // committed but NPU hasn't finished with it
        assert_eq!(f.read_next(), Some(1.0));
        f.mark_processed(1);
        assert!(f.is_empty());
    }

    #[test]
    fn input_fifo_reports_full() {
        let mut f = InputFifo::new(2);
        f.push_spec(1.0).unwrap();
        f.push_spec(2.0).unwrap();
        assert_eq!(f.push_spec(3.0), Err(NpuError::FifoFull("input")));
        assert!(!f.has_space());
    }

    #[test]
    fn input_squash_of_unread_entries_is_clean() {
        let mut f = InputFifo::new(8);
        f.push_spec(1.0).unwrap();
        f.push_spec(2.0).unwrap();
        f.push_spec(3.0).unwrap();
        f.commit_push();
        assert_eq!(f.read_next(), Some(1.0));
        // Squash the two speculative entries the NPU never read.
        assert_eq!(f.squash_pushes(2), 0);
        assert_eq!(f.len(), 1);
        assert!(!f.readable());
    }

    #[test]
    fn input_squash_of_read_entries_reports_overrun() {
        let mut f = InputFifo::new(8);
        for v in [1.0, 2.0, 3.0] {
            f.push_spec(v).unwrap();
        }
        f.read_next();
        f.read_next();
        f.read_next();
        let overrun = f.squash_pushes(2); // NPU had read all three
        assert_eq!(overrun, 2);
        f.rewind_to(0);
        assert_eq!(f.read_next(), Some(1.0)); // re-reads surviving input
    }

    #[test]
    fn absolute_counters_survive_freeing() {
        let mut f = InputFifo::new(2);
        for round in 0..5u32 {
            f.push_spec(round as f32).unwrap();
            f.commit_push();
            assert_eq!(f.read_next(), Some(round as f32));
            f.mark_processed(1);
        }
        assert_eq!(f.pushed(), 5);
        assert_eq!(f.consumed(), 5);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot squash committed")]
    fn input_squash_cannot_touch_committed() {
        let mut f = InputFifo::new(8);
        f.push_spec(1.0).unwrap();
        f.commit_push();
        f.squash_pushes(1);
    }

    #[test]
    fn output_fifo_speculative_read_replay() {
        let mut f = OutputFifo::new(4);
        f.push(10.0).unwrap();
        f.push(20.0).unwrap();
        assert_eq!(f.pop_spec(), Some(10.0));
        assert_eq!(f.pop_spec(), Some(20.0));
        // Misspeculation: both dequeues squashed; values must replay.
        f.squash_pops(2);
        assert_eq!(f.pop_spec(), Some(10.0));
        f.commit_pop();
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop_spec(), Some(20.0));
    }

    #[test]
    fn output_fifo_invalidate_tail_drops_unread() {
        let mut f = OutputFifo::new(4);
        f.push(1.0).unwrap();
        f.push(2.0).unwrap();
        f.push(3.0).unwrap();
        assert_eq!(f.pop_spec(), Some(1.0));
        f.invalidate_tail(2);
        assert_eq!(f.len(), 1);
        assert!(!f.available());
    }

    #[test]
    #[should_panic(expected = "already read")]
    fn output_invalidate_cannot_remove_read_entries() {
        let mut f = OutputFifo::new(4);
        f.push(1.0).unwrap();
        f.pop_spec();
        f.invalidate_tail(1);
    }

    #[test]
    fn output_fifo_capacity() {
        let mut f = OutputFifo::new(1);
        f.push(1.0).unwrap();
        assert_eq!(f.push(2.0), Err(NpuError::FifoFull("output")));
    }
}

//! Hardware parameters of the NPU (paper Table 2, right column).

use serde::{Deserialize, Serialize};

/// Sizing of the NPU's structures.
///
/// Defaults reproduce the paper's Table 2: 8 PEs; 128-entry (32-bit) input
/// and output FIFOs; 8-entry config FIFO; 512-entry bus schedule FIFO; and
/// per PE a 512-entry weight cache, 8-entry input FIFO, 8-entry output
/// register file, and a 2048-entry sigmoid LUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuParams {
    /// Number of processing engines (paper: 8; Figure 11 sweeps 1–32).
    pub n_pes: usize,
    /// CPU→NPU input FIFO capacity in 32-bit entries.
    pub input_fifo: usize,
    /// NPU→CPU output FIFO capacity in 32-bit entries.
    pub output_fifo: usize,
    /// Config FIFO capacity in 32-bit entries.
    pub config_fifo: usize,
    /// Bus scheduling buffer capacity (one entry per scheduled transfer).
    pub bus_schedule: usize,
    /// Per-PE weight cache capacity in weights.
    pub weight_cache: usize,
    /// Per-PE input FIFO capacity.
    pub pe_input_fifo: usize,
    /// Per-PE output register file size (bounds neurons-per-PE per layer).
    pub output_regs: usize,
    /// Sigmoid LUT entries.
    pub sigmoid_lut: usize,
    /// When `false`, capacity checks are skipped (used by the PE-count
    /// sensitivity sweep, where one PE would otherwise need oversized
    /// buffers for the largest benchmarks).
    pub strict_capacity: bool,
    /// Probability that a weight-buffer read returns a value with one
    /// flipped bit (models defective/approximate hardware, after Temam's
    /// defect-tolerant accelerator study the paper cites). 0 disables
    /// fault injection.
    pub weight_fault_rate: f64,
    /// Seed for the deterministic fault-injection stream.
    pub fault_seed: u64,
}

impl Default for NpuParams {
    fn default() -> Self {
        NpuParams {
            n_pes: 8,
            input_fifo: 128,
            output_fifo: 128,
            config_fifo: 8,
            bus_schedule: 512,
            weight_cache: 512,
            pe_input_fifo: 8,
            output_regs: 8,
            sigmoid_lut: 2048,
            strict_capacity: true,
            weight_fault_rate: 0.0,
            fault_seed: 0xFA17,
        }
    }
}

impl NpuParams {
    /// The paper's default configuration with a different PE count.
    pub fn with_pes(n_pes: usize) -> Self {
        NpuParams {
            n_pes,
            ..NpuParams::default()
        }
    }

    /// A copy with capacity checks disabled (sensitivity sweeps).
    pub fn unbounded(mut self) -> Self {
        self.strict_capacity = false;
        self
    }

    /// A copy with weight-read fault injection enabled at `rate`.
    pub fn with_fault_rate(mut self, rate: f64) -> Self {
        self.weight_fault_rate = rate;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let p = NpuParams::default();
        assert_eq!(p.n_pes, 8);
        assert_eq!(p.input_fifo, 128);
        assert_eq!(p.output_fifo, 128);
        assert_eq!(p.config_fifo, 8);
        assert_eq!(p.weight_cache, 512);
        assert_eq!(p.sigmoid_lut, 2048);
        assert!(p.strict_capacity);
    }

    #[test]
    fn unbounded_disables_strictness() {
        assert!(!NpuParams::with_pes(1).unbounded().strict_capacity);
    }
}

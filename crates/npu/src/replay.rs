//! Batched functional invocation replay.
//!
//! Sweeps and quality experiments evaluate the same [`NpuConfig`] over
//! thousands of recorded invocations. Doing that one invocation at a time
//! through [`NpuConfig::evaluate`] leaves the SIMD width of the batched
//! forward kernel ([`ann::BatchScratch`]) on the table; driving the
//! cycle-accurate [`NpuSim`](crate::NpuSim) is orders of magnitude slower
//! still. [`BatchEvaluator`] replays invocations [`ann::LANES`] at a time:
//! normalize → batched LUT-sigmoid forward → denormalize, bit-identical
//! per invocation to [`NpuConfig::evaluate`] (and therefore to the
//! cycle-accurate simulator, which matches `evaluate` by construction).

use crate::NpuConfig;
use ann::{BatchScratch, Scratch, SigmoidLut, LANES};

/// Below this many occupied lanes a block runs through the scalar kernel
/// instead. The batched kernel always computes all [`LANES`] lanes, so a
/// nearly empty block pays full-width arithmetic for a handful of results;
/// one scalar sample costs roughly two full-occupancy batched samples, so
/// the break-even sits near half occupancy.
const SCALAR_CUTOVER: usize = LANES / 2;

/// Reusable batched evaluator for NPU invocation replay.
///
/// Holds the batch scratch, a scalar scratch for low-occupancy blocks, the
/// hardware-default sigmoid LUT, and a normalization staging buffer, so
/// steady-state replay performs no heap allocation. One evaluator can
/// serve configs of any topology — the scratches rebind on topology
/// change.
#[derive(Debug, Default)]
pub struct BatchEvaluator {
    batch: BatchScratch,
    scalar: Scratch,
    lut: SigmoidLut,
    /// Normalized inputs for the current block, `n_inputs` per lane.
    norm: Vec<f32>,
    /// Blocks routed through the scalar kernel (occupancy below
    /// [`SCALAR_CUTOVER`]).
    scalar_blocks: u64,
    /// Blocks routed through the full-width batched kernel.
    batched_blocks: u64,
}

impl BatchEvaluator {
    /// Creates an evaluator with the hardware-default sigmoid LUT.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates one batch of invocations: `inputs` holds one raw
    /// application-value slice per invocation; `outputs` is cleared and
    /// filled invocation-major (invocation `i`'s outputs at
    /// `outputs[i * n_outputs..][..n_outputs]`).
    ///
    /// Each invocation's result is bit-identical to
    /// [`NpuConfig::evaluate`] on the same input, for any batch size.
    ///
    /// # Panics
    ///
    /// Panics if any input slice length differs from the config's input
    /// dimensionality.
    pub fn run(&mut self, config: &NpuConfig, inputs: &[&[f32]], outputs: &mut Vec<f32>) {
        let n_in = config.topology().inputs();
        let n_out = config.topology().outputs();
        outputs.clear();
        outputs.resize(inputs.len() * n_out, 0.0);
        for (block_idx, block) in inputs.chunks(LANES).enumerate() {
            self.norm.clear();
            for inv in block {
                assert_eq!(inv.len(), n_in, "invocation input size mismatch");
                self.norm.extend_from_slice(inv);
            }
            let out_chunk = &mut outputs[block_idx * LANES * n_out..][..block.len() * n_out];
            self.eval_block(config, block.len(), out_chunk);
        }
    }

    /// Evaluates invocations packed back-to-back in one flat slice
    /// (`flat.len()` must be a multiple of the input dimensionality), as
    /// the functional runtime's input FIFO stores them — no per-invocation
    /// slice vector needed.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` is not a multiple of the config's input
    /// dimensionality.
    pub fn run_flat(&mut self, config: &NpuConfig, flat: &[f32], outputs: &mut Vec<f32>) {
        let n_in = config.topology().inputs();
        let n_out = config.topology().outputs();
        assert_eq!(flat.len() % n_in, 0, "flat input length mismatch");
        let n_inv = flat.len() / n_in;
        outputs.clear();
        outputs.resize(n_inv * n_out, 0.0);
        for (block_idx, block) in flat.chunks(LANES * n_in).enumerate() {
            let lanes = block.len() / n_in;
            self.norm.clear();
            self.norm.extend_from_slice(block);
            let out_chunk = &mut outputs[block_idx * LANES * n_out..][..lanes * n_out];
            self.eval_block(config, lanes, out_chunk);
        }
    }

    /// Evaluates the `lanes` normalized-staging rows currently in
    /// `self.norm` (raw values on entry; normalized in place) into
    /// `out_chunk`, choosing the batched or scalar kernel by occupancy.
    /// Both kernels are bit-identical to [`NpuConfig::evaluate`] per
    /// sample, so the choice is invisible in the results.
    fn eval_block(&mut self, config: &NpuConfig, lanes: usize, out_chunk: &mut [f32]) {
        let n_in = config.topology().inputs();
        let n_out = config.topology().outputs();
        for row in self.norm.chunks_mut(n_in) {
            config.input_norm().normalize(row);
        }
        if lanes < SCALAR_CUTOVER {
            self.scalar_blocks += 1;
            for (lane, row) in self.norm.chunks(n_in).enumerate() {
                let out = self.scalar.forward_lut(config.mlp(), row, &self.lut);
                out_chunk[lane * n_out..][..n_out].copy_from_slice(out);
            }
        } else {
            self.batched_blocks += 1;
            let mut refs: [&[f32]; LANES] = [&[]; LANES];
            for (lane, row) in self.norm.chunks(n_in).enumerate() {
                refs[lane] = row;
            }
            self.batch
                .forward_block_lut(config.mlp(), &refs[..lanes], out_chunk, &self.lut);
        }
        for row in out_chunk.chunks_mut(n_out) {
            config.output_norm().denormalize(row);
        }
    }

    /// Convenience wrapper allocating the output vector.
    pub fn evaluate(&mut self, config: &NpuConfig, inputs: &[&[f32]]) -> Vec<f32> {
        let mut out = Vec::new();
        self.run(config, inputs, &mut out);
        out
    }

    /// `(scalar, batched)` block counts since construction: how many
    /// blocks each kernel served. The split is pure bookkeeping — both
    /// kernels are bit-identical to [`NpuConfig::evaluate`] — but a
    /// batching *server* drives flush sizes from queue occupancy, so the
    /// counters make the documented cutover observable (and testable)
    /// instead of silently drifting.
    pub fn path_counts(&self) -> (u64, u64) {
        (self.scalar_blocks, self.batched_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NpuParams, NpuSim};
    use ann::{Mlp, Normalizer, Topology};

    /// Table 1's six benchmark topologies.
    fn paper_topologies() -> Vec<Vec<usize>> {
        vec![
            vec![1, 4, 4, 2],   // fft
            vec![2, 8, 2],      // inversek2j
            vec![18, 32, 8, 2], // jmeint
            vec![64, 16, 64],   // jpeg
            vec![6, 8, 4, 1],   // kmeans
            vec![9, 8, 1],      // sobel
        ]
    }

    fn config_for(layers: Vec<usize>, seed: u64) -> NpuConfig {
        let t = Topology::new(layers).unwrap();
        let n_in = t.inputs();
        let n_out = t.outputs();
        let in_ranges: Vec<(f32, f32)> = (0..n_in)
            .map(|d| (-1.0 - d as f32, 2.0 + d as f32))
            .collect();
        let out_ranges: Vec<(f32, f32)> = (0..n_out).map(|d| (0.0, 10.0 + d as f32)).collect();
        NpuConfig::new(
            Mlp::seeded(t, seed),
            Normalizer::new(in_ranges),
            Normalizer::new(out_ranges),
        )
    }

    #[test]
    fn batched_replay_is_bit_exact_with_scalar_evaluate() {
        for (k, layers) in paper_topologies().into_iter().enumerate() {
            let config = config_for(layers, 100 + k as u64);
            let n_in = config.topology().inputs();
            let n_out = config.topology().outputs();
            // Enough invocations for full blocks plus a ragged tail.
            let n_inv = 2 * LANES + 3;
            let flat: Vec<f32> = (0..n_inv * n_in)
                .map(|i| ((i * 13 + k) % 101) as f32 / 101.0 * 3.0 - 1.0)
                .collect();
            let inputs: Vec<&[f32]> = flat.chunks(n_in).collect();
            let mut eval = BatchEvaluator::new();
            let got = eval.evaluate(&config, &inputs);
            for (i, inv) in inputs.iter().enumerate() {
                let want = config.evaluate(inv);
                assert_eq!(
                    &got[i * n_out..][..n_out],
                    want.as_slice(),
                    "invocation {i} of topology {k} diverged"
                );
            }
        }
    }

    #[test]
    fn batched_replay_matches_cycle_accurate_sim() {
        for (k, layers) in paper_topologies().into_iter().enumerate() {
            let config = config_for(layers, 7 + k as u64);
            if NpuSim::new(NpuParams::default())
                .configure(&config)
                .is_err()
            {
                // Topology exceeds the default hardware sizing; the
                // functional path still works but there is no sim to
                // compare against.
                continue;
            }
            let mut sim = NpuSim::new(NpuParams::default());
            sim.configure(&config).unwrap();
            let n_in = config.topology().inputs();
            let n_out = config.topology().outputs();
            let flat: Vec<f32> = (0..5 * n_in)
                .map(|i| ((i * 7 + k) % 31) as f32 / 31.0)
                .collect();
            let inputs: Vec<&[f32]> = flat.chunks(n_in).collect();
            let mut eval = BatchEvaluator::new();
            let got = eval.evaluate(&config, &inputs);
            for (i, inv) in inputs.iter().enumerate() {
                let want = sim.evaluate_invocation(inv).unwrap();
                assert_eq!(
                    &got[i * n_out..][..n_out],
                    want.as_slice(),
                    "invocation {i} of topology {k} diverged from the sim"
                );
            }
        }
    }

    /// Flushes of `n_inv` invocations through a fresh evaluator, returning
    /// the evaluator for path-count inspection after asserting bit-identity
    /// of every invocation against [`NpuConfig::evaluate`].
    fn flush_and_check(config: &NpuConfig, n_inv: usize) -> BatchEvaluator {
        let n_in = config.topology().inputs();
        let n_out = config.topology().outputs();
        let flat: Vec<f32> = (0..n_inv * n_in)
            .map(|i| ((i * 17 + 5) % 97) as f32 / 97.0 * 2.0 - 0.5)
            .collect();
        let inputs: Vec<&[f32]> = flat.chunks(n_in).collect();
        let mut eval = BatchEvaluator::new();
        let got = eval.evaluate(config, &inputs);
        for (i, inv) in inputs.iter().enumerate() {
            assert_eq!(
                &got[i * n_out..][..n_out],
                config.evaluate(inv).as_slice(),
                "invocation {i} of a {n_inv}-invocation flush diverged"
            );
        }
        eval
    }

    /// The documented cutover: a lone invocation is cheaper through the
    /// scalar kernel, and the half-block boundary (`LANES / 2` occupied
    /// lanes, where one scalar sample costs about two batched samples)
    /// belongs to the batched kernel. A server flushing queue-driven
    /// batch sizes relies on these exact boundaries staying put.
    #[test]
    fn flush_occupancy_picks_the_documented_kernel() {
        let config = config_for(vec![9, 8, 1], 42);
        // Single invocation: scalar path.
        assert_eq!(flush_and_check(&config, 1).path_counts(), (1, 0));
        // One below the cutover: still scalar.
        assert_eq!(
            flush_and_check(&config, SCALAR_CUTOVER - 1).path_counts(),
            (1, 0)
        );
        // Exactly half a block: batched (the break-even tie goes to the
        // batched kernel — `lanes < SCALAR_CUTOVER` is strict).
        assert_eq!(SCALAR_CUTOVER, LANES / 2, "cutover is half occupancy");
        assert_eq!(
            flush_and_check(&config, SCALAR_CUTOVER).path_counts(),
            (0, 1)
        );
        // Full block: batched.
        assert_eq!(flush_and_check(&config, LANES).path_counts(), (0, 1));
        // Full block plus a small tail: one batched block, one scalar.
        assert_eq!(flush_and_check(&config, LANES + 2).path_counts(), (1, 1));
        // Full block plus a half-block tail: two batched blocks.
        assert_eq!(
            flush_and_check(&config, LANES + SCALAR_CUTOVER).path_counts(),
            (0, 2)
        );
    }

    /// Both sides of the cutover stay bit-identical to the scalar oracle
    /// for every occupancy from one invocation to two full blocks (the
    /// threshold choice must be invisible in the results, whichever way
    /// a server-driven flush lands).
    #[test]
    fn every_flush_occupancy_is_bit_exact() {
        for (k, layers) in paper_topologies().into_iter().enumerate() {
            let config = config_for(layers, 900 + k as u64);
            for n_inv in 1..=2 * LANES {
                flush_and_check(&config, n_inv);
            }
        }
    }

    #[test]
    fn evaluator_rebinds_across_topologies() {
        let a = config_for(vec![2, 4, 1], 1);
        let b = config_for(vec![9, 8, 1], 2);
        let mut eval = BatchEvaluator::new();
        let xa = [0.25_f32, 0.5];
        let xb = [0.1_f32; 9];
        let got_a = eval.evaluate(&a, &[&xa]);
        let got_b = eval.evaluate(&b, &[&xb]);
        let got_a2 = eval.evaluate(&a, &[&xa]);
        assert_eq!(got_a, a.evaluate(&xa));
        assert_eq!(got_b, b.evaluate(&xb));
        assert_eq!(got_a, got_a2);
    }
}

//! Event statistics the energy model consumes.

use serde::{Deserialize, Serialize};

/// Counts of energy-relevant NPU events.
///
/// One record accumulates over a simulation; the `energy` crate prices each
/// event class (MAC, weight-buffer read, bus transfer, FIFO traffic,
/// sigmoid LUT lookup) at 45 nm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NpuStats {
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Sigmoid LUT evaluations.
    pub sigmoids: u64,
    /// Weight-buffer reads (one per MAC).
    pub weight_reads: u64,
    /// Bus transfers performed.
    pub bus_transfers: u64,
    /// Values read from the CPU-facing input FIFO (scaling-unit passes).
    pub input_reads: u64,
    /// Values pushed to the CPU-facing output FIFO (scaling-unit passes).
    pub outputs_produced: u64,
    /// Configuration words absorbed.
    pub config_words: u64,
    /// Completed invocations.
    pub invocations: u64,
    /// Invocations reset by misspeculation squashes.
    pub squashed_invocations: u64,
    /// Weight reads corrupted by injected faults (defect modelling).
    pub faults_injected: u64,
    /// Cycles with an invocation in flight.
    pub active_cycles: u64,
    /// Total cycles simulated.
    pub total_cycles: u64,
}

impl NpuStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &NpuStats) {
        self.macs += other.macs;
        self.sigmoids += other.sigmoids;
        self.weight_reads += other.weight_reads;
        self.bus_transfers += other.bus_transfers;
        self.input_reads += other.input_reads;
        self.outputs_produced += other.outputs_produced;
        self.config_words += other.config_words;
        self.invocations += other.invocations;
        self.squashed_invocations += other.squashed_invocations;
        self.faults_injected += other.faults_injected;
        self.active_cycles += other.active_cycles;
        self.total_cycles += other.total_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = NpuStats {
            macs: 5,
            invocations: 1,
            ..NpuStats::default()
        };
        let b = NpuStats {
            macs: 7,
            sigmoids: 3,
            ..NpuStats::default()
        };
        a.merge(&b);
        assert_eq!(a.macs, 12);
        assert_eq!(a.sigmoids, 3);
        assert_eq!(a.invocations, 1);
    }
}

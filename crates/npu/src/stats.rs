//! Event statistics the energy model consumes.

use serde::{Deserialize, Serialize};

/// Counts of energy-relevant NPU events.
///
/// One record accumulates over a simulation; the `energy` crate prices each
/// event class (MAC, weight-buffer read, bus transfer, FIFO traffic,
/// sigmoid LUT lookup) at 45 nm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NpuStats {
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Sigmoid LUT evaluations.
    pub sigmoids: u64,
    /// Weight-buffer reads (one per MAC).
    pub weight_reads: u64,
    /// Bus transfers performed.
    pub bus_transfers: u64,
    /// Values read from the CPU-facing input FIFO (scaling-unit passes).
    pub input_reads: u64,
    /// Values pushed to the CPU-facing output FIFO (scaling-unit passes).
    pub outputs_produced: u64,
    /// Configuration words absorbed.
    pub config_words: u64,
    /// Completed invocations.
    pub invocations: u64,
    /// Invocations reset by misspeculation squashes.
    pub squashed_invocations: u64,
    /// Weight reads corrupted by injected faults (defect modelling).
    pub faults_injected: u64,
    /// Cycles with an invocation in flight.
    pub active_cycles: u64,
    /// Total cycles simulated.
    pub total_cycles: u64,
}

impl NpuStats {
    /// Fraction of simulated cycles with an invocation in flight
    /// (0 when no cycles were simulated).
    pub fn occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of started invocations lost to misspeculation squashes
    /// (0 when nothing ran).
    pub fn squash_rate(&self) -> f64 {
        let started = self.invocations + self.squashed_invocations;
        if started == 0 {
            0.0
        } else {
            self.squashed_invocations as f64 / started as f64
        }
    }

    /// Exports every raw counter and the derived rates into `registry`
    /// under `prefix` (e.g. `npu`).
    pub fn export(&self, registry: &mut telemetry::MetricsRegistry, prefix: &str) {
        let mut c = |name: &str, value: u64| registry.add(&format!("{prefix}.{name}"), value);
        c("macs", self.macs);
        c("sigmoids", self.sigmoids);
        c("weight_reads", self.weight_reads);
        c("bus_transfers", self.bus_transfers);
        c("input_reads", self.input_reads);
        c("outputs_produced", self.outputs_produced);
        c("config_words", self.config_words);
        c("invocations", self.invocations);
        c("squashed_invocations", self.squashed_invocations);
        c("faults_injected", self.faults_injected);
        c("active_cycles", self.active_cycles);
        c("total_cycles", self.total_cycles);
        registry.set_gauge(&format!("{prefix}.occupancy"), self.occupancy());
        registry.set_gauge(&format!("{prefix}.squash_rate"), self.squash_rate());
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &NpuStats) {
        self.macs += other.macs;
        self.sigmoids += other.sigmoids;
        self.weight_reads += other.weight_reads;
        self.bus_transfers += other.bus_transfers;
        self.input_reads += other.input_reads;
        self.outputs_produced += other.outputs_produced;
        self.config_words += other.config_words;
        self.invocations += other.invocations;
        self.squashed_invocations += other.squashed_invocations;
        self.faults_injected += other.faults_injected;
        self.active_cycles += other.active_cycles;
        self.total_cycles += other.total_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = NpuStats {
            macs: 5,
            invocations: 1,
            ..NpuStats::default()
        };
        let b = NpuStats {
            macs: 7,
            sigmoids: 3,
            ..NpuStats::default()
        };
        a.merge(&b);
        assert_eq!(a.macs, 12);
        assert_eq!(a.sigmoids, 3);
        assert_eq!(a.invocations, 1);
    }

    #[test]
    fn occupancy_guards_division_by_zero() {
        assert_eq!(NpuStats::default().occupancy(), 0.0);
        assert_eq!(NpuStats::default().squash_rate(), 0.0);
        let s = NpuStats {
            active_cycles: 30,
            total_cycles: 120,
            invocations: 3,
            squashed_invocations: 1,
            ..NpuStats::default()
        };
        assert!((s.occupancy() - 0.25).abs() < 1e-12);
        assert!((s.squash_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn export_namespaces_counters_and_rates() {
        let s = NpuStats {
            macs: 64,
            active_cycles: 10,
            total_cycles: 40,
            ..NpuStats::default()
        };
        let mut reg = telemetry::MetricsRegistry::new();
        s.export(&mut reg, "npu");
        assert_eq!(reg.counter("npu.macs"), 64);
        assert_eq!(reg.gauge("npu.occupancy"), Some(0.25));
    }
}

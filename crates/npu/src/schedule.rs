//! Static compilation of a trained network onto the NPU (Section 6.2).
//!
//! "The static NPU scheduling algorithm first assigns an order to the
//! inputs of the neural network. … Then, the scheduler takes the following
//! steps for each layer: (1) assign each neuron to one of the processing
//! engines; (2) assign an order to the multiply-add operations …; (3)
//! assign an order to the outputs of the layer; (4) produce a bus schedule
//! reflecting the order of operations."

use crate::{NpuConfig, NpuError, NpuParams};
use serde::{Deserialize, Serialize};

/// Where a scheduled bus transfer reads its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusSource {
    /// The `index`-th input of the invocation. The first read of each
    /// index pops the CPU-facing input FIFO (through the scaling unit);
    /// later reads (multi-round layers) reuse the latched value.
    InputFifo {
        /// Input dimension index.
        index: usize,
    },
    /// The output value of a computed neuron.
    Neuron {
        /// Computing layer (0 = first hidden layer).
        layer: usize,
        /// Neuron index within that layer.
        index: usize,
    },
}

/// Where a scheduled bus transfer delivers its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusDest {
    /// Broadcast into the input FIFOs of the PEs set in the mask.
    Pes(u64),
    /// Push into the CPU-facing output FIFO (through the scaling unit).
    OutputFifo,
}

/// One entry of the bus scheduling buffer: a source and a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusEntry {
    /// Value source.
    pub src: BusSource,
    /// Value destination.
    pub dest: BusDest,
}

/// The work one PE performs for one neuron: a bias-seeded multiply-add
/// chain over the inputs in bus-arrival order, then a sigmoid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuronTask {
    /// Computing layer (0 = first hidden layer).
    pub layer: usize,
    /// Neuron index within the layer.
    pub neuron: usize,
    /// Bias (seeds the accumulator — no bus transfer needed).
    pub bias: f32,
    /// Weights in input-arrival order.
    pub weights: Vec<f32>,
}

/// A complete static schedule: the bus program plus per-PE task lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuSchedule {
    /// PEs the schedule was compiled for.
    pub n_pes: usize,
    /// The bus program, executed in order, at most one entry per cycle.
    pub entries: Vec<BusEntry>,
    /// Per-PE neuron tasks in execution order.
    pub pe_tasks: Vec<Vec<NeuronTask>>,
    /// Layer sizes (including input and output layers).
    pub layer_sizes: Vec<usize>,
}

impl NpuSchedule {
    /// Multiply-add operations per invocation.
    pub fn macs_per_invocation(&self) -> u64 {
        self.pe_tasks
            .iter()
            .flatten()
            .map(|t| t.weights.len() as u64)
            .sum()
    }

    /// Sigmoid evaluations per invocation.
    pub fn sigmoids_per_invocation(&self) -> u64 {
        self.pe_tasks.iter().map(|t| t.len() as u64).sum()
    }

    /// Bus transfers per invocation.
    pub fn bus_transfers_per_invocation(&self) -> u64 {
        self.entries.len() as u64
    }

    /// The PE a neuron of `layer` is assigned to (round-robin).
    pub fn pe_of(&self, neuron: usize) -> usize {
        neuron % self.n_pes
    }
}

/// Compiles topologies onto an NPU configuration of `NpuParams`.
#[derive(Debug, Clone)]
pub struct Scheduler {
    params: NpuParams,
}

impl Scheduler {
    /// Creates a scheduler for the given hardware parameters.
    pub fn new(params: NpuParams) -> Self {
        Scheduler { params }
    }

    /// Produces the static schedule for `config`'s network.
    ///
    /// Neurons are assigned to PEs round-robin (`neuron % n_pes`), so a
    /// layer executes in `ceil(n / n_pes)` *rounds*; each round broadcasts
    /// every layer input once to the PEs computing that round's neurons.
    ///
    /// # Errors
    ///
    /// With strict capacity checking, returns
    /// [`NpuError::CapacityExceeded`] when the network needs more weight
    /// cache, bus schedule entries, output registers, or I/O FIFO space
    /// than the hardware provides.
    #[allow(clippy::needless_range_loop)] // pe indexes masks and task lists together
    pub fn schedule(&self, config: &NpuConfig) -> Result<NpuSchedule, NpuError> {
        let p = self.params.n_pes;
        assert!((1..=64).contains(&p), "PE count must be in 1..=64");
        let t = config.topology();
        let layers = t.layers();
        let mlp = config.mlp();

        let mut entries = Vec::new();
        let mut pe_tasks: Vec<Vec<NeuronTask>> = vec![Vec::new(); p];
        let mut max_rounds = 0usize;

        for l in 0..layers.len() - 1 {
            let m = layers[l]; // inputs to this computing layer
            let n = layers[l + 1]; // neurons in this computing layer
            let rounds = n.div_ceil(p);
            max_rounds = max_rounds.max(rounds);
            for r in 0..rounds {
                let mut mask = 0u64;
                for pe in 0..p {
                    if r * p + pe < n {
                        mask |= 1 << pe;
                    }
                }
                for i in 0..m {
                    let src = if l == 0 {
                        BusSource::InputFifo { index: i }
                    } else {
                        BusSource::Neuron {
                            layer: l - 1,
                            index: i,
                        }
                    };
                    entries.push(BusEntry {
                        src,
                        dest: BusDest::Pes(mask),
                    });
                }
                for pe in 0..p {
                    let neuron = r * p + pe;
                    if neuron >= n {
                        continue;
                    }
                    let weights: Vec<f32> = (0..m).map(|i| mlp.weight(l, neuron, i)).collect();
                    pe_tasks[pe].push(NeuronTask {
                        layer: l,
                        neuron,
                        bias: mlp.weight(l, neuron, m),
                        weights,
                    });
                }
            }
        }
        // Final layer: drain results to the output FIFO in output order —
        // this ordering "dictates the order in which the program will
        // retrieve the NPU's output using deq.d instructions".
        let last_layer = layers.len() - 2;
        for j in 0..t.outputs() {
            entries.push(BusEntry {
                src: BusSource::Neuron {
                    layer: last_layer,
                    index: j,
                },
                dest: BusDest::OutputFifo,
            });
        }

        let schedule = NpuSchedule {
            n_pes: p,
            entries,
            pe_tasks,
            layer_sizes: layers.to_vec(),
        };
        if self.params.strict_capacity {
            self.check_capacity(&schedule, t.inputs(), t.outputs(), max_rounds)?;
        }
        Ok(schedule)
    }

    fn check_capacity(
        &self,
        schedule: &NpuSchedule,
        n_inputs: usize,
        n_outputs: usize,
        max_rounds: usize,
    ) -> Result<(), NpuError> {
        let check = |structure: &'static str, needed: usize, available: usize| {
            if needed > available {
                Err(NpuError::CapacityExceeded {
                    structure,
                    needed,
                    available,
                })
            } else {
                Ok(())
            }
        };
        check(
            "bus schedule",
            schedule.entries.len(),
            self.params.bus_schedule,
        )?;
        for tasks in &schedule.pe_tasks {
            let weights: usize = tasks.iter().map(|t| t.weights.len() + 1).sum();
            check("weight cache", weights, self.params.weight_cache)?;
        }
        check("output register file", max_rounds, self.params.output_regs)?;
        check("input fifo", n_inputs, self.params.input_fifo)?;
        check("output fifo", n_outputs, self.params.output_fifo)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Mlp, Normalizer, Topology};

    fn config_for(layers: Vec<usize>) -> NpuConfig {
        let t = Topology::new(layers).unwrap();
        let (i, o) = (t.inputs(), t.outputs());
        NpuConfig::new(
            Mlp::seeded(t, 3),
            Normalizer::identity(i),
            Normalizer::identity(o),
        )
    }

    #[test]
    fn sobel_schedule_shape() {
        // 9 -> 8 -> 1 on 8 PEs: layer 1 = 1 round x 9 inputs, layer 2 =
        // 1 round x 8 inputs, plus 1 output drain = 18 entries.
        let config = config_for(vec![9, 8, 1]);
        let s = Scheduler::new(NpuParams::default())
            .schedule(&config)
            .unwrap();
        assert_eq!(s.entries.len(), 9 + 8 + 1);
        assert_eq!(s.macs_per_invocation(), (9 * 8 + 8) as u64);
        assert_eq!(s.sigmoids_per_invocation(), 9);
        // All 9 neurons distributed: PE0 gets hidden neuron 0 and the
        // output neuron.
        assert_eq!(s.pe_tasks[0].len(), 2);
        assert_eq!(s.pe_tasks[7].len(), 1);
    }

    #[test]
    fn multi_round_layer_rebroadcasts_inputs() {
        // 4 -> 16 -> 1 on 8 PEs: hidden layer needs 2 rounds, so the 4
        // inputs are broadcast twice.
        let config = config_for(vec![4, 16, 1]);
        let s = Scheduler::new(NpuParams::default())
            .schedule(&config)
            .unwrap();
        let input_reads = s
            .entries
            .iter()
            .filter(|e| matches!(e.src, BusSource::InputFifo { .. }))
            .count();
        assert_eq!(input_reads, 8); // 4 inputs x 2 rounds
                                    // Round 1 broadcasts to all 8 PEs, round 2 to all 8 again (16 = 2x8).
        let masks: Vec<u64> = s
            .entries
            .iter()
            .filter_map(|e| match e.dest {
                BusDest::Pes(m) => Some(m),
                _ => None,
            })
            .collect();
        assert!(masks.iter().all(|&m| m.count_ones() <= 8));
    }

    #[test]
    fn partial_round_masks_only_live_pes() {
        // 2 -> 3 -> 1 on 8 PEs: hidden layer round 0 uses PEs 0..3 only.
        let config = config_for(vec![2, 3, 1]);
        let s = Scheduler::new(NpuParams::default())
            .schedule(&config)
            .unwrap();
        match s.entries[0].dest {
            BusDest::Pes(mask) => assert_eq!(mask, 0b111),
            BusDest::OutputFifo => panic!("first entry should feed PEs"),
        }
    }

    #[test]
    fn weights_cover_network_exactly_once() {
        let config = config_for(vec![5, 8, 3]);
        let s = Scheduler::new(NpuParams::default())
            .schedule(&config)
            .unwrap();
        let total_weights: usize = s
            .pe_tasks
            .iter()
            .flatten()
            .map(|t| t.weights.len() + 1)
            .sum();
        assert_eq!(total_weights, config.topology().weight_count());
        // Each (layer, neuron) appears exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for t in s.pe_tasks.iter().flatten() {
            assert!(seen.insert((t.layer, t.neuron)), "duplicate neuron task");
        }
        assert_eq!(seen.len(), config.topology().computing_neurons());
    }

    #[test]
    fn output_drain_is_in_order() {
        let config = config_for(vec![3, 4, 3]);
        let s = Scheduler::new(NpuParams::default())
            .schedule(&config)
            .unwrap();
        let drains: Vec<usize> = s
            .entries
            .iter()
            .filter_map(|e| match (e.src, e.dest) {
                (BusSource::Neuron { index, .. }, BusDest::OutputFifo) => Some(index),
                _ => None,
            })
            .collect();
        assert_eq!(drains, vec![0, 1, 2]);
    }

    #[test]
    fn oversized_network_is_rejected_when_strict() {
        // One PE must hold every weight of a large network: exceeds the
        // 512-entry weight cache.
        let config = config_for(vec![64, 64, 64]);
        let err = Scheduler::new(NpuParams::with_pes(1))
            .schedule(&config)
            .unwrap_err();
        assert!(matches!(err, NpuError::CapacityExceeded { .. }), "{err:?}");
        // The unbounded variant accepts it (sensitivity sweeps).
        assert!(Scheduler::new(NpuParams::with_pes(1).unbounded())
            .schedule(&config)
            .is_ok());
    }

    #[test]
    fn paper_benchmarks_fit_default_hardware() {
        for layers in [
            vec![1, 4, 4, 2],   // fft
            vec![2, 8, 2],      // inversek2j
            vec![18, 32, 8, 2], // jmeint
            vec![64, 16, 64],   // jpeg
            vec![6, 8, 4, 1],   // kmeans
            vec![9, 8, 1],      // sobel
        ] {
            let config = config_for(layers.clone());
            assert!(
                Scheduler::new(NpuParams::default())
                    .schedule(&config)
                    .is_ok(),
                "{layers:?} should fit the paper's 8-PE NPU"
            );
        }
    }
}

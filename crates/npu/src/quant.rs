//! Region-level fixed-point inference: the quantized NPU datapath wired to
//! the static precision analysis.
//!
//! [`QuantizedNpu`] is the int4..int16 counterpart of
//! [`NpuConfig::evaluate`]: the trained network quantized onto a storage
//! grid ([`ann::QuantizedMlp`]), the scaling unit's I/O on *boundary*
//! Qm.n grids, and the accumulator saturating on the *datapath* format —
//! with every format taken from the region's
//! [`PrecisionReport`](approx_ir::analysis::PrecisionReport) when the
//! interval analysis proved the region bounded (sobel's Q7.23 being the
//! pinned example), and from the observed normalizer ranges otherwise.
//!
//! Contract with the static analysis: a precision row `in<k>` / `out<k>`
//! with finite `int_bits`/`frac_bits` becomes the quantization grid the
//! region's raw values cross on their way into and out of the accelerator.
//! Because the scaling-unit normalizers are also built from the proven
//! `[lo, hi]` hulls, every boundary value a well-formed input produces
//! lies inside its declared hull and quantizes without saturating — the
//! property the six-region soundness test in `crates/benchmarks` asserts.

use crate::NpuConfig;
use ann::{Normalizer, QFormat, QuantScratch, QuantTrace, QuantizedMlp, MAX_TOTAL_BITS};
use approx_ir::analysis::{PrecisionReport, ValuePrecision};

/// Boundary-format fallback width when a row is unbounded: a 32-bit word,
/// like the datapath registers.
const FALLBACK_TOTAL_BITS: u8 = 32;

/// How each Qm.n format of a [`QuantizedNpu`] was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatSource {
    /// Proven by the static precision analysis (bounded row).
    Static,
    /// Fallback from the observed normalizer range (unbounded row or no
    /// precision report).
    Observed,
}

/// A fixed-point NPU invocation path for one region: boundary grids for
/// the scaling unit, plus the quantized network between them.
#[derive(Debug, Clone)]
pub struct QuantizedNpu {
    qmlp: QuantizedMlp,
    input_norm: Normalizer,
    output_norm: Normalizer,
    /// Per-input boundary formats (the raw-value grid before scaling).
    input_fmts: Vec<QFormat>,
    /// Per-output boundary formats (the raw-value grid after scaling).
    output_fmts: Vec<QFormat>,
    /// Where the boundary/datapath formats came from.
    source: FormatSource,
    /// Accumulator (datapath) format, e.g. sobel's proven Q7.23.
    datapath: QFormat,
}

/// One traced invocation: the outputs plus everything the soundness test
/// needs to check the static hull was honored.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantInvocation {
    /// Region outputs after the output boundary grid.
    pub outputs: Vec<f32>,
    /// Inputs as seen past the input boundary grid (quantize→dequantize).
    pub boundary_inputs: Vec<f32>,
    /// Network-internal trace (datapath saturation).
    pub datapath: QuantTrace,
    /// Boundary values that had to saturate on their Qm.n grid.
    pub boundary_saturated: usize,
}

/// Clamps a precision row's declared widths onto a constructible
/// [`QFormat`] (the analysis can declare up to 149 fraction bits for
/// subnormal-magnitude hulls; codes live in i64).
fn format_from_row(row: &ValuePrecision) -> Option<QFormat> {
    let (int_bits, frac_bits) = (row.int_bits?, row.frac_bits?);
    let int_bits = int_bits.max(1);
    let frac_bits = frac_bits.min(MAX_TOTAL_BITS - int_bits);
    Some(QFormat::new(int_bits, frac_bits))
}

/// Boundary format from an observed normalizer range (the fallback when
/// the static analysis could not bound a row).
fn format_from_range(lo: f32, hi: f32) -> QFormat {
    if lo.is_finite() && hi.is_finite() {
        QFormat::for_range(lo, hi, FALLBACK_TOTAL_BITS)
    } else {
        QFormat::new(8, 24)
    }
}

impl QuantizedNpu {
    /// Builds the quantized path for `config` at `weight_bits` storage
    /// width, taking every format from `precision` where bounded.
    ///
    /// When `precision` is `None`, or a row (or the datapath hull) is
    /// unbounded, the affected formats fall back to the observed
    /// normalizer ranges and the sobel-class Q7.23 datapath default, and
    /// [`source`](Self::source) reports [`FormatSource::Observed`].
    ///
    /// # Panics
    ///
    /// Panics if `weight_bits` is outside `4..=16` (the int4..int16
    /// storage sweep).
    pub fn new(config: &NpuConfig, precision: Option<&PrecisionReport>, weight_bits: u8) -> Self {
        let n_in = config.topology().inputs();
        let n_out = config.topology().outputs();

        let row = |name: &str| -> Option<&ValuePrecision> {
            precision.and_then(|p| p.values.iter().find(|v| v.name == name))
        };

        let mut source = FormatSource::Static;
        let mut input_fmts = Vec::with_capacity(n_in);
        for k in 0..n_in {
            let fmt = row(&format!("in{k}")).and_then(format_from_row);
            input_fmts.push(fmt.unwrap_or_else(|| {
                source = FormatSource::Observed;
                let (lo, hi) = config.input_norm().ranges()[k];
                format_from_range(lo, hi)
            }));
        }
        let mut output_fmts = Vec::with_capacity(n_out);
        for k in 0..n_out {
            let fmt = row(&format!("out{k}")).and_then(format_from_row);
            output_fmts.push(fmt.unwrap_or_else(|| {
                source = FormatSource::Observed;
                let (lo, hi) = config.output_norm().ranges()[k];
                format_from_range(lo, hi)
            }));
        }

        // Datapath: the widest proven requirement across the region
        // (sobel: Q7.23). Unbounded regions inherit the Q7.23 default —
        // the widest datapath the paper's 32-bit-word hardware tables.
        let datapath = precision
            .and_then(|p| {
                Some(QFormat::new(
                    p.datapath_int_bits()?,
                    p.datapath_frac_bits()?,
                ))
            })
            .unwrap_or_else(|| {
                source = FormatSource::Observed;
                QFormat::new(7, 23)
            });

        QuantizedNpu {
            qmlp: QuantizedMlp::quantize(config.mlp(), weight_bits, datapath),
            input_norm: config.input_norm().clone(),
            output_norm: config.output_norm().clone(),
            input_fmts,
            output_fmts,
            source,
            datapath,
        }
    }

    /// Like [`new`](Self::new), but with scaling-unit normalizers rebuilt
    /// from the precision report's proven `in<k>`/`out<k>` hulls instead
    /// of observed ranges — the fully statically-derived configuration the
    /// soundness test exercises. Rows the analysis could not bound keep
    /// the observed normalizer range.
    pub fn with_static_scaling(
        config: &NpuConfig,
        precision: &PrecisionReport,
        weight_bits: u8,
    ) -> Self {
        let hull = |name: &str, fallback: (f32, f32)| -> (f32, f32) {
            precision
                .values
                .iter()
                .find(|v| v.name == name && v.bounded())
                .map(|v| (v.lo, v.hi))
                .unwrap_or(fallback)
        };
        let in_ranges: Vec<(f32, f32)> = config
            .input_norm()
            .ranges()
            .iter()
            .enumerate()
            .map(|(k, &r)| hull(&format!("in{k}"), r))
            .collect();
        let out_ranges: Vec<(f32, f32)> = config
            .output_norm()
            .ranges()
            .iter()
            .enumerate()
            .map(|(k, &r)| hull(&format!("out{k}"), r))
            .collect();
        let static_config = NpuConfig::new(
            config.mlp().clone(),
            Normalizer::new(in_ranges),
            Normalizer::new(out_ranges),
        );
        QuantizedNpu::new(&static_config, Some(precision), weight_bits)
    }

    /// The storage width of the quantized network.
    pub fn weight_bits(&self) -> u8 {
        self.qmlp.weight_bits()
    }

    /// The datapath accumulator format.
    pub fn datapath(&self) -> QFormat {
        self.datapath
    }

    /// Per-input boundary formats.
    pub fn input_formats(&self) -> &[QFormat] {
        &self.input_fmts
    }

    /// Per-output boundary formats.
    pub fn output_formats(&self) -> &[QFormat] {
        &self.output_fmts
    }

    /// Whether the formats are statically proven or observed fallbacks.
    pub fn source(&self) -> FormatSource {
        self.source
    }

    /// One fixed-point invocation: raw inputs cross the input boundary
    /// grid, the scaling unit normalizes, the integer network runs, and
    /// the outputs cross the output boundary grid. Allocation-free given
    /// a reused `scratch`.
    pub fn evaluate_with(&self, inputs: &[f32], scratch: &mut QuantScratch) -> QuantInvocation {
        assert_eq!(inputs.len(), self.input_fmts.len(), "input arity mismatch");
        let mut boundary_saturated = 0usize;
        let boundary_inputs: Vec<f32> = inputs
            .iter()
            .zip(&self.input_fmts)
            .map(|(&x, fmt)| {
                let code = fmt.quantize(x);
                if code == fmt.min_code() || code == fmt.max_code() {
                    boundary_saturated += 1;
                }
                fmt.dequantize(code)
            })
            .collect();
        let normalized: Vec<f32> = boundary_inputs
            .iter()
            .enumerate()
            .map(|(k, &x)| self.input_norm.normalize_one(k, x))
            .collect();
        let mut net_out = Vec::new();
        let datapath = self.qmlp.forward_with(&normalized, scratch, &mut net_out);
        let outputs: Vec<f32> = net_out
            .iter()
            .enumerate()
            .map(|(k, &y)| {
                let raw = self.output_norm.denormalize_one(k, y);
                let fmt = &self.output_fmts[k];
                let code = fmt.quantize(raw);
                if code == fmt.min_code() || code == fmt.max_code() {
                    boundary_saturated += 1;
                }
                fmt.dequantize(code)
            })
            .collect();
        QuantInvocation {
            outputs,
            boundary_inputs,
            datapath,
            boundary_saturated,
        }
    }

    /// Allocating convenience wrapper around
    /// [`evaluate_with`](Self::evaluate_with), returning just the outputs.
    pub fn evaluate(&self, inputs: &[f32]) -> Vec<f32> {
        let mut scratch = QuantScratch::new();
        self.evaluate_with(inputs, &mut scratch).outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ann::{Mlp, Topology};

    fn sobel_like_config() -> NpuConfig {
        let t = Topology::new(vec![9, 8, 1]).unwrap();
        NpuConfig::new(
            Mlp::seeded(t, 5),
            Normalizer::identity(9),
            Normalizer::new(vec![(0.0, 1.0)]),
        )
    }

    #[test]
    fn without_precision_report_uses_observed_fallback() {
        let config = sobel_like_config();
        let q = QuantizedNpu::new(&config, None, 16);
        assert_eq!(q.source(), FormatSource::Observed);
        assert_eq!(q.datapath(), QFormat::new(7, 23));
        assert_eq!(q.input_formats().len(), 9);
        assert_eq!(q.output_formats().len(), 1);
    }

    #[test]
    fn quantized_path_tracks_f32_oracle() {
        let config = sobel_like_config();
        let q = QuantizedNpu::new(&config, None, 16);
        let mut scratch = QuantScratch::new();
        let mut worst = 0.0f32;
        for k in 0..32 {
            let inputs: Vec<f32> = (0..9).map(|i| ((k * 11 + i) % 13) as f32 / 13.0).collect();
            let oracle = config.evaluate(&inputs);
            let inv = q.evaluate_with(&inputs, &mut scratch);
            worst = worst.max((oracle[0] - inv.outputs[0]).abs());
        }
        // int16 + Q7.23: dominated by the (shared) sigmoid LUT grid.
        assert!(worst < 0.01, "int16 worst-case error {worst}");
    }

    #[test]
    fn narrower_widths_degrade_gracefully() {
        let config = sobel_like_config();
        let inputs: Vec<f32> = (0..9).map(|i| i as f32 / 9.0).collect();
        for bits in [4u8, 8, 12, 16] {
            let q = QuantizedNpu::new(&config, None, bits);
            let out = q.evaluate(&inputs);
            assert!(
                out[0].is_finite() && (-0.001..=1.001).contains(&out[0]),
                "int{bits} output {out:?} escapes the output range"
            );
        }
    }
}

//! The NPU configuration: trained network + normalization, and its `u32`
//! wire encoding.

use crate::NpuError;
use ann::{Mlp, Normalizer, SigmoidLut, Topology};
use serde::{Deserialize, Serialize};

const MAGIC: u32 = 0x4E50_5531; // "NPU1"
const MAX_LAYERS: usize = 16;
const MAX_LAYER_SIZE: usize = 4096;

/// Everything the compiler ships to the NPU for one transformed region:
/// the network topology, its synaptic weights, and the input/output
/// normalization ranges the scaling unit applies (paper Sections 4.3, 6.2).
///
/// The wire format ([`encode`](Self::encode)/[`decode`](Self::decode)) is a
/// stream of `u32` words — exactly what a sequence of `enq.c` instructions
/// transports, and what `deq.c` reads back when the OS saves NPU state on a
/// context switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NpuConfig {
    mlp: Mlp,
    input_norm: Normalizer,
    output_norm: Normalizer,
}

impl NpuConfig {
    /// Bundles a trained network with its normalization ranges.
    ///
    /// # Panics
    ///
    /// Panics if the normalizer dimensions do not match the topology.
    pub fn new(mlp: Mlp, input_norm: Normalizer, output_norm: Normalizer) -> Self {
        assert_eq!(
            input_norm.dims(),
            mlp.topology().inputs(),
            "input normalizer dims mismatch"
        );
        assert_eq!(
            output_norm.dims(),
            mlp.topology().outputs(),
            "output normalizer dims mismatch"
        );
        NpuConfig {
            mlp,
            input_norm,
            output_norm,
        }
    }

    /// The trained network.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.mlp.topology()
    }

    /// Input scaling ranges.
    pub fn input_norm(&self) -> &Normalizer {
        &self.input_norm
    }

    /// Output scaling ranges.
    pub fn output_norm(&self) -> &Normalizer {
        &self.output_norm
    }

    /// Functionally evaluates the configuration on raw application values:
    /// normalize, run the network with the hardware's LUT sigmoid,
    /// denormalize.
    ///
    /// This is the *reference semantics* of one NPU invocation; the
    /// cycle-accurate [`NpuSim`](crate::NpuSim) produces identical values
    /// (tests assert it), it just also tells you *when*.
    pub fn evaluate(&self, inputs: &[f32]) -> Vec<f32> {
        // The hardware-default LUT is immutable; build it once per process
        // rather than per invocation.
        static DEFAULT_LUT: std::sync::OnceLock<SigmoidLut> = std::sync::OnceLock::new();
        self.evaluate_with_lut(inputs, DEFAULT_LUT.get_or_init(SigmoidLut::default))
    }

    /// [`evaluate`](Self::evaluate) with an explicit LUT (for studying
    /// quantization sensitivity).
    pub fn evaluate_with_lut(&self, inputs: &[f32], lut: &SigmoidLut) -> Vec<f32> {
        let mut x = inputs.to_vec();
        self.input_norm.normalize(&mut x);
        let mut y = self.mlp.feed_forward_lut(&x, lut);
        self.output_norm.denormalize(&mut y);
        y
    }

    /// Serializes to the `u32` configuration word stream.
    ///
    /// Layout: magic, layer count, layer sizes, input ranges (min,max as
    /// f32 bits per dimension), output ranges, then weights in canonical
    /// (layer-major, neuron-major, source-major, bias last) order. The
    /// NPU's static bus/PE schedule is re-derived deterministically from
    /// the topology on configuration, which carries the same information
    /// as shipping the schedule itself.
    pub fn encode(&self) -> Vec<u32> {
        let t = self.topology();
        let mut words = Vec::new();
        words.push(MAGIC);
        words.push(t.layers().len() as u32);
        for &n in t.layers() {
            words.push(n as u32);
        }
        for &(lo, hi) in self.input_norm.ranges() {
            words.push(lo.to_bits());
            words.push(hi.to_bits());
        }
        for &(lo, hi) in self.output_norm.ranges() {
            words.push(lo.to_bits());
            words.push(hi.to_bits());
        }
        for matrix in self.mlp.weight_matrices() {
            for &w in matrix {
                words.push(w.to_bits());
            }
        }
        words
    }

    /// Number of configuration words [`encode`](Self::encode) produces.
    pub fn encoded_len(&self) -> usize {
        let t = self.topology();
        2 + t.layers().len() + 2 * (t.inputs() + t.outputs()) + t.weight_count()
    }

    /// Deserializes a configuration word stream.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidConfig`] on a bad magic word, impossible
    /// layer structure, or truncated stream.
    pub fn decode(words: &[u32]) -> Result<Self, NpuError> {
        let mut it = words.iter().copied();
        let mut next = |what: &str| {
            it.next()
                .ok_or_else(|| NpuError::InvalidConfig(format!("truncated at {what}")))
        };
        if next("magic")? != MAGIC {
            return Err(NpuError::InvalidConfig("bad magic word".into()));
        }
        let n_layers = next("layer count")? as usize;
        if !(2..=MAX_LAYERS).contains(&n_layers) {
            return Err(NpuError::InvalidConfig(format!(
                "layer count {n_layers} out of range"
            )));
        }
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let n = next("layer size")? as usize;
            if n == 0 || n > MAX_LAYER_SIZE {
                return Err(NpuError::InvalidConfig(format!(
                    "layer size {n} out of range"
                )));
            }
            layers.push(n);
        }
        let topology = Topology::new(layers).map_err(|e| NpuError::InvalidConfig(e.to_string()))?;

        let read_ranges = |dims: usize,
                           next: &mut dyn FnMut(&str) -> Result<u32, NpuError>|
         -> Result<Normalizer, NpuError> {
            let mut ranges = Vec::with_capacity(dims);
            for _ in 0..dims {
                let lo = f32::from_bits(next("range min")?);
                let hi = f32::from_bits(next("range max")?);
                ranges.push((lo, hi));
            }
            Ok(Normalizer::new(ranges))
        };
        let input_norm = read_ranges(topology.inputs(), &mut next)?;
        let output_norm = read_ranges(topology.outputs(), &mut next)?;

        let mut matrices = Vec::new();
        for pair in topology.layers().windows(2) {
            let count = (pair[0] + 1) * pair[1];
            let mut m = Vec::with_capacity(count);
            for _ in 0..count {
                m.push(f32::from_bits(next("weight")?));
            }
            matrices.push(m);
        }
        if it.next().is_some() {
            return Err(NpuError::InvalidConfig(
                "trailing words after configuration".into(),
            ));
        }
        Ok(NpuConfig::new(
            Mlp::from_weights(topology, matrices),
            input_norm,
            output_norm,
        ))
    }

    /// Total length of the configuration stream whose prefix is `words`,
    /// once enough of the header is visible to compute it. `Ok(None)`
    /// means the header itself is still incomplete. This is how a
    /// receiver of `enq.c` words knows when a full configuration has
    /// arrived and can be [`decode`](Self::decode)d.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidConfig`] as soon as the prefix is
    /// provably malformed (bad magic, impossible layer structure).
    pub fn stream_len(words: &[u32]) -> Result<Option<usize>, NpuError> {
        if words.is_empty() {
            return Ok(None);
        }
        if words[0] != MAGIC {
            return Err(NpuError::InvalidConfig("bad magic word".into()));
        }
        if words.len() < 2 {
            return Ok(None);
        }
        let n_layers = words[1] as usize;
        if !(2..=MAX_LAYERS).contains(&n_layers) {
            return Err(NpuError::InvalidConfig(format!(
                "layer count {n_layers} out of range"
            )));
        }
        if words.len() < 2 + n_layers {
            return Ok(None);
        }
        let layers: Vec<usize> = words[2..2 + n_layers].iter().map(|&w| w as usize).collect();
        if layers.iter().any(|&n| n == 0 || n > MAX_LAYER_SIZE) {
            return Err(NpuError::InvalidConfig("layer size out of range".into()));
        }
        let weights: usize = layers.windows(2).map(|w| (w[0] + 1) * w[1]).sum();
        let ranges = 2 * (layers[0] + layers[n_layers - 1]);
        Ok(Some(2 + n_layers + ranges + weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> NpuConfig {
        let t = Topology::new(vec![3, 4, 2]).unwrap();
        NpuConfig::new(
            Mlp::seeded(t, 77),
            Normalizer::new(vec![(0.0, 1.0), (-2.0, 2.0), (5.0, 9.0)]),
            Normalizer::new(vec![(-1.0, 1.0), (0.0, 100.0)]),
        )
    }

    #[test]
    fn encode_decode_round_trip() {
        let config = sample_config();
        let words = config.encode();
        assert_eq!(words.len(), config.encoded_len());
        let decoded = NpuConfig::decode(&words).unwrap();
        assert_eq!(decoded, config);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut words = sample_config().encode();
        words[0] = 0xDEAD_BEEF;
        assert!(matches!(
            NpuConfig::decode(&words),
            Err(NpuError::InvalidConfig(_))
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let words = sample_config().encode();
        for cut in [1, 5, words.len() - 1] {
            assert!(
                NpuConfig::decode(&words[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut words = sample_config().encode();
        words.push(0);
        assert!(NpuConfig::decode(&words).is_err());
    }

    #[test]
    fn evaluate_applies_normalization() {
        let t = Topology::new(vec![1, 1]).unwrap();
        // Identity-ish network: output = sigmoid(w * x + b).
        let mlp = Mlp::from_weights(t, vec![vec![0.0, 0.0]]); // constant sigmoid(0) = 0.5
        let config = NpuConfig::new(
            mlp,
            Normalizer::new(vec![(0.0, 1.0)]),
            Normalizer::new(vec![(10.0, 20.0)]),
        );
        let y = config.evaluate(&[0.3]);
        assert!((y[0] - 15.0).abs() < 0.05); // 0.5 denormalized into [10, 20]
    }

    #[test]
    #[should_panic(expected = "input normalizer dims mismatch")]
    fn new_validates_dims() {
        let t = Topology::new(vec![2, 1]).unwrap();
        let _ = NpuConfig::new(
            Mlp::zeroed(t),
            Normalizer::identity(3),
            Normalizer::identity(1),
        );
    }
}

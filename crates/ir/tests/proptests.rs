//! Property-based tests: IR interpreter semantics against direct Rust
//! evaluation, and structural invariants of the builder.

use approx_ir::{static_counts, CmpOp, FunctionBuilder, Interpreter, Program, Value, VecSink};
use proptest::prelude::*;

proptest! {
    /// A chain of float operations evaluates exactly like the same chain
    /// in Rust.
    #[test]
    fn float_arithmetic_matches_rust(
        a in -1000.0f32..1000.0,
        b in -1000.0f32..1000.0,
        c in 0.001f32..1000.0,
    ) {
        let mut fb = FunctionBuilder::new("expr", 3);
        let (ra, rb, rc) = (fb.param(0), fb.param(1), fb.param(2));
        let sum = fb.fadd(ra, rb);
        let prod = fb.fmul(sum, rc);
        let quot = fb.fdiv(prod, rc);
        let diff = fb.fsub(quot, ra);
        let absd = fb.fabs(diff);
        let root = fb.fsqrt(absd);
        fb.ret(&[root]);
        let mut p = Program::new();
        let f = p.add_function(fb.build().unwrap());
        let got = Interpreter::new(&p)
            .run(f, &[Value::F(a), Value::F(b), Value::F(c)])
            .unwrap()[0]
            .as_f32()
            .unwrap();
        let want = (((a + b) * c / c) - a).abs().sqrt();
        prop_assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0), "{got} vs {want}");
    }

    /// Integer ops wrap exactly like Rust's wrapping semantics.
    #[test]
    fn integer_arithmetic_matches_rust(a in any::<i32>(), b in any::<i32>(), s in 0i32..31) {
        let mut fb = FunctionBuilder::new("iexpr", 3);
        let (ra, rb, rs) = (fb.param(0), fb.param(1), fb.param(2));
        let sum = fb.iadd(ra, rb);
        let shifted = fb.ishl(sum, rs);
        let masked = fb.iand(shifted, rb);
        let ord = fb.ior(masked, ra);
        fb.ret(&[ord]);
        let mut p = Program::new();
        let f = p.add_function(fb.build().unwrap());
        let got = Interpreter::new(&p)
            .run(f, &[Value::I(a), Value::I(b), Value::I(s)])
            .unwrap()[0]
            .as_i32()
            .unwrap();
        let want = (a.wrapping_add(b).wrapping_shl(s as u32) & b) | a;
        prop_assert_eq!(got, want);
    }

    /// A counted IR loop runs exactly n iterations for any n.
    #[test]
    fn loop_iteration_count_is_exact(n in 0i32..500) {
        let mut fb = FunctionBuilder::new("count", 1);
        let limit = fb.param(0);
        let i = fb.consti(0);
        let acc = fb.consti(0);
        let one = fb.consti(1);
        let top = fb.new_label();
        let done = fb.new_label();
        fb.bind(top);
        let fin = fb.cmpi(CmpOp::Ge, i, limit);
        fb.branch_if(fin, done);
        fb.iadd_into(acc, one);
        fb.iadd_into(i, one);
        fb.jump(top);
        fb.bind(done);
        fb.ret(&[acc]);
        let mut p = Program::new();
        let f = p.add_function(fb.build().unwrap());
        let got = Interpreter::new(&p).run(f, &[Value::I(n)]).unwrap()[0]
            .as_i32()
            .unwrap();
        prop_assert_eq!(got, n);
    }

    /// Stored values read back identically from any in-bounds address.
    #[test]
    fn memory_is_a_faithful_store(
        addr in 0i32..64,
        value in -1e6f32..1e6,
    ) {
        let mut fb = FunctionBuilder::new("mem", 2);
        let (ra, rv) = (fb.param(0), fb.param(1));
        fb.store(rv, ra, 0);
        let out = fb.load(ra, 0);
        fb.ret(&[out]);
        let mut p = Program::new();
        let f = p.add_function(fb.build().unwrap());
        let got = Interpreter::new(&p)
            .with_memory(64)
            .run(f, &[Value::I(addr), Value::F(value)])
            .unwrap()[0]
            .as_f32()
            .unwrap();
        prop_assert_eq!(got, value);
    }

    /// Bitcasts round-trip every bit pattern (NaNs included).
    #[test]
    fn bitcasts_round_trip(bits in any::<u32>()) {
        let mut fb = FunctionBuilder::new("bits", 1);
        let w = fb.param(0);
        let f = fb.bits_to_f(w);
        let back = fb.f_to_bits(f);
        fb.ret(&[back]);
        let mut p = Program::new();
        let id = p.add_function(fb.build().unwrap());
        let got = Interpreter::new(&p)
            .run(id, &[Value::I(bits as i32)])
            .unwrap()[0]
            .as_i32()
            .unwrap();
        prop_assert_eq!(got as u32, bits);
    }

    /// Trace length equals the dynamic instruction count reported by the
    /// interpreter, for loops of any size.
    #[test]
    fn trace_length_matches_executed(n in 0i32..100) {
        let mut fb = FunctionBuilder::new("traced", 1);
        let limit = fb.param(0);
        let i = fb.consti(0);
        let one = fb.consti(1);
        let top = fb.new_label();
        let done = fb.new_label();
        fb.bind(top);
        let fin = fb.cmpi(CmpOp::Ge, i, limit);
        fb.branch_if(fin, done);
        fb.iadd_into(i, one);
        fb.jump(top);
        fb.bind(done);
        fb.ret(&[i]);
        let mut p = Program::new();
        let f = p.add_function(fb.build().unwrap());
        let mut sink = VecSink::default();
        let outcome = Interpreter::new(&p)
            .run_traced(f, &[Value::I(n)], &mut sink)
            .unwrap();
        prop_assert_eq!(sink.events.len() as u64, outcome.executed);
    }

    /// Static counts never exceed the function's instruction count and
    /// every backward edge is a loop.
    #[test]
    fn static_counts_are_bounded(n_ifs in 0usize..5) {
        let mut fb = FunctionBuilder::new("counted", 1);
        let x = fb.param(0);
        let zero = fb.consti(0);
        for _ in 0..n_ifs {
            let skip = fb.new_label();
            let c = fb.cmpi(CmpOp::Gt, x, zero);
            fb.branch_if(c, skip);
            fb.iadd_into(x, zero);
            fb.bind(skip);
        }
        fb.ret(&[x]);
        let mut p = Program::new();
        let f = p.add_function(fb.build().unwrap());
        let counts = static_counts(&p, f);
        prop_assert_eq!(counts.ifs, n_ifs);
        prop_assert_eq!(counts.loops, 0);
        prop_assert!(counts.instructions >= 2 + 3 * n_ifs);
    }
}

//! Property-based tests tying the region safety verifier to interpreter
//! semantics, in both directions:
//!
//! 1. **Soundness of acceptance** — a program the verifier accepts (no
//!    error findings and nothing left unproven) never raises a
//!    statically-detectable fault in the interpreter: no uninitialized
//!    `f32` read (`TypeMismatch`), no scratch access out of bounds, no
//!    fall-off-the-end (`MissingReturn`).
//! 2. **Completeness of flagging** — a program the interpreter faults on
//!    with one of those errors always has a non-empty report.
//!
//! Programs are assembled from raw instruction lists (bypassing the
//! builder's invariants) so that genuinely malformed IR is generated.

use approx_ir::analysis::{verify_region, Lint};
use approx_ir::{
    CmpOp, FBinOp, FUnOp, FuncId, Function, IBinOp, Inst, Interpreter, IrError, Label, Program,
    Reg, Value,
};
use proptest::prelude::*;

const N_REGS: u16 = 6;
const N_PARAMS: usize = 2;
const SCRATCH_WORDS: usize = 8;
const BUDGET: u64 = 20_000;

fn reg() -> impl Strategy<Value = Reg> {
    (0..N_REGS).prop_map(Reg)
}

/// One random instruction, decoded from an opcode plus shared operands.
/// Branch/jump targets may land past the end of the function — the
/// verifier must flag that, and the interpreter reports `MissingReturn`.
fn arb_inst() -> impl Strategy<Value = Inst> {
    (0i32..16, (reg(), reg(), reg()), -4.0f32..4.0, -4i32..12).prop_map(
        |(opcode, (r0, r1, r2), fimm, iimm)| {
            let target = Label(iimm.unsigned_abs() % 16);
            match opcode {
                0 => Inst::ConstF {
                    dst: r0,
                    value: fimm,
                },
                1 => Inst::ConstI {
                    dst: r0,
                    value: iimm,
                },
                2 => Inst::Mov { dst: r0, src: r1 },
                3 => Inst::FBin {
                    op: FBinOp::Add,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                4 => Inst::FBin {
                    op: FBinOp::Mul,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                5 => Inst::FUn {
                    op: FUnOp::Neg,
                    dst: r0,
                    a: r1,
                },
                6 => Inst::IBin {
                    op: IBinOp::Add,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                7 => Inst::CmpF {
                    op: CmpOp::Lt,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                8 => Inst::CmpI {
                    op: CmpOp::Lt,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                9 => Inst::IToF { dst: r0, src: r1 },
                10 => Inst::FToI { dst: r0, src: r1 },
                11 => Inst::Load {
                    dst: r0,
                    base: r1,
                    offset: iimm,
                },
                12 => Inst::Store {
                    src: r0,
                    base: r1,
                    offset: iimm,
                },
                13 => Inst::Branch { cond: r0, target },
                14 => Inst::Jump { target },
                _ => Inst::Ret { vals: vec![] },
            }
        },
    )
}

/// A one-function program from raw instructions, always ending in `ret`
/// so the empty instruction list is not trivially malformed.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_inst(), 0..14).prop_map(|mut insts| {
        insts.push(Inst::Ret { vals: vec![] });
        let f = Function::new_unchecked("gen", N_PARAMS, N_REGS as usize, vec![], insts);
        let mut p = Program::new();
        p.add_function(f);
        p
    })
}

/// The fault classes the verifier claims to rule out statically.
fn statically_detectable(err: &IrError) -> bool {
    matches!(
        err,
        IrError::TypeMismatch { .. }
            | IrError::OutOfBoundsMemory { .. }
            | IrError::MissingReturn(_)
    )
}

fn run(p: &Program, a: f32, b: f32) -> Result<Vec<Value>, IrError> {
    Interpreter::new(p)
        .with_memory(SCRATCH_WORDS)
        .with_budget(BUDGET)
        .run(FuncId(0), &[Value::F(a), Value::F(b)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Accepted programs never fault in a statically-detectable way.
    /// "Accepted" means no error-severity finding *and* no
    /// unproven-scratch-bounds info (addresses the verifier had to defer
    /// to the interpreter's dynamic check).
    #[test]
    fn accepted_programs_do_not_fault(
        p in arb_program(),
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        let report = verify_region(&p, 0, SCRATCH_WORDS);
        let accepted = !report.has_errors()
            && report
                .diagnostics()
                .iter()
                .all(|d| d.lint != Lint::UnprovenScratchBounds);
        if !accepted {
            return Ok(());
        }
        if let Err(e) = run(&p, a, b) {
            prop_assert!(
                !statically_detectable(&e),
                "verifier accepted a program that faults with {e}"
            );
        }
    }

    /// Programs that fault in a statically-detectable way are never
    /// reported clean.
    #[test]
    fn faulting_programs_are_flagged(
        p in arb_program(),
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        let Err(e) = run(&p, a, b) else { return Ok(()) };
        if !statically_detectable(&e) {
            return Ok(());
        }
        let report = verify_region(&p, 0, SCRATCH_WORDS);
        prop_assert!(
            !report.is_clean(),
            "interpreter faulted with {e} but the verifier found nothing"
        );
    }
}

//! Executable soundness of the interval analysis on random programs.
//!
//! [`run_checked`] mirrors the interpreter instruction for instruction
//! and asserts, at every register read and write, that the concrete
//! value lies inside the interval the analysis inferred for that program
//! point — the soundness theorem as a runtime check. Driving it with
//! randomly generated (frequently malformed) programs and cross-
//! validating the result against the real `Interpreter` covers both
//! directions: the analysis never excludes a reachable concrete value,
//! and the checked mirror faithfully reproduces interpreter semantics
//! (including faults).
//!
//! Programs are assembled from raw instruction lists (bypassing the
//! builder's invariants) so uninitialized reads, wild branches, and
//! type-confused arithmetic are all exercised.

use approx_ir::analysis::{run_checked, AbsValue, FloatInterval};
use approx_ir::{
    CmpOp, FBinOp, FUnOp, FuncId, Function, IBinOp, Inst, Interpreter, Label, Program, Reg, Value,
};
use proptest::prelude::*;

const N_REGS: u16 = 6;
const N_PARAMS: usize = 2;
const SCRATCH_WORDS: usize = 8;
const BUDGET: u64 = 20_000;

fn reg() -> impl Strategy<Value = Reg> {
    (0..N_REGS).prop_map(Reg)
}

/// One random instruction. Mirrors the opcode mix of the verifier
/// proptests, with subtraction and multiplication added so widening at
/// loop heads sees both growth directions.
fn arb_inst() -> impl Strategy<Value = Inst> {
    (0i32..18, (reg(), reg(), reg()), -4.0f32..4.0, -4i32..12).prop_map(
        |(opcode, (r0, r1, r2), fimm, iimm)| {
            let target = Label(iimm.unsigned_abs() % 16);
            match opcode {
                0 => Inst::ConstF {
                    dst: r0,
                    value: fimm,
                },
                1 => Inst::ConstI {
                    dst: r0,
                    value: iimm,
                },
                2 => Inst::Mov { dst: r0, src: r1 },
                3 => Inst::FBin {
                    op: FBinOp::Add,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                4 => Inst::FBin {
                    op: FBinOp::Mul,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                5 => Inst::FUn {
                    op: FUnOp::Neg,
                    dst: r0,
                    a: r1,
                },
                6 => Inst::IBin {
                    op: IBinOp::Add,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                7 => Inst::IBin {
                    op: IBinOp::Sub,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                8 => Inst::IBin {
                    op: IBinOp::Mul,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                9 => Inst::CmpF {
                    op: CmpOp::Lt,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                10 => Inst::CmpI {
                    op: CmpOp::Lt,
                    dst: r0,
                    a: r1,
                    b: r2,
                },
                11 => Inst::IToF { dst: r0, src: r1 },
                12 => Inst::FToI { dst: r0, src: r1 },
                13 => Inst::Load {
                    dst: r0,
                    base: r1,
                    offset: iimm,
                },
                14 => Inst::Store {
                    src: r0,
                    base: r1,
                    offset: iimm,
                },
                15 => Inst::Branch { cond: r0, target },
                16 => Inst::Jump { target },
                _ => Inst::Ret { vals: vec![] },
            }
        },
    )
}

/// A one-function program from raw instructions, always ending in `ret`
/// so the empty instruction list is not trivially malformed.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_inst(), 0..14).prop_map(|mut insts| {
        insts.push(Inst::Ret { vals: vec![] });
        let f = Function::new_unchecked("gen", N_PARAMS, N_REGS as usize, vec![], insts);
        let mut p = Program::new();
        p.add_function(f);
        p
    })
}

fn run_real(p: &Program, args: &[Value]) -> Result<Vec<Value>, approx_ir::IrError> {
    Interpreter::new(p)
        .with_memory(SCRATCH_WORDS)
        .with_budget(BUDGET)
        .run(FuncId(0), args)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// With ⊤-float parameters, every concrete execution — including
    /// faulting ones — stays inside the inferred intervals, and the
    /// checked mirror agrees with the interpreter bit for bit.
    /// `run_checked` panics on any containment violation, so the whole
    /// property is "does not panic, and results match".
    #[test]
    fn random_programs_stay_inside_their_intervals(
        p in arb_program(),
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        let args = [Value::F(a), Value::F(b)];
        let params = vec![AbsValue::top_float(); N_PARAMS];
        let checked = run_checked(&p, FuncId(0), &args, SCRATCH_WORDS, BUDGET, &params);
        prop_assert_eq!(checked, run_real(&p, &args));
    }

    /// Declaring the true input range tightens the analysis but must
    /// never break soundness: the same executions stay inside the
    /// narrower intervals.
    #[test]
    fn declared_input_ranges_stay_sound(
        p in arb_program(),
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        let args = [Value::F(a), Value::F(b)];
        let range = AbsValue::float(FloatInterval {
            lo: -2.0,
            hi: 2.0,
            nan: false,
        });
        let params = vec![range; N_PARAMS];
        let checked = run_checked(&p, FuncId(0), &args, SCRATCH_WORDS, BUDGET, &params);
        prop_assert_eq!(checked, run_real(&p, &args));
    }
}

//! Degenerate control-flow shapes against the whole dataflow stack.
//!
//! The analyses (CFG recovery, dominators, liveness, interval analysis)
//! iterate to fixpoints keyed on block structure; the shapes most likely
//! to break them are the boring-looking ones — a single block, blocks no
//! path reaches, a block that is its own successor, and a loop whose
//! body never executes. Each test pins the expected result on one such
//! shape so a solver regression fails here instead of deep inside a
//! benchmark run.

use approx_ir::analysis::{verify_region, AbsValue, Cfg, Dominators, IntervalAnalysis, Liveness};
use approx_ir::{CmpOp, FBinOp, Function, IBinOp, Inst, Label, Program, Reg, Value};

fn single_function(f: Function) -> Program {
    let mut p = Program::new();
    p.add_function(f);
    p
}

fn top_params(f: &Function) -> Vec<AbsValue> {
    vec![AbsValue::top_float(); f.n_params()]
}

#[test]
fn single_block_function() {
    // One straight-line block: out = x + x.
    let f = Function::new_unchecked(
        "one",
        1,
        2,
        vec![Reg(1)],
        vec![
            Inst::FBin {
                op: FBinOp::Add,
                dst: Reg(1),
                a: Reg(0),
                b: Reg(0),
            },
            Inst::Ret { vals: vec![Reg(1)] },
        ],
    );
    let cfg = Cfg::build(&f);
    assert_eq!(cfg.len(), 1);
    assert!(cfg.is_reachable(0));

    let dom = Dominators::compute(&cfg);
    assert!(dom.dominates(0, 0), "a block dominates itself");

    let live = Liveness::compute(&f, &cfg);
    assert!(
        !live.live_out(0).contains(1),
        "nothing is live out of the exit block"
    );

    let ia = IntervalAnalysis::of_function(&f, &top_params(&f));
    assert!(ia.reachable(0) && ia.reachable(1));
    assert!(ia.value_after(0, Reg(1)).contains(Value::F(3.0)));
    assert_eq!(ia.passes(), 1, "a DAG needs exactly one solver pass");
}

#[test]
fn unreachable_block_is_bottom_everywhere() {
    // Instruction 1 sits between a jump and its target: no path reaches
    // it.
    let f = Function::new_unchecked(
        "skip",
        1,
        2,
        vec![],
        vec![
            Inst::Jump { target: Label(2) },
            Inst::ConstI {
                dst: Reg(1),
                value: 7,
            },
            Inst::Ret { vals: vec![] },
        ],
    );
    let cfg = Cfg::build(&f);
    let dead = cfg.block_of(1);
    assert!(!cfg.is_reachable(dead));

    let dom = Dominators::compute(&cfg);
    assert_eq!(dom.idom(dead), None, "unreachable blocks have no idom");
    assert!(!dom.dominates(dead, cfg.block_of(2)));

    let ia = IntervalAnalysis::of_function(&f, &top_params(&f));
    assert!(ia.reachable(0) && ia.reachable(2));
    assert!(!ia.reachable(1));
    // An unreachable definition admits no value at all.
    assert!(!ia.value_after(1, Reg(1)).contains(Value::I(7)));
}

#[test]
fn self_loop_widens_and_terminates() {
    // i = i + 1 forever: the tightest inductive invariant is unbounded
    // above, so only widening lets the solver terminate. The function
    // never returns — the verifier must still finish and flag it.
    let f = Function::new_unchecked(
        "spin",
        0,
        2,
        vec![],
        vec![
            Inst::ConstI {
                dst: Reg(1),
                value: 1,
            },
            Inst::IBin {
                op: IBinOp::Add,
                dst: Reg(0),
                a: Reg(0),
                b: Reg(1),
            },
            Inst::Jump { target: Label(1) },
        ],
    );
    let cfg = Cfg::build(&f);
    let body = cfg.block_of(1);
    let dom = Dominators::compute(&cfg);
    assert!(dom.dominates(body, body));

    let ia = IntervalAnalysis::of_function(&f, &[]);
    assert!(
        ia.passes() < 64,
        "widening must terminate quickly, took {} passes",
        ia.passes()
    );
    // Soundness across widening: any later iteration count is admitted.
    let at_add = ia.value_before(1, Reg(0));
    assert!(at_add.contains(Value::I(0)));
    assert!(at_add.contains(Value::I(1_000_000)));

    let report = verify_region(&single_function(f), 0, 0);
    assert!(report.has_errors(), "an infinite self-loop must be flagged");
}

#[test]
fn zero_trip_loop_body_is_unreachable() {
    // for (i = 0; i < 0; i++) {} — the branch condition is constantly
    // false, so the analysis proves the body dead and the loop headers
    // never spin.
    let f = Function::new_unchecked(
        "zero_trip",
        0,
        4,
        vec![],
        vec![
            Inst::ConstI {
                dst: Reg(0),
                value: 0,
            }, // i
            Inst::ConstI {
                dst: Reg(1),
                value: 0,
            }, // n
            Inst::CmpI {
                op: CmpOp::Lt,
                dst: Reg(2),
                a: Reg(0),
                b: Reg(1),
            },
            Inst::Branch {
                cond: Reg(2),
                target: Label(5),
            },
            Inst::Ret { vals: vec![] },
            // Loop body + latch, entered zero times.
            Inst::IBin {
                op: IBinOp::Add,
                dst: Reg(0),
                a: Reg(0),
                b: Reg(1),
            },
            Inst::Jump { target: Label(2) },
        ],
    );
    let ia = IntervalAnalysis::of_function(&f, &[]);
    assert!(ia.reachable(4), "the exit is reachable");
    assert!(!ia.reachable(5), "the body must be proven dead");
    assert!(!ia.reachable(6));
    // The condition is exactly zero at the branch.
    let cond = ia.value_before(3, Reg(2));
    assert!(cond.contains(Value::I(0)));
    assert!(!cond.contains(Value::I(1)));

    // CFG-level reachability agrees with the interval analysis only up
    // to branch-condition knowledge: structurally the body *is* a
    // successor, which is exactly why both layers need coverage.
    let cfg = Cfg::build(&f);
    assert!(cfg.is_reachable(cfg.block_of(5)));
}

#[test]
fn empty_scratch_model_is_skipped_gracefully() {
    // A region analysis with zero scratch words must not build a memory
    // model (and must not panic on loads).
    let f = Function::new_unchecked(
        "noscratch",
        1,
        2,
        vec![Reg(0)],
        vec![Inst::Ret { vals: vec![Reg(0)] }],
    );
    let p = single_function(f);
    let f = p.function_by_index(0).unwrap();
    let ia = IntervalAnalysis::of_region(&p, f, &top_params(f), 0);
    assert!(ia.reachable(0));
}

//! An imperative register IR and tracing interpreter for approximable code.
//!
//! The MICRO 2012 Parrot paper transforms regions of *C* code, compiled with
//! GCC and executed on the MARSSx86 cycle-accurate simulator. This crate is
//! the reproduction's substitute for that toolchain: candidate regions (and
//! the application glue around them) are written in a small register-based
//! imperative IR whose operation classes map one-to-one onto the x86-64
//! instruction mix the paper counts. `sin`, `cos`, and `sqrt` are single IR
//! operations standing in for libm calls, which matches the paper's note
//! that its instruction statistics "do not include the statistics of the
//! standard library functions".
//!
//! The [`Interpreter`] executes a [`Program`] and simultaneously emits a
//! dynamic instruction [`trace`](TraceEvent) consumed by the `uarch`
//! cycle-level core model, so functional results and timing derive from the
//! same execution.
//!
//! # Example
//!
//! ```
//! use approx_ir::{FunctionBuilder, Program, Interpreter, Value};
//!
//! // f(a, b) = sqrt(a*a + b*b)
//! let mut b = FunctionBuilder::new("hypot", 2);
//! let (a, x) = (b.param(0), b.param(1));
//! let aa = b.fmul(a, a);
//! let xx = b.fmul(x, x);
//! let sum = b.fadd(aa, xx);
//! let r = b.fsqrt(sum);
//! b.ret(&[r]);
//!
//! let mut program = Program::new();
//! let f = program.add_function(b.build()?);
//! let out = Interpreter::new(&program).run(f, &[Value::F(3.0), Value::F(4.0)])?;
//! assert_eq!(out[0].as_f32()?, 5.0);
//! # Ok::<(), approx_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
mod counts;
mod display;
mod error;
mod func;
mod inst;
mod interp;
pub mod opt;
mod profile;
mod program;
mod trace;

pub use builder::FunctionBuilder;
pub use counts::{static_counts, StaticCounts};
pub use error::IrError;
pub use func::Function;
pub use inst::{CmpOp, FBinOp, FUnOp, IBinOp, Inst, Label, Reg};
pub use interp::{Interpreter, NpuPort, RunOutcome, Value};
pub use profile::Profile;
pub use program::{FuncId, Program};
pub use trace::{
    BranchInfo, CountingSink, MemAccess, NullSink, OpClass, TraceEvent, TraceSink, VecSink,
};

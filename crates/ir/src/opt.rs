//! Simple intra-function optimizations.
//!
//! The builder API encourages emitting one constant per use, which is
//! faithful to unoptimized codegen but inflates generated functions (the
//! software-NN replacement and config loaders especially). This module
//! provides the two classic clean-up passes a real compiler would run
//! before counting a region's instructions:
//!
//! * [`fold_constants`] — evaluates integer/float operations whose
//!   operands are known constants, and rewires consumers;
//! * [`eliminate_dead_code`] — removes instructions whose results are
//!   never used and have no side effects.
//!
//! Both passes are conservative around control flow: any register written
//! on more than one path (or inside a loop body) is treated as unknown.

use crate::{FBinOp, FUnOp, Function, IBinOp, Inst, Label, Reg};
use std::collections::{HashMap, HashSet};

/// A known compile-time value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Known {
    F(f32),
    I(i32),
}

/// Returns a copy of `f` with constant-computable instructions replaced
/// by constant loads.
///
/// Only registers written exactly once by a straight-line-reachable
/// instruction are tracked, so values merged across branches or mutated
/// in loops are never folded.
pub fn fold_constants(f: &Function) -> Function {
    // Registers written more than once are not SSA-like: exclude them.
    let mut write_counts: HashMap<u16, usize> = HashMap::new();
    for inst in f.insts() {
        if let Some(dst) = dst_of(inst) {
            *write_counts.entry(dst.0).or_insert(0) += 1;
        }
    }
    // Instructions at or after any branch target may execute under
    // merged control flow; constants defined before the first label are
    // still safe to use anywhere, so we simply stop *recording* new
    // constants once control flow begins, and stop folding instructions
    // that are branch targets themselves.
    let mut targets: HashSet<usize> = HashSet::new();
    for inst in f.insts() {
        match inst {
            Inst::Branch { target, .. } | Inst::Jump { target } => {
                targets.insert(target.0 as usize);
            }
            _ => {}
        }
    }

    let mut known: HashMap<u16, Known> = HashMap::new();
    let mut control_flow_seen = false;
    let mut out: Vec<Inst> = Vec::with_capacity(f.len());
    for (idx, inst) in f.insts().iter().enumerate() {
        if targets.contains(&idx) {
            control_flow_seen = true;
        }
        let single = |r: Reg| write_counts.get(&r.0) == Some(&1);
        let getf = |known: &HashMap<u16, Known>, r: Reg| match known.get(&r.0) {
            Some(Known::F(v)) => Some(*v),
            _ => None,
        };
        let geti = |known: &HashMap<u16, Known>, r: Reg| match known.get(&r.0) {
            Some(Known::I(v)) => Some(*v),
            _ => None,
        };
        let record = |known: &mut HashMap<u16, Known>, dst: Reg, v: Known| {
            if !control_flow_seen && single(dst) {
                known.insert(dst.0, v);
            }
        };

        let folded: Inst = match inst {
            Inst::ConstF { dst, value } => {
                record(&mut known, *dst, Known::F(*value));
                inst.clone()
            }
            Inst::ConstI { dst, value } => {
                record(&mut known, *dst, Known::I(*value));
                inst.clone()
            }
            Inst::Mov { dst, src } => match known.get(&src.0).copied() {
                Some(Known::F(v)) if single(*dst) => {
                    record(&mut known, *dst, Known::F(v));
                    Inst::ConstF {
                        dst: *dst,
                        value: v,
                    }
                }
                Some(Known::I(v)) if single(*dst) => {
                    record(&mut known, *dst, Known::I(v));
                    Inst::ConstI {
                        dst: *dst,
                        value: v,
                    }
                }
                _ => inst.clone(),
            },
            Inst::FBin { op, dst, a, b } => match (getf(&known, *a), getf(&known, *b)) {
                (Some(x), Some(y)) if single(*dst) && *op != FBinOp::Atan2 => {
                    let v = match op {
                        FBinOp::Add => x + y,
                        FBinOp::Sub => x - y,
                        FBinOp::Mul => x * y,
                        FBinOp::Div => x / y,
                        FBinOp::Min => x.min(y),
                        FBinOp::Max => x.max(y),
                        FBinOp::Atan2 => unreachable!(),
                    };
                    record(&mut known, *dst, Known::F(v));
                    Inst::ConstF {
                        dst: *dst,
                        value: v,
                    }
                }
                _ => inst.clone(),
            },
            Inst::FUn { op, dst, a } => match getf(&known, *a) {
                Some(x) if single(*dst) && matches!(op, FUnOp::Neg | FUnOp::Abs | FUnOp::Floor) => {
                    let v = match op {
                        FUnOp::Neg => -x,
                        FUnOp::Abs => x.abs(),
                        FUnOp::Floor => x.floor(),
                        _ => unreachable!(),
                    };
                    record(&mut known, *dst, Known::F(v));
                    Inst::ConstF {
                        dst: *dst,
                        value: v,
                    }
                }
                _ => inst.clone(),
            },
            Inst::IBin { op, dst, a, b } => match (geti(&known, *a), geti(&known, *b)) {
                (Some(x), Some(y)) if single(*dst) => {
                    let v = match op {
                        IBinOp::Add => x.wrapping_add(y),
                        IBinOp::Sub => x.wrapping_sub(y),
                        IBinOp::Mul => x.wrapping_mul(y),
                        IBinOp::Shl => x.wrapping_shl(y as u32),
                        IBinOp::Shr => x.wrapping_shr(y as u32),
                        IBinOp::And => x & y,
                        IBinOp::Or => x | y,
                        IBinOp::Rem => {
                            if y == 0 {
                                0
                            } else {
                                x.wrapping_rem(y)
                            }
                        }
                    };
                    record(&mut known, *dst, Known::I(v));
                    Inst::ConstI {
                        dst: *dst,
                        value: v,
                    }
                }
                _ => inst.clone(),
            },
            Inst::CmpF { op, dst, a, b } => match (getf(&known, *a), getf(&known, *b)) {
                (Some(x), Some(y)) if single(*dst) => {
                    let v = op.eval_f32(x, y) as i32;
                    record(&mut known, *dst, Known::I(v));
                    Inst::ConstI {
                        dst: *dst,
                        value: v,
                    }
                }
                _ => inst.clone(),
            },
            Inst::CmpI { op, dst, a, b } => match (geti(&known, *a), geti(&known, *b)) {
                (Some(x), Some(y)) if single(*dst) => {
                    let v = op.eval_i32(x, y) as i32;
                    record(&mut known, *dst, Known::I(v));
                    Inst::ConstI {
                        dst: *dst,
                        value: v,
                    }
                }
                _ => inst.clone(),
            },
            Inst::IToF { dst, src } => match geti(&known, *src) {
                Some(v) if single(*dst) => {
                    record(&mut known, *dst, Known::F(v as f32));
                    Inst::ConstF {
                        dst: *dst,
                        value: v as f32,
                    }
                }
                _ => inst.clone(),
            },
            _ => inst.clone(),
        };
        out.push(folded);
    }
    Function::from_parts(
        f.name().to_string(),
        f.n_params(),
        f.n_regs(),
        f.rets().to_vec(),
        out,
    )
}

/// Returns a copy of `f` with side-effect-free instructions whose results
/// are never read removed. Instruction indices shift, so branch targets
/// are remapped.
pub fn eliminate_dead_code(f: &Function) -> Function {
    // Liveness: a register is live if any instruction reads it (across
    // the whole function — conservative but sound with loops).
    let mut live: HashSet<u16> = HashSet::new();
    for inst in f.insts() {
        for r in srcs_of(inst) {
            live.insert(r.0);
        }
    }

    // Decide survival per instruction.
    let keep: Vec<bool> = f
        .insts()
        .iter()
        .map(|inst| match inst {
            Inst::ConstF { dst, .. }
            | Inst::ConstI { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::FBin { dst, .. }
            | Inst::FUn { dst, .. }
            | Inst::IBin { dst, .. }
            | Inst::CmpF { dst, .. }
            | Inst::CmpI { dst, .. }
            | Inst::IToF { dst, .. }
            | Inst::FToI { dst, .. }
            | Inst::BitsToF { dst, .. }
            | Inst::FToBits { dst, .. } => live.contains(&dst.0),
            // Loads have no side effects but can fault; keep them only if
            // used (a real compiler would need a no-trap proof — our IR
            // loads are the only faulting ops, so dropping dead ones only
            // removes possible traps, never adds them; still, be
            // conservative and keep them).
            Inst::Load { .. } => true,
            _ => true, // stores, control flow, calls, queue ops
        })
        .collect();

    // Remap old indices to new ones.
    let mut new_index = vec![0u32; f.len() + 1];
    let mut n = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        new_index[i] = n;
        if k {
            n += 1;
        }
    }
    new_index[f.len()] = n;
    // A branch to a removed instruction must land on the next surviving
    // one; `new_index` already encodes that (the removed slot maps to the
    // index the following instruction will take).

    let mut out = Vec::with_capacity(n as usize);
    for (i, inst) in f.insts().iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let remap = |t: &Label| Label(new_index[t.0 as usize]);
        out.push(match inst {
            Inst::Branch { cond, target } => Inst::Branch {
                cond: *cond,
                target: remap(target),
            },
            Inst::Jump { target } => Inst::Jump {
                target: remap(target),
            },
            other => other.clone(),
        });
    }
    Function::from_parts(
        f.name().to_string(),
        f.n_params(),
        f.n_regs(),
        f.rets().to_vec(),
        out,
    )
}

/// Folds constants, then removes the dead definitions folding exposed,
/// iterating to a fixed point (bounded).
pub fn optimize(f: &Function) -> Function {
    let mut current = f.clone();
    for _ in 0..8 {
        let next = eliminate_dead_code(&fold_constants(&current));
        if next == current {
            break;
        }
        current = next;
    }
    current
}

fn dst_of(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::ConstF { dst, .. }
        | Inst::ConstI { dst, .. }
        | Inst::Mov { dst, .. }
        | Inst::FBin { dst, .. }
        | Inst::FUn { dst, .. }
        | Inst::IBin { dst, .. }
        | Inst::CmpF { dst, .. }
        | Inst::CmpI { dst, .. }
        | Inst::IToF { dst, .. }
        | Inst::FToI { dst, .. }
        | Inst::BitsToF { dst, .. }
        | Inst::FToBits { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::DeqD { dst }
        | Inst::DeqC { dst } => Some(*dst),
        _ => None,
    }
}

fn srcs_of(inst: &Inst) -> Vec<Reg> {
    match inst {
        Inst::Mov { src, .. }
        | Inst::IToF { src, .. }
        | Inst::FToI { src, .. }
        | Inst::BitsToF { src, .. }
        | Inst::FToBits { src, .. } => vec![*src],
        Inst::FBin { a, b, .. }
        | Inst::IBin { a, b, .. }
        | Inst::CmpF { a, b, .. }
        | Inst::CmpI { a, b, .. } => vec![*a, *b],
        Inst::FUn { a, .. } => vec![*a],
        Inst::Load { base, .. } => vec![*base],
        Inst::Store { src, base, .. } => vec![*src, *base],
        Inst::Branch { cond, .. } => vec![*cond],
        Inst::Call { args, .. } => args.clone(),
        Inst::Ret { vals } => vals.clone(),
        Inst::EnqD { src } | Inst::EnqC { src } => vec![*src],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Interpreter, Program, Value};

    fn run(f: Function, args: &[Value]) -> Vec<Value> {
        let mut p = Program::new();
        let id = p.add_function(f);
        Interpreter::new(&p).with_memory(64).run(id, args).unwrap()
    }

    #[test]
    fn folds_straight_line_arithmetic() {
        // (2 + 3) * 4 with no inputs: should fold to a single constant.
        let mut b = FunctionBuilder::new("cf", 0);
        let two = b.constf(2.0);
        let three = b.constf(3.0);
        let five = b.fadd(two, three);
        let four = b.constf(4.0);
        let twenty = b.fmul(five, four);
        b.ret(&[twenty]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert!(opt.len() < f.len(), "{} -> {}", f.len(), opt.len());
        // Only the final constant and the ret survive.
        assert_eq!(opt.len(), 2);
        assert_eq!(run(opt, &[])[0].as_f32().unwrap(), 20.0);
    }

    #[test]
    fn does_not_fold_values_depending_on_params() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.param(0);
        let two = b.constf(2.0);
        let y = b.fmul(x, two);
        b.ret(&[y]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert_eq!(run(opt, &[Value::F(3.0)])[0].as_f32().unwrap(), 6.0);
    }

    #[test]
    fn preserves_loop_semantics() {
        use crate::CmpOp;
        let mut b = FunctionBuilder::new("loop", 1);
        let n = b.param(0);
        let acc = b.consti(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top);
        let fin = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(fin, done);
        b.iadd_into(acc, i);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(done);
        b.ret(&[acc]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        // sum 0..10 = 45
        assert_eq!(run(opt.clone(), &[Value::I(10)])[0].as_i32().unwrap(), 45);
        assert_eq!(run(opt, &[Value::I(0)])[0].as_i32().unwrap(), 0);
    }

    #[test]
    fn dce_removes_unused_results() {
        let mut b = FunctionBuilder::new("dce", 1);
        let x = b.param(0);
        let _unused = b.fmul(x, x); // dead
        let y = b.fadd(x, x);
        b.ret(&[y]);
        let f = b.build().unwrap();
        let opt = eliminate_dead_code(&f);
        assert_eq!(opt.len(), f.len() - 1);
        assert_eq!(run(opt, &[Value::F(2.0)])[0].as_f32().unwrap(), 4.0);
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut b = FunctionBuilder::new("fx", 1);
        let addr = b.param(0);
        let v = b.constf(7.0);
        b.store(v, addr, 0);
        b.enq_d(v);
        let out = b.deq_d();
        b.ret(&[out]);
        let f = b.build().unwrap();
        let opt = eliminate_dead_code(&f);
        assert_eq!(opt.len(), f.len());
    }

    #[test]
    fn branch_targets_survive_dce_remapping() {
        use crate::CmpOp;
        let mut b = FunctionBuilder::new("br", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let _dead = b.fmul(zero, zero); // dead, before the branch target
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let skip = b.new_label();
        b.branch_if(c, skip);
        let pos = b.constf(1.0);
        b.ret(&[pos]);
        b.bind(skip);
        let neg = b.constf(-1.0);
        b.ret(&[neg]);
        let f = b.build().unwrap();
        let opt = eliminate_dead_code(&f);
        assert!(opt.len() < f.len());
        assert_eq!(run(opt.clone(), &[Value::F(5.0)])[0].as_f32().unwrap(), 1.0);
        assert_eq!(run(opt, &[Value::F(-5.0)])[0].as_f32().unwrap(), -1.0);
    }

    #[test]
    fn optimizing_generated_software_nn_shrinks_it() {
        // The codegen'd software NN is constant-heavy; optimize() must
        // shrink it without changing behaviour. (Constructed here via the
        // same builder patterns codegen uses.)
        let mut b = FunctionBuilder::new("gen", 2);
        let (x, y) = (b.param(0), b.param(1));
        // Normalization-style code: (x - lo) * inv with constant lo/inv.
        let lo = b.constf(0.0);
        let inv = b.constf(1.0);
        let d = b.fsub(x, lo);
        let s = b.fmul(d, inv);
        let lo2 = b.constf(0.0);
        let inv2 = b.constf(1.0);
        let d2 = b.fsub(y, lo2);
        let s2 = b.fmul(d2, inv2);
        let sum = b.fadd(s, s2);
        b.ret(&[sum]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        let a = run(f, &[Value::F(0.3), Value::F(0.4)])[0].as_f32().unwrap();
        let o = run(opt, &[Value::F(0.3), Value::F(0.4)])[0]
            .as_f32()
            .unwrap();
        assert_eq!(a, o);
    }
}

//! Intra-function optimizations.
//!
//! The builder API encourages emitting one constant per use, which is
//! faithful to unoptimized codegen but inflates generated functions (the
//! software-NN replacement and config loaders especially). This module
//! provides the two classic clean-up passes a real compiler would run
//! before counting a region's instructions:
//!
//! * [`fold_constants`] — sparse conditional-style constant propagation
//!   over the CFG: per-block constant environments meet at joins
//!   (intersection keeping agreeing values), so a register written the
//!   same constant on every path still folds, and constants defined after
//!   a join or carried around a loop propagate;
//! * [`eliminate_dead_code`] — per-point liveness from the backward
//!   dataflow in [`analysis::liveness`](crate::analysis::liveness):
//!   definitions no path ever reads are deleted (including overwritten
//!   ones), and unreachable blocks are dropped entirely;
//! * [`fold_branches`] — range-driven control-flow simplification from
//!   the interval analysis in [`analysis::interval`](crate::analysis::interval):
//!   a branch whose condition range excludes zero becomes an
//!   unconditional jump, and one whose condition is provably zero is
//!   deleted, turning its taken arm into dead code for DCE to drop.
//!
//! Earlier revisions of these passes were straight-line only — any
//! register written on more than one path, or any instruction past the
//! first branch target, was treated as unknown. The
//! [`analysis`](crate::analysis) CFG and liveness results removed that
//! over-approximation.

use crate::analysis::{defs_of, is_pure, uses_of, AbsValue, Cfg, IntervalAnalysis, Liveness};
use crate::{FBinOp, FUnOp, Function, IBinOp, Inst, Label, Reg};
use std::collections::HashMap;

/// A known compile-time value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Known {
    F(f32),
    I(i32),
}

/// Per-block constant environment: register → known value. Absent keys
/// are "not constant"; an unvisited block is TOP (every value possible,
/// represented as `None` at the block level).
type ConstEnv = HashMap<u16, Known>;

/// Applies one instruction to the constant environment, returning the
/// replacement instruction if the result folds.
fn transfer(inst: &Inst, env: &mut ConstEnv) -> Option<Inst> {
    let getf = |env: &ConstEnv, r: Reg| match env.get(&r.0) {
        Some(Known::F(v)) => Some(*v),
        _ => None,
    };
    let geti = |env: &ConstEnv, r: Reg| match env.get(&r.0) {
        Some(Known::I(v)) => Some(*v),
        _ => None,
    };

    let folded: Option<(Reg, Known)> = match inst {
        Inst::ConstF { dst, value } => Some((*dst, Known::F(*value))),
        Inst::ConstI { dst, value } => Some((*dst, Known::I(*value))),
        Inst::Mov { dst, src } => env.get(&src.0).copied().map(|v| (*dst, v)),
        Inst::FBin { op, dst, a, b } if *op != FBinOp::Atan2 => {
            match (getf(env, *a), getf(env, *b)) {
                (Some(x), Some(y)) => {
                    let v = match op {
                        FBinOp::Add => x + y,
                        FBinOp::Sub => x - y,
                        FBinOp::Mul => x * y,
                        FBinOp::Div => x / y,
                        FBinOp::Min => x.min(y),
                        FBinOp::Max => x.max(y),
                        FBinOp::Atan2 => unreachable!(),
                    };
                    Some((*dst, Known::F(v)))
                }
                _ => None,
            }
        }
        Inst::FUn { op, dst, a } if matches!(op, FUnOp::Neg | FUnOp::Abs | FUnOp::Floor) => {
            getf(env, *a).map(|x| {
                let v = match op {
                    FUnOp::Neg => -x,
                    FUnOp::Abs => x.abs(),
                    FUnOp::Floor => x.floor(),
                    _ => unreachable!(),
                };
                (*dst, Known::F(v))
            })
        }
        Inst::IBin { op, dst, a, b } => match (geti(env, *a), geti(env, *b)) {
            (Some(x), Some(y)) => {
                let v = match op {
                    IBinOp::Add => x.wrapping_add(y),
                    IBinOp::Sub => x.wrapping_sub(y),
                    IBinOp::Mul => x.wrapping_mul(y),
                    IBinOp::Shl => x.wrapping_shl(y as u32),
                    IBinOp::Shr => x.wrapping_shr(y as u32),
                    IBinOp::And => x & y,
                    IBinOp::Or => x | y,
                    IBinOp::Rem => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                };
                Some((*dst, Known::I(v)))
            }
            _ => None,
        },
        Inst::CmpF { op, dst, a, b } => match (getf(env, *a), getf(env, *b)) {
            (Some(x), Some(y)) => Some((*dst, Known::I(op.eval_f32(x, y) as i32))),
            _ => None,
        },
        Inst::CmpI { op, dst, a, b } => match (geti(env, *a), geti(env, *b)) {
            (Some(x), Some(y)) => Some((*dst, Known::I(op.eval_i32(x, y) as i32))),
            _ => None,
        },
        Inst::IToF { dst, src } => geti(env, *src).map(|v| (*dst, Known::F(v as f32))),
        Inst::FToI { dst, src } => getf(env, *src).map(|v| (*dst, Known::I(v as i32))),
        Inst::FToBits { dst, src } => getf(env, *src).map(|v| (*dst, Known::I(v.to_bits() as i32))),
        Inst::BitsToF { dst, src } => {
            geti(env, *src).map(|v| (*dst, Known::F(f32::from_bits(v as u32))))
        }
        _ => None,
    };

    match folded {
        Some((dst, v)) => {
            env.insert(dst.0, v);
            match v {
                Known::F(value) => Some(Inst::ConstF { dst, value }),
                Known::I(value) => Some(Inst::ConstI { dst, value }),
            }
        }
        None => {
            // The instruction's results are not constant: kill its defs.
            for d in defs_of(inst) {
                env.remove(&d.0);
            }
            None
        }
    }
}

/// Intersection meet keeping only register/value pairs both environments
/// agree on. `NaN` constants never agree with themselves and drop out —
/// conservative and deterministic.
fn meet(into: &mut ConstEnv, other: &ConstEnv) -> bool {
    let before = into.len();
    into.retain(|r, v| other.get(r) == Some(v));
    into.len() != before
}

/// Returns a copy of `f` with constant-computable instructions replaced
/// by constant loads.
///
/// Flow-sensitive over the CFG: a per-block constant environment is
/// iterated to a fixpoint with intersection meet at joins. Registers
/// written on several paths fold when every path agrees on the value;
/// loop-carried mutation is killed by the back-edge meet.
pub fn fold_constants(f: &Function) -> Function {
    if f.is_empty() {
        return f.clone();
    }
    let cfg = Cfg::build(f);
    let nb = cfg.len();
    let mut in_envs: Vec<Option<ConstEnv>> = vec![None; nb];
    let entry = cfg.rpo()[0];
    in_envs[entry] = Some(ConstEnv::new());

    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let mut env = match &in_envs[b] {
                Some(e) => e.clone(),
                None => continue,
            };
            for i in cfg.blocks()[b].range() {
                transfer(&f.insts()[i], &mut env);
            }
            for &s in &cfg.blocks()[b].succs {
                if let Some(cur) = &mut in_envs[s] {
                    if meet(cur, &env) {
                        changed = true;
                    }
                } else {
                    in_envs[s] = Some(env.clone());
                    changed = true;
                }
            }
        }
    }

    // Rewrite with the converged environments. Unreachable blocks get an
    // empty environment (nothing folds there; DCE removes them anyway).
    let mut out: Vec<Inst> = f.insts().to_vec();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        let mut env = in_envs[b].clone().unwrap_or_default();
        for i in blk.range() {
            if let Some(replacement) = transfer(&f.insts()[i], &mut env) {
                out[i] = replacement;
            }
        }
    }
    Function::from_parts(
        f.name().to_string(),
        f.n_params(),
        f.n_regs(),
        f.rets().to_vec(),
        out,
    )
}

/// Returns a copy of `f` with dead instructions removed: side-effect-free
/// definitions no path reads (per-point liveness), and every instruction
/// in blocks unreachable from the entry. Instruction indices shift, so
/// branch targets are remapped.
pub fn eliminate_dead_code(f: &Function) -> Function {
    if f.is_empty() {
        return f.clone();
    }
    let cfg = Cfg::build(f);
    let liveness = Liveness::compute(f, &cfg);

    let mut keep = vec![true; f.len()];
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            for i in blk.range() {
                keep[i] = false;
            }
            continue;
        }
        // Walk the block backward tracking exact per-point liveness; a
        // pure definition that is dead right here is dead everywhere.
        let mut live = liveness.live_out(b).clone();
        for i in blk.range().rev() {
            let inst = &f.insts()[i];
            let defs = defs_of(inst);
            if is_pure(inst) && !defs.is_empty() && defs.iter().all(|d| !live.contains(d.0)) {
                keep[i] = false;
                continue;
            }
            for d in &defs {
                live.remove(d.0);
            }
            for u in uses_of(inst) {
                live.insert(u.0);
            }
        }
    }

    compact(f, &keep, f.insts())
}

/// Rebuilds `f` from `insts`, dropping slots where `keep` is false.
/// Instruction indices shift, so branch targets are remapped: a branch
/// to a removed instruction lands on the next surviving one.
fn compact(f: &Function, keep: &[bool], insts: &[Inst]) -> Function {
    let mut new_index = vec![0u32; f.len() + 1];
    let mut n = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        new_index[i] = n;
        if k {
            n += 1;
        }
    }
    new_index[f.len()] = n;

    let mut out = Vec::with_capacity(n as usize);
    for (i, inst) in insts.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let remap = |t: &Label| Label(new_index[(t.0 as usize).min(f.len())]);
        out.push(match inst {
            Inst::Branch { cond, target } => Inst::Branch {
                cond: *cond,
                target: remap(target),
            },
            Inst::Jump { target } => Inst::Jump {
                target: remap(target),
            },
            other => other.clone(),
        });
    }
    Function::from_parts(
        f.name().to_string(),
        f.n_params(),
        f.n_regs(),
        f.rets().to_vec(),
        out,
    )
}

/// Returns a copy of `f` with branches the interval analysis decides
/// statically simplified: a condition whose range excludes zero becomes
/// an unconditional [`Inst::Jump`]; a condition provably zero deletes
/// the branch (the fall-through is unconditional, and the taken arm
/// becomes unreachable for [`eliminate_dead_code`] to drop).
///
/// Parameters are assumed unconstrained (⊤), so every decision holds for
/// all inputs — the rewrite is exact, not approximate, and is
/// parity-tested against the unoptimized interpreter.
pub fn fold_branches(f: &Function) -> Function {
    if f.is_empty() {
        return f.clone();
    }
    let ia = IntervalAnalysis::of_function(f, &vec![AbsValue::Any; f.n_params()]);
    let mut keep = vec![true; f.len()];
    let mut out: Vec<Inst> = f.insts().to_vec();
    for (i, inst) in f.insts().iter().enumerate() {
        let Inst::Branch { cond, target } = inst else {
            continue;
        };
        if !ia.reachable(i) {
            continue;
        }
        let Some(cv) = ia.value_before(i, *cond).as_int() else {
            continue;
        };
        if cv.lo > 0 || cv.hi < 0 {
            out[i] = Inst::Jump { target: *target };
        } else if (cv.lo, cv.hi) == (0, 0) {
            keep[i] = false;
        }
    }
    compact(f, &keep, &out)
}

/// Folds constants, simplifies statically decided branches, then removes
/// the dead definitions and unreachable arms this exposed, iterating to
/// a fixed point (bounded).
pub fn optimize(f: &Function) -> Function {
    let mut current = f.clone();
    for _ in 0..8 {
        let next = eliminate_dead_code(&fold_branches(&fold_constants(&current)));
        if next == current {
            break;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Interpreter, Program, Value};

    fn run(f: Function, args: &[Value]) -> Vec<Value> {
        let mut p = Program::new();
        let id = p.add_function(f);
        Interpreter::new(&p).with_memory(64).run(id, args).unwrap()
    }

    #[test]
    fn folds_straight_line_arithmetic() {
        // (2 + 3) * 4 with no inputs: should fold to a single constant.
        let mut b = FunctionBuilder::new("cf", 0);
        let two = b.constf(2.0);
        let three = b.constf(3.0);
        let five = b.fadd(two, three);
        let four = b.constf(4.0);
        let twenty = b.fmul(five, four);
        b.ret(&[twenty]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert!(opt.len() < f.len(), "{} -> {}", f.len(), opt.len());
        // Only the final constant and the ret survive.
        assert_eq!(opt.len(), 2);
        assert_eq!(run(opt, &[])[0].as_f32().unwrap(), 20.0);
    }

    #[test]
    fn does_not_fold_values_depending_on_params() {
        let mut b = FunctionBuilder::new("p", 1);
        let x = b.param(0);
        let two = b.constf(2.0);
        let y = b.fmul(x, two);
        b.ret(&[y]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert_eq!(run(opt, &[Value::F(3.0)])[0].as_f32().unwrap(), 6.0);
    }

    #[test]
    fn preserves_loop_semantics() {
        use crate::CmpOp;
        let mut b = FunctionBuilder::new("loop", 1);
        let n = b.param(0);
        let acc = b.consti(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top);
        let fin = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(fin, done);
        b.iadd_into(acc, i);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(done);
        b.ret(&[acc]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        // sum 0..10 = 45
        assert_eq!(run(opt.clone(), &[Value::I(10)])[0].as_i32().unwrap(), 45);
        assert_eq!(run(opt, &[Value::I(0)])[0].as_i32().unwrap(), 0);
    }

    #[test]
    fn dce_removes_unused_results() {
        let mut b = FunctionBuilder::new("dce", 1);
        let x = b.param(0);
        let _unused = b.fmul(x, x); // dead
        let y = b.fadd(x, x);
        b.ret(&[y]);
        let f = b.build().unwrap();
        let opt = eliminate_dead_code(&f);
        assert_eq!(opt.len(), f.len() - 1);
        assert_eq!(run(opt, &[Value::F(2.0)])[0].as_f32().unwrap(), 4.0);
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut b = FunctionBuilder::new("fx", 1);
        let addr = b.param(0);
        let v = b.constf(7.0);
        b.store(v, addr, 0);
        b.enq_d(v);
        let out = b.deq_d();
        b.ret(&[out]);
        let f = b.build().unwrap();
        let opt = eliminate_dead_code(&f);
        assert_eq!(opt.len(), f.len());
    }

    #[test]
    fn branch_targets_survive_dce_remapping() {
        use crate::CmpOp;
        let mut b = FunctionBuilder::new("br", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let _dead = b.fmul(zero, zero); // dead, before the branch target
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let skip = b.new_label();
        b.branch_if(c, skip);
        let pos = b.constf(1.0);
        b.ret(&[pos]);
        b.bind(skip);
        let neg = b.constf(-1.0);
        b.ret(&[neg]);
        let f = b.build().unwrap();
        let opt = eliminate_dead_code(&f);
        assert!(opt.len() < f.len());
        assert_eq!(run(opt.clone(), &[Value::F(5.0)])[0].as_f32().unwrap(), 1.0);
        assert_eq!(run(opt, &[Value::F(-5.0)])[0].as_f32().unwrap(), -1.0);
    }

    #[test]
    fn optimizing_generated_software_nn_shrinks_it() {
        // The codegen'd software NN is constant-heavy; optimize() must
        // shrink it without changing behaviour. (Constructed here via the
        // same builder patterns codegen uses.)
        let mut b = FunctionBuilder::new("gen", 2);
        let (x, y) = (b.param(0), b.param(1));
        // Normalization-style code: (x - lo) * inv with constant lo/inv.
        let lo = b.constf(0.0);
        let inv = b.constf(1.0);
        let d = b.fsub(x, lo);
        let s = b.fmul(d, inv);
        let lo2 = b.constf(0.0);
        let inv2 = b.constf(1.0);
        let d2 = b.fsub(y, lo2);
        let s2 = b.fmul(d2, inv2);
        let sum = b.fadd(s, s2);
        b.ret(&[sum]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        let a = run(f, &[Value::F(0.3), Value::F(0.4)])[0].as_f32().unwrap();
        let o = run(opt, &[Value::F(0.3), Value::F(0.4)])[0]
            .as_f32()
            .unwrap();
        assert_eq!(a, o);
    }

    // ------------------------------------------------------------------
    // CFG-aware behaviour the straight-line passes could not deliver.
    // ------------------------------------------------------------------

    #[test]
    fn folds_register_written_same_constant_on_both_paths() {
        use crate::CmpOp;
        // r is written 2.0 on *both* arms of a diamond; the old pass
        // treated any multiply-written register as unknown. The meet
        // keeps agreeing values, so r*r after the join folds to 4.0.
        let mut b = FunctionBuilder::new("agree", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let other = b.new_label();
        let join = b.new_label();
        let r = b.reg();
        b.branch_if(c, other);
        b.emit(Inst::ConstF { dst: r, value: 2.0 });
        b.jump(join);
        b.bind(other);
        b.emit(Inst::ConstF { dst: r, value: 2.0 });
        b.bind(join);
        let sq = b.fmul(r, r);
        let out = b.fadd(sq, x);
        b.ret(&[out]);
        let f = b.build().unwrap();
        let folded = fold_constants(&f);
        let has_four = folded
            .insts()
            .iter()
            .any(|i| matches!(i, Inst::ConstF { dst, value } if *dst == sq && *value == 4.0));
        assert!(has_four, "{:?}", folded.insts());
        assert_eq!(run(folded, &[Value::F(1.0)])[0].as_f32().unwrap(), 5.0);
    }

    #[test]
    fn folds_constants_defined_after_a_join() {
        use crate::CmpOp;
        // The old pass stopped recording constants at the first branch
        // target; constants defined in post-join code now fold too.
        let mut b = FunctionBuilder::new("postjoin", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let join = b.new_label();
        b.branch_if(c, join);
        b.bind(join);
        let three = b.constf(3.0);
        let nine = b.fmul(three, three);
        let out = b.fadd(nine, x);
        b.ret(&[out]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert!(
            opt.insts()
                .iter()
                .any(|i| matches!(i, Inst::ConstF { value, .. } if *value == 9.0)),
            "{:?}",
            opt.insts()
        );
        // 3.0*3.0 folded away entirely: strictly fewer instructions.
        assert!(opt.len() < f.len());
        assert_eq!(run(opt, &[Value::F(1.0)])[0].as_f32().unwrap(), 10.0);
    }

    #[test]
    fn conflicting_paths_do_not_fold() {
        use crate::CmpOp;
        // r is 1.0 on one arm, 2.0 on the other: must NOT fold r+r.
        let mut b = FunctionBuilder::new("conflict", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let other = b.new_label();
        let join = b.new_label();
        let r = b.reg();
        b.branch_if(c, other);
        b.emit(Inst::ConstF { dst: r, value: 1.0 });
        b.jump(join);
        b.bind(other);
        b.emit(Inst::ConstF { dst: r, value: 2.0 });
        b.bind(join);
        let s = b.fadd(r, r);
        b.ret(&[s]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert_eq!(run(opt.clone(), &[Value::F(1.0)])[0].as_f32().unwrap(), 2.0);
        assert_eq!(run(opt, &[Value::F(-1.0)])[0].as_f32().unwrap(), 4.0);
    }

    #[test]
    fn range_proven_branch_becomes_jump_and_dead_arm_drops() {
        use crate::CmpOp;
        // (ftoi(x) & 7) < 16 always holds: the guard folds to a jump and
        // the error arm goes away, even though the condition depends on
        // the input. Bit-exact parity with the unoptimized function.
        let mut b = FunctionBuilder::new("rb", 1);
        let x = b.param(0);
        let xi = b.ftoi(x);
        let seven = b.consti(7);
        let m = b.iand(xi, seven);
        let sixteen = b.consti(16);
        let c = b.cmpi(CmpOp::Lt, m, sixteen);
        let ok = b.new_label();
        b.branch_if(c, ok);
        let neg = b.constf(-1.0);
        b.ret(&[neg]);
        b.bind(ok);
        let out = b.itof(m);
        b.ret(&[out]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert!(opt.len() < f.len(), "{:?}", opt.insts());
        assert!(
            !opt.insts().iter().any(|i| matches!(i, Inst::Branch { .. })),
            "{:?}",
            opt.insts()
        );
        for v in [-9.5f32, 0.0, 3.0, 6.99, 1e9, f32::NAN] {
            let a = run(f.clone(), &[Value::F(v)])[0].as_f32().unwrap();
            let o = run(opt.clone(), &[Value::F(v)])[0].as_f32().unwrap();
            assert_eq!(a.to_bits(), o.to_bits(), "input {v}");
        }
    }

    #[test]
    fn never_taken_branch_is_deleted_with_its_arm() {
        use crate::CmpOp;
        // (ftoi(x) & 7) > 100 is impossible: the branch and its taken
        // arm disappear entirely.
        let mut b = FunctionBuilder::new("nt", 1);
        let x = b.param(0);
        let xi = b.ftoi(x);
        let seven = b.consti(7);
        let m = b.iand(xi, seven);
        let hundred = b.consti(100);
        let c = b.cmpi(CmpOp::Gt, m, hundred);
        let bad = b.new_label();
        b.branch_if(c, bad);
        let out = b.itof(m);
        b.ret(&[out]);
        b.bind(bad);
        let neg = b.constf(-1.0);
        b.ret(&[neg]);
        let f = b.build().unwrap();
        let opt = optimize(&f);
        assert!(opt.len() < f.len(), "{:?}", opt.insts());
        assert!(
            !opt.insts().iter().any(|i| matches!(i, Inst::Branch { .. })),
            "{:?}",
            opt.insts()
        );
        for v in [-3.0f32, 0.0, 7.5, 255.0] {
            let a = run(f.clone(), &[Value::F(v)])[0].as_f32().unwrap();
            let o = run(opt.clone(), &[Value::F(v)])[0].as_f32().unwrap();
            assert_eq!(a.to_bits(), o.to_bits(), "input {v}");
        }
    }

    #[test]
    fn input_dependent_branches_are_untouched() {
        use crate::CmpOp;
        let mut b = FunctionBuilder::new("keep", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let negl = b.new_label();
        b.branch_if(c, negl);
        let one = b.constf(1.0);
        b.ret(&[one]);
        b.bind(negl);
        let mone = b.constf(-1.0);
        b.ret(&[mone]);
        let f = b.build().unwrap();
        let opt = fold_branches(&f);
        assert_eq!(opt.insts(), f.insts());
    }

    #[test]
    fn dce_removes_overwritten_definitions_and_unreachable_code() {
        use crate::{Label, Reg};
        let f = Function::new_unchecked(
            "over",
            1,
            2,
            vec![Reg(1)],
            vec![
                // 0: overwritten before any read — dead under per-point
                // liveness (the old whole-function pass kept it because
                // r1 is "read somewhere").
                Inst::ConstF {
                    dst: Reg(1),
                    value: 1.0,
                },
                // 1: the live definition.
                Inst::ConstF {
                    dst: Reg(1),
                    value: 2.0,
                },
                // 2: return it.
                Inst::Ret { vals: vec![Reg(1)] },
                // 3: unreachable tail.
                Inst::ConstF {
                    dst: Reg(1),
                    value: 3.0,
                },
                Inst::Jump { target: Label(3) },
            ],
        );
        let opt = eliminate_dead_code(&f);
        assert_eq!(opt.len(), 2, "{:?}", opt.insts());
        assert_eq!(run(opt, &[Value::F(0.0)])[0].as_f32().unwrap(), 2.0);
    }
}

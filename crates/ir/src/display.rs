//! Human-readable IR listings.
//!
//! `Function` and `Program` implement [`std::fmt::Display`] with an
//! assembly-like syntax, one instruction per line with its index — the
//! format a developer inspects when deciding whether a region is a good
//! Parrot candidate or when debugging generated glue:
//!
//! ```text
//! fn sobel(r0..r8) -> 1 value {
//!    0: r9  = fconst 2
//!    1: r10 = fmul r9, r5
//!    ...
//!   22: branch r24 -> 24
//!   23: r21 = mov r22
//!   24: ret r21
//! }
//! ```

use crate::{CmpOp, FBinOp, FUnOp, Function, IBinOp, Inst, Program};
use std::fmt;

fn fbin_name(op: FBinOp) -> &'static str {
    match op {
        FBinOp::Add => "fadd",
        FBinOp::Sub => "fsub",
        FBinOp::Mul => "fmul",
        FBinOp::Div => "fdiv",
        FBinOp::Min => "fmin",
        FBinOp::Max => "fmax",
        FBinOp::Atan2 => "fatan2",
    }
}

fn fun_name(op: FUnOp) -> &'static str {
    match op {
        FUnOp::Neg => "fneg",
        FUnOp::Abs => "fabs",
        FUnOp::Sqrt => "fsqrt",
        FUnOp::Sin => "fsin",
        FUnOp::Cos => "fcos",
        FUnOp::Floor => "ffloor",
        FUnOp::Exp => "fexp",
        FUnOp::Acos => "facos",
        FUnOp::Asin => "fasin",
        FUnOp::Atan => "fatan",
    }
}

fn ibin_name(op: IBinOp) -> &'static str {
    match op {
        IBinOp::Add => "iadd",
        IBinOp::Sub => "isub",
        IBinOp::Mul => "imul",
        IBinOp::Shl => "ishl",
        IBinOp::Shr => "ishr",
        IBinOp::And => "iand",
        IBinOp::Or => "ior",
        IBinOp::Rem => "irem",
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
    }
}

fn write_inst(f: &mut fmt::Formatter<'_>, inst: &Inst) -> fmt::Result {
    match inst {
        Inst::ConstF { dst, value } => write!(f, "{dst} = fconst {value}"),
        Inst::ConstI { dst, value } => write!(f, "{dst} = iconst {value}"),
        Inst::Mov { dst, src } => write!(f, "{dst} = mov {src}"),
        Inst::FBin { op, dst, a, b } => write!(f, "{dst} = {} {a}, {b}", fbin_name(*op)),
        Inst::FUn { op, dst, a } => write!(f, "{dst} = {} {a}", fun_name(*op)),
        Inst::IBin { op, dst, a, b } => write!(f, "{dst} = {} {a}, {b}", ibin_name(*op)),
        Inst::CmpF { op, dst, a, b } => write!(f, "{dst} = fcmp.{} {a}, {b}", cmp_name(*op)),
        Inst::CmpI { op, dst, a, b } => write!(f, "{dst} = icmp.{} {a}, {b}", cmp_name(*op)),
        Inst::IToF { dst, src } => write!(f, "{dst} = itof {src}"),
        Inst::FToI { dst, src } => write!(f, "{dst} = ftoi {src}"),
        Inst::BitsToF { dst, src } => write!(f, "{dst} = bitstof {src}"),
        Inst::FToBits { dst, src } => write!(f, "{dst} = ftobits {src}"),
        Inst::Load { dst, base, offset } => write!(f, "{dst} = load [{base}{offset:+}]"),
        Inst::Store { src, base, offset } => write!(f, "store {src} -> [{base}{offset:+}]"),
        Inst::Branch { cond, target } => write!(f, "branch {cond} -> {}", target.0),
        Inst::Jump { target } => write!(f, "jump -> {}", target.0),
        Inst::Call { func, args, rets } => {
            let fmt_regs = |regs: &[crate::Reg]| {
                regs.iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            if rets.is_empty() {
                write!(f, "call f{func}({})", fmt_regs(args))
            } else {
                write!(f, "{} = call f{func}({})", fmt_regs(rets), fmt_regs(args))
            }
        }
        Inst::Ret { vals } => {
            if vals.is_empty() {
                write!(f, "ret")
            } else {
                let list = vals
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(f, "ret {list}")
            }
        }
        Inst::EnqD { src } => write!(f, "enq.d {src}"),
        Inst::DeqD { dst } => write!(f, "{dst} = deq.d"),
        Inst::EnqC { src } => write!(f, "enq.c {src}"),
        Inst::DeqC { dst } => write!(f, "{dst} = deq.c"),
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = if self.n_params() == 0 {
            String::from("()")
        } else if self.n_params() == 1 {
            String::from("(r0)")
        } else {
            format!("(r0..r{})", self.n_params() - 1)
        };
        writeln!(
            f,
            "fn {}{params} -> {} value{} {{",
            self.name(),
            self.n_rets(),
            if self.n_rets() == 1 { "" } else { "s" },
        )?;
        let width = self.len().saturating_sub(1).to_string().len().max(2);
        for (idx, inst) in self.insts().iter().enumerate() {
            write!(f, "  {idx:>width$}: ")?;
            write_inst(f, inst)?;
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
                writeln!(f)?;
            }
            write!(f, "; f{i}")?;
            writeln!(f)?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder};

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("demo", 2);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.fadd(x, y);
        let zero = b.constf(0.0);
        let neg = b.cmpf(CmpOp::Lt, s, zero);
        let skip = b.new_label();
        b.branch_if(neg, skip);
        b.enq_d(s);
        let r = b.deq_d();
        b.ret(&[r]);
        b.bind(skip);
        b.ret(&[zero]);
        b.build().unwrap()
    }

    #[test]
    fn listing_contains_every_instruction() {
        let func = sample();
        let text = func.to_string();
        assert!(text.starts_with("fn demo(r0..r1) -> 1 value {"));
        assert!(text.contains("= fadd r0, r1"));
        assert!(text.contains("= fcmp.lt"));
        assert!(text.contains("enq.d"));
        assert!(text.contains("= deq.d"));
        assert!(text.ends_with('}'));
        assert_eq!(text.lines().count(), func.len() + 2);
    }

    #[test]
    fn branch_targets_are_resolved_indices() {
        let text = sample().to_string();
        // The branch skips past the enq/deq/ret to the final ret.
        assert!(text.contains("branch r4 -> 7"), "{text}");
    }

    #[test]
    fn program_listing_numbers_functions() {
        let mut p = Program::new();
        p.add_function(sample());
        p.add_function(sample());
        let text = p.to_string();
        assert!(text.contains("; f0"));
        assert!(text.contains("; f1"));
    }
}

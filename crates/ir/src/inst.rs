//! Instruction definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register. Registers are per-function and unlimited; the first
/// `n` registers of a function hold its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A branch target, resolved to an instruction index at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

/// Floating-point binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FBinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `atan2(a, b)` (libm stand-in)
    Atan2,
}

/// Floating-point unary operations. `Sqrt`, `Sin`, and `Cos` stand for
/// libm calls (single IR ops with multi-cycle latency in the core model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FUnOp {
    /// `-a`
    Neg,
    /// `|a|`
    Abs,
    /// `sqrt(a)`
    Sqrt,
    /// `sin(a)` (libm stand-in)
    Sin,
    /// `cos(a)` (libm stand-in)
    Cos,
    /// `floor(a)`
    Floor,
    /// `e^a` (libm stand-in)
    Exp,
    /// `acos(a)` (libm stand-in)
    Acos,
    /// `asin(a)` (libm stand-in)
    Asin,
    /// `atan(a)` (libm stand-in)
    Atan,
}

/// Integer binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IBinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a << b`
    Shl,
    /// `a >> b` (arithmetic)
    Shr,
    /// `a & b`
    And,
    /// `a | b`
    Or,
    /// `a % b`
    Rem,
}

/// Comparison predicates (work on both numeric types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
}

impl CmpOp {
    /// Applies the predicate to an [`std::cmp::Ordering`]-style pair.
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Integer form of the predicate.
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// One IR instruction.
///
/// The mix deliberately mirrors the x86-64 subset the paper's benchmarks
/// compile to: scalar int/fp arithmetic, loads/stores, compares, branches,
/// calls — plus the four NPU queue instructions of Section 5.1
/// (`enq.c`, `deq.c`, `enq.d`, `deq.d`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// Load an f32 immediate into `dst`.
    ConstF {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: f32,
    },
    /// Load an i32 immediate into `dst`.
    ConstI {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i32,
    },
    /// Register move.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Floating-point binary arithmetic.
    FBin {
        /// Operation.
        op: FBinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Floating-point unary arithmetic.
    FUn {
        /// Operation.
        op: FUnOp,
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Reg,
    },
    /// Integer binary arithmetic.
    IBin {
        /// Operation.
        op: IBinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Floating-point compare; writes 1 or 0 (i32) to `dst`.
    CmpF {
        /// Predicate.
        op: CmpOp,
        /// Destination register (receives 0/1).
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Integer compare; writes 1 or 0 (i32) to `dst`.
    CmpI {
        /// Predicate.
        op: CmpOp,
        /// Destination register (receives 0/1).
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Convert i32 to f32.
    IToF {
        /// Destination register.
        dst: Reg,
        /// Source register (i32).
        src: Reg,
    },
    /// Convert f32 to i32 (truncating).
    FToI {
        /// Destination register.
        dst: Reg,
        /// Source register (f32).
        src: Reg,
    },
    /// Reinterpret i32 bits as f32 (like x86 `movd` — used to move raw
    /// configuration words through the f32 data memory losslessly).
    BitsToF {
        /// Destination register.
        dst: Reg,
        /// Source register (i32).
        src: Reg,
    },
    /// Reinterpret f32 bits as i32.
    FToBits {
        /// Destination register.
        dst: Reg,
        /// Source register (f32).
        src: Reg,
    },
    /// Load `mem[base + offset]` (f32 word addressing) into `dst`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register (i32, word units).
        base: Reg,
        /// Constant word offset.
        offset: i32,
    },
    /// Store `src` to `mem[base + offset]`.
    Store {
        /// Value register (f32).
        src: Reg,
        /// Base address register (i32, word units).
        base: Reg,
        /// Constant word offset.
        offset: i32,
    },
    /// Conditional branch: taken when `cond != 0`.
    Branch {
        /// Condition register (i32).
        cond: Reg,
        /// Target instruction index.
        target: Label,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: Label,
    },
    /// Call another function, copying `args` into its parameter registers
    /// and its declared returns back into `rets`.
    Call {
        /// Callee identifier (index into the program's function table).
        func: u32,
        /// Argument registers in the caller's frame.
        args: Vec<Reg>,
        /// Registers in the caller's frame receiving the return values.
        rets: Vec<Reg>,
    },
    /// Return from the current function, yielding the listed registers.
    Ret {
        /// Registers whose values are returned to the caller.
        vals: Vec<Reg>,
    },
    /// `enq.d`: enqueue an f32 from `src` into the NPU input FIFO.
    EnqD {
        /// Source register (f32).
        src: Reg,
    },
    /// `deq.d`: dequeue the head of the NPU output FIFO into `dst`.
    DeqD {
        /// Destination register (f32).
        dst: Reg,
    },
    /// `enq.c`: enqueue a configuration word into the NPU config FIFO.
    EnqC {
        /// Source register (i32 configuration word).
        src: Reg,
    },
    /// `deq.c`: dequeue a configuration word from the NPU config FIFO.
    DeqC {
        /// Destination register (i32 configuration word).
        dst: Reg,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_predicates() {
        assert!(CmpOp::Lt.eval_f32(1.0, 2.0));
        assert!(!CmpOp::Lt.eval_f32(2.0, 2.0));
        assert!(CmpOp::Le.eval_i32(2, 2));
        assert!(CmpOp::Ne.eval_i32(1, 2));
        assert!(CmpOp::Ge.eval_f32(3.0, 3.0));
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
    }
}

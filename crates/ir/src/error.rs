use std::error::Error;
use std::fmt;

/// Errors from building or interpreting IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A register held the wrong value type for the operation.
    TypeMismatch {
        /// What the instruction needed.
        expected: &'static str,
        /// Instruction index where the mismatch occurred.
        at: usize,
    },
    /// A memory access fell outside the machine's data memory.
    OutOfBoundsMemory {
        /// The offending word address.
        addr: i64,
        /// Memory size in words.
        size: usize,
    },
    /// An NPU queue instruction executed with no NPU attached.
    NoNpuAttached,
    /// A label was never bound to a position.
    UnboundLabel(u32),
    /// Call depth exceeded the interpreter's frame limit.
    StackOverflow,
    /// A `Call` referenced a function id not present in the program.
    UnknownFunction(u32),
    /// Execution ran past the end of a function without `Ret`.
    MissingReturn(String),
    /// A function was invoked with the wrong number of arguments.
    ArityMismatch {
        /// Parameters the function declares.
        expected: usize,
        /// Arguments supplied.
        actual: usize,
    },
    /// The interpreter exceeded its configured instruction budget
    /// (guards against runaway loops in tests).
    BudgetExhausted,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::TypeMismatch { expected, at } => {
                write!(f, "type mismatch at instruction {at}: expected {expected}")
            }
            IrError::OutOfBoundsMemory { addr, size } => {
                write!(f, "memory access at word {addr} outside size {size}")
            }
            IrError::NoNpuAttached => write!(f, "npu queue instruction with no npu attached"),
            IrError::UnboundLabel(l) => write!(f, "label {l} was never bound"),
            IrError::StackOverflow => write!(f, "call depth limit exceeded"),
            IrError::UnknownFunction(id) => write!(f, "unknown function id {id}"),
            IrError::MissingReturn(name) => {
                write!(f, "function '{name}' ended without a return")
            }
            IrError::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: expected {expected} args, got {actual}")
            }
            IrError::BudgetExhausted => write!(f, "instruction budget exhausted"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = IrError::OutOfBoundsMemory { addr: -1, size: 8 };
        assert!(e.to_string().contains("-1"));
        assert!(e.to_string().contains('8'));
    }
}

//! Per-block live-register analysis (backward may-dataflow).
//!
//! `live_in[b]` = registers whose current value may be read before being
//! overwritten on some path starting at block `b`. The optimizer's dead
//! code elimination walks each block backward from `live_out[b]` to find
//! definitions no path ever reads, replacing the old whole-function
//! "read anywhere" over-approximation.

use super::cfg::Cfg;
use super::defuse::{defs_of, uses_of};
use super::RegSet;
use crate::Function;

/// Live-in/live-out register sets per basic block.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Runs the backward fixpoint over `cfg`.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let n_regs = reg_space(f);
        let nb = cfg.len();

        // Per-block gen (upward-exposed uses) and kill (defs) sets.
        let mut gen_set = vec![RegSet::empty(n_regs); nb];
        let mut kill = vec![RegSet::empty(n_regs); nb];
        for (b, blk) in cfg.blocks().iter().enumerate() {
            for i in blk.range() {
                for r in uses_of(&f.insts()[i]) {
                    if !kill[b].contains(r.0) {
                        gen_set[b].insert(r.0);
                    }
                }
                for r in defs_of(&f.insts()[i]) {
                    kill[b].insert(r.0);
                }
            }
        }

        let mut live_in = vec![RegSet::empty(n_regs); nb];
        let mut live_out = vec![RegSet::empty(n_regs); nb];
        // Iterate blocks in postorder (reverse RPO) for fast convergence.
        let order: Vec<usize> = cfg.rpo().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let mut out = RegSet::empty(n_regs);
                for &s in &cfg.blocks()[b].succs {
                    out.union_with(&live_in[s]);
                }
                // in = gen ∪ (out − kill)
                let mut input = out.clone();
                input.subtract(&kill[b]);
                input.union_with(&gen_set[b]);
                if live_out[b] != out {
                    live_out[b] = out;
                }
                if live_in[b] != input {
                    live_in[b] = input;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to block `b`.
    pub fn live_in(&self, b: usize) -> &RegSet {
        &self.live_in[b]
    }

    /// Registers live on exit from block `b`.
    pub fn live_out(&self, b: usize) -> &RegSet {
        &self.live_out[b]
    }
}

/// The register index space of `f`, widened to cover malformed IR that
/// mentions registers beyond `n_regs`.
pub(crate) fn reg_space(f: &Function) -> usize {
    let mut n = f.n_regs();
    for inst in f.insts() {
        for r in defs_of(inst).into_iter().chain(uses_of(inst)) {
            n = n.max(r.0 as usize + 1);
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder};

    #[test]
    fn loop_carries_accumulator_live_around_back_edge() {
        let mut b = FunctionBuilder::new("l", 1);
        let n = b.param(0);
        let acc = b.consti(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit);
        b.iadd_into(acc, i);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(exit);
        b.ret(&[acc]);
        let f = b.build().unwrap();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        let header = cfg.block_of(4); // the cmpi
                                      // The accumulator is live into the header (read after the loop),
                                      // and so are the loop-carried counter and bound.
        assert!(lv.live_in(header).contains(acc.0));
        assert!(lv.live_in(header).contains(i.0));
        assert!(lv.live_in(header).contains(n.0));
        // `one` is consumed only inside the body; still live at header
        // because the body reads it before any redefinition.
        assert!(lv.live_in(header).contains(one.0));
    }

    #[test]
    fn dead_def_not_live_anywhere() {
        let mut b = FunctionBuilder::new("d", 1);
        let x = b.param(0);
        let dead = b.fmul(x, x);
        let y = b.fadd(x, x);
        b.ret(&[y]);
        let f = b.build().unwrap();
        let cfg = Cfg::build(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_in(0).contains(dead.0));
        assert!(lv.live_in(0).contains(x.0));
        assert!(lv.live_out(0) == &RegSet::empty(f.n_regs()));
    }
}

//! Int/float type inference per register.
//!
//! The interpreter is dynamically typed — every register holds either an
//! `i32` or an `f32` and typed accessors fault on mismatch. This module
//! recovers a static typing: each instruction contributes hard constraints
//! (an `FBin` reads and writes floats, a `Load` base is an int address,
//! …) and `Mov` unifies its two registers through a union-find, since a
//! copy preserves whichever type flows through it. `Call` constraints are
//! resolved program-wide by iterating function-local inference with the
//! callee's parameter/return types until a fixpoint.
//!
//! The analysis is flow-insensitive: a register constrained both ways
//! anywhere in the function is [`RegType::Conflict`], which the verifier
//! reports as type confusion. The builder allocates a fresh register per
//! value, so well-formed programs never reuse one register for both
//! types.

use crate::{Function, Inst, Program, Reg};

/// The inferred type of one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegType {
    /// No constraint observed (the register is unused or only copied).
    Unknown,
    /// Always holds an `i32`.
    Int,
    /// Always holds an `f32`.
    Float,
    /// Constrained to both types — a runtime `TypeMismatch` waiting to
    /// happen on some path.
    Conflict,
}

impl RegType {
    fn join(self, other: RegType) -> RegType {
        match (self, other) {
            (RegType::Unknown, t) | (t, RegType::Unknown) => t,
            (a, b) if a == b => a,
            _ => RegType::Conflict,
        }
    }
}

/// Inferred types for every register of one function.
#[derive(Debug, Clone)]
pub struct TypeMap {
    types: Vec<RegType>,
}

impl TypeMap {
    /// The type of `r` (`Unknown` for out-of-range registers).
    pub fn get(&self, r: Reg) -> RegType {
        self.types
            .get(r.0 as usize)
            .copied()
            .unwrap_or(RegType::Unknown)
    }

    /// Types of the first `n` registers (the parameter slice when
    /// `n = n_params`).
    pub fn prefix(&self, n: usize) -> &[RegType] {
        &self.types[..n.min(self.types.len())]
    }

    /// Registers holding conflicting constraints.
    pub fn conflicts(&self) -> impl Iterator<Item = Reg> + '_ {
        self.types
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == RegType::Conflict)
            .map(|(i, _)| Reg(i as u16))
    }
}

/// Union-find over register classes with a type per class root.
struct Classes {
    parent: Vec<usize>,
    ty: Vec<RegType>,
}

impl Classes {
    fn new(n: usize) -> Classes {
        Classes {
            parent: (0..n).collect(),
            ty: vec![RegType::Unknown; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn constrain(&mut self, r: Reg, t: RegType) {
        let root = self.find(r.0 as usize);
        self.ty[root] = self.ty[root].join(t);
    }

    fn unify(&mut self, a: Reg, b: Reg) {
        let (ra, rb) = (self.find(a.0 as usize), self.find(b.0 as usize));
        if ra == rb {
            return;
        }
        let joined = self.ty[ra].join(self.ty[rb]);
        self.parent[ra] = rb;
        self.ty[rb] = joined;
    }
}

/// Signature of a function as seen from call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Signature {
    params: Vec<RegType>,
    rets: Vec<RegType>,
}

/// Infers register types for every function in `program`.
///
/// Returns one [`TypeMap`] per function, indexed like
/// [`Program::functions`]. Calls to unknown function ids contribute no
/// constraints (the verifier reports those separately).
pub fn infer_types(program: &Program) -> Vec<TypeMap> {
    let n_funcs = program.functions().len();
    let mut sigs: Vec<Signature> = program
        .functions()
        .iter()
        .map(|f| Signature {
            params: vec![RegType::Unknown; f.n_params()],
            rets: vec![RegType::Unknown; f.n_rets()],
        })
        .collect();

    // Iterate to a fixpoint: signatures only move up the 3-level lattice
    // Unknown → Int/Float → Conflict, so this terminates quickly.
    let mut maps: Vec<TypeMap>;
    loop {
        maps = program
            .functions()
            .iter()
            .map(|f| infer_function(f, program, &sigs))
            .collect();
        let next: Vec<Signature> = program
            .functions()
            .iter()
            .zip(&maps)
            .map(|(f, map)| Signature {
                params: map.prefix(f.n_params()).to_vec(),
                rets: f.rets().iter().map(|r| map.get(*r)).collect(),
            })
            .collect();
        if next == sigs {
            break;
        }
        sigs = next;
    }
    debug_assert_eq!(maps.len(), n_funcs);
    maps
}

/// Infers types for a single function given callee signatures.
fn infer_function(f: &Function, program: &Program, sigs: &[Signature]) -> TypeMap {
    let n = super::liveness::reg_space(f);
    let mut c = Classes::new(n);
    for inst in f.insts() {
        match inst {
            Inst::ConstF { dst, .. } => c.constrain(*dst, RegType::Float),
            Inst::ConstI { dst, .. } => c.constrain(*dst, RegType::Int),
            Inst::Mov { dst, src } => c.unify(*dst, *src),
            Inst::FBin { dst, a, b, .. } => {
                c.constrain(*a, RegType::Float);
                c.constrain(*b, RegType::Float);
                c.constrain(*dst, RegType::Float);
            }
            Inst::FUn { dst, a, .. } => {
                c.constrain(*a, RegType::Float);
                c.constrain(*dst, RegType::Float);
            }
            Inst::IBin { dst, a, b, .. } => {
                c.constrain(*a, RegType::Int);
                c.constrain(*b, RegType::Int);
                c.constrain(*dst, RegType::Int);
            }
            Inst::CmpF { dst, a, b, .. } => {
                c.constrain(*a, RegType::Float);
                c.constrain(*b, RegType::Float);
                c.constrain(*dst, RegType::Int);
            }
            Inst::CmpI { dst, a, b, .. } => {
                c.constrain(*a, RegType::Int);
                c.constrain(*b, RegType::Int);
                c.constrain(*dst, RegType::Int);
            }
            Inst::IToF { dst, src } | Inst::BitsToF { dst, src } => {
                c.constrain(*src, RegType::Int);
                c.constrain(*dst, RegType::Float);
            }
            Inst::FToI { dst, src } | Inst::FToBits { dst, src } => {
                c.constrain(*src, RegType::Float);
                c.constrain(*dst, RegType::Int);
            }
            Inst::Load { dst, base, .. } => {
                c.constrain(*base, RegType::Int);
                c.constrain(*dst, RegType::Float);
            }
            Inst::Store { src, base, .. } => {
                c.constrain(*src, RegType::Float);
                c.constrain(*base, RegType::Int);
            }
            Inst::Branch { cond, .. } => c.constrain(*cond, RegType::Int),
            Inst::Call { func, args, rets } => {
                if program.function_by_index(*func).is_some() {
                    let sig = &sigs[*func as usize];
                    for (a, t) in args.iter().zip(&sig.params) {
                        c.constrain(*a, *t);
                    }
                    for (r, t) in rets.iter().zip(&sig.rets) {
                        c.constrain(*r, *t);
                    }
                }
            }
            Inst::EnqD { src } => c.constrain(*src, RegType::Float),
            Inst::DeqD { dst } => c.constrain(*dst, RegType::Float),
            Inst::EnqC { src } => c.constrain(*src, RegType::Int),
            Inst::DeqC { dst } => c.constrain(*dst, RegType::Int),
            Inst::Jump { .. } | Inst::Ret { .. } => {}
        }
    }
    let types = (0..n)
        .map(|r| {
            let root = c.find(r);
            c.ty[root]
        })
        .collect();
    TypeMap { types }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    #[test]
    fn mov_propagates_type_through_copies() {
        let mut b = FunctionBuilder::new("m", 1);
        let x = b.param(0);
        let cpy = b.reg();
        b.mov(cpy, x);
        let y = b.fadd(cpy, cpy);
        b.ret(&[y]);
        let mut p = Program::new();
        p.add_function(b.build().unwrap());
        let maps = infer_types(&p);
        assert_eq!(maps[0].get(x), RegType::Float);
        assert_eq!(maps[0].get(cpy), RegType::Float);
    }

    #[test]
    fn int_float_mix_is_conflict() {
        use crate::{FBinOp, IBinOp, Reg};
        let f = Function::new_unchecked(
            "conf",
            1,
            2,
            vec![Reg(1)],
            vec![
                Inst::IBin {
                    op: IBinOp::Add,
                    dst: Reg(1),
                    a: Reg(0),
                    b: Reg(0),
                },
                Inst::FBin {
                    op: FBinOp::Add,
                    dst: Reg(1),
                    a: Reg(0),
                    b: Reg(0),
                },
                Inst::Ret { vals: vec![Reg(1)] },
            ],
        );
        let mut p = Program::new();
        p.add_function(f);
        let maps = infer_types(&p);
        assert_eq!(maps[0].get(Reg(0)), RegType::Conflict);
        assert_eq!(maps[0].get(Reg(1)), RegType::Conflict);
        assert_eq!(maps[0].conflicts().count(), 2);
    }

    #[test]
    fn call_signature_types_flow_to_caller() {
        let mut callee = FunctionBuilder::new("sq", 1);
        let x = callee.param(0);
        let xx = callee.fmul(x, x);
        callee.ret(&[xx]);
        let mut p = Program::new();
        let sq = p.add_function(callee.build().unwrap());

        let mut caller = FunctionBuilder::new("main", 1);
        let a = caller.param(0);
        let r = caller.call(sq, &[a], 1);
        caller.ret(&[r[0]]);
        p.add_function(caller.build().unwrap());

        let maps = infer_types(&p);
        // The caller never touches `a` or `r` except via the call; their
        // types come entirely from the callee's signature.
        assert_eq!(maps[1].get(a), RegType::Float);
        assert_eq!(maps[1].get(r[0]), RegType::Float);
    }

    use crate::Function;
}

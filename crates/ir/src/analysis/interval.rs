//! Interval (value-range) analysis: the [`absint`](super::absint) solver
//! instantiated with a numeric range domain.
//!
//! Every register is tracked as one of four abstract values
//! ([`AbsValue`]): unreachable ⊥, an integer interval, a float interval
//! (with an explicit may-be-NaN flag), or ⊤ (either type, any value).
//! The transfer functions mirror the interpreter exactly — wrapping i32
//! arithmetic (an overflowing interval falls back to the full i32 range),
//! `rem`-by-zero yielding 0, saturating `f2i`, IEEE rounding — so the
//! central soundness invariant holds by construction and is enforced by
//! proptest ([`run_checked`](super::soundness::run_checked)):
//!
//! > every value the concrete interpreter ever writes to a register lies
//! > inside that register's inferred interval at that program point.
//!
//! Float endpoints are handled with corner evaluation, which is sound for
//! the coordinate-wise monotone operations under round-to-nearest; the
//! libm stand-ins (`exp`, `asin`, `acos`, `atan`, `atan2`) get their
//! endpoints padded outward by a few ulps, and `sin`/`cos` use their
//! global range. Uninitialized registers are *not* ⊥: the interpreter
//! zero-fills its register file, so they start as the exact integer 0 —
//! the analysis stays sound even on programs the must-init lint rejects.
//!
//! When a region's scratch size is known ([`IntervalAnalysis::of_region`])
//! the state additionally models the scratch words themselves
//! (zero-initialized, weak updates on imprecise store addresses), which
//! is what lets the static precision report bound values that round-trip
//! through scratch, like the jpeg DCT coefficients.

use super::absint::{self, AbstractDomain, SolverConfig};
use super::cfg::Cfg;
use super::defuse::{defs_of, uses_of};
use super::effects::region_effects;
use super::liveness::reg_space;
use crate::{CmpOp, FBinOp, FUnOp, Function, IBinOp, Inst, Program, Reg, Value};

/// Largest scratch size (in words) the analysis models word-by-word.
const MEM_MODEL_MAX_WORDS: usize = 4096;

/// Ulps of outward padding applied to libm-backed endpoint evaluations.
const LIBM_PAD_ULPS: u32 = 4;

// ---------------------------------------------------------------------
// Integer intervals
// ---------------------------------------------------------------------

/// A closed integer interval `[lo, hi]` over i32 values, endpoints kept
/// as i64 so arithmetic can detect wrapping (a result escaping the i32
/// range falls back to [`IntInterval::FULL`], matching the interpreter's
/// wrapping semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntInterval {
    /// Inclusive lower bound (≥ `i32::MIN`).
    pub lo: i64,
    /// Inclusive upper bound (≤ `i32::MAX`).
    pub hi: i64,
}

impl IntInterval {
    /// The full i32 range.
    pub const FULL: IntInterval = IntInterval {
        lo: i32::MIN as i64,
        hi: i32::MAX as i64,
    };

    /// The singleton `[v, v]`.
    pub fn exact(v: i32) -> IntInterval {
        IntInterval {
            lo: v as i64,
            hi: v as i64,
        }
    }

    /// An interval from possibly-overflowing bounds: anything escaping
    /// the i32 range may have wrapped, so it degrades to [`Self::FULL`].
    fn wrapping(lo: i64, hi: i64) -> IntInterval {
        if lo < i32::MIN as i64 || hi > i32::MAX as i64 {
            IntInterval::FULL
        } else {
            IntInterval { lo, hi }
        }
    }

    /// Whether `v` lies inside.
    pub fn contains(&self, v: i32) -> bool {
        self.lo <= v as i64 && v as i64 <= self.hi
    }

    /// Whether the interval is the single value `v`.
    pub fn is_exact(&self) -> Option<i32> {
        (self.lo == self.hi).then_some(self.lo as i32)
    }

    /// Convex hull.
    fn join(&self, o: &IntInterval) -> IntInterval {
        IntInterval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Intersection with raw i64 bounds; `None` when empty.
    fn clamp(&self, lo: i64, hi: i64) -> Option<IntInterval> {
        let nlo = self.lo.max(lo);
        let nhi = self.hi.min(hi);
        (nlo <= nhi).then_some(IntInterval { lo: nlo, hi: nhi })
    }

    /// Intersection; `None` when empty.
    fn meet(&self, o: &IntInterval) -> Option<IntInterval> {
        self.clamp(o.lo, o.hi)
    }

    /// Trims an endpoint equal to `v` (interior exclusions are not
    /// representable); `None` when the result is empty.
    fn exclude(&self, v: i64) -> Option<IntInterval> {
        let mut r = *self;
        if r.lo == v {
            r.lo += 1;
        }
        if r.hi == v {
            r.hi -= 1;
        }
        (r.lo <= r.hi).then_some(r)
    }
}

// ---------------------------------------------------------------------
// Float intervals
// ---------------------------------------------------------------------

/// A closed f32 interval `[lo, hi]` (endpoints may be ±∞, never NaN)
/// plus an explicit "may be NaN" flag. The numeric part is empty when
/// `lo > hi` (canonically `[+∞, −∞]`); an interval that is numerically
/// empty *and* NaN-free denotes no value at all and is normalized to
/// [`AbsValue::Bottom`] by [`AbsValue::float`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatInterval {
    /// Inclusive lower bound.
    pub lo: f32,
    /// Inclusive upper bound.
    pub hi: f32,
    /// Whether NaN is a possible value.
    pub nan: bool,
}

impl FloatInterval {
    /// Every f32, NaN included.
    pub const TOP: FloatInterval = FloatInterval {
        lo: f32::NEG_INFINITY,
        hi: f32::INFINITY,
        nan: true,
    };

    /// The singleton `{v}` (NaN-only when `v` is NaN).
    pub fn exact(v: f32) -> FloatInterval {
        if v.is_nan() {
            FloatInterval::NAN_ONLY
        } else {
            FloatInterval {
                lo: v,
                hi: v,
                nan: false,
            }
        }
    }

    /// Only NaN.
    pub const NAN_ONLY: FloatInterval = FloatInterval {
        lo: f32::INFINITY,
        hi: f32::NEG_INFINITY,
        nan: true,
    };

    /// No numeric values (possibly still NaN, per the flag).
    const fn empty_numeric(nan: bool) -> FloatInterval {
        FloatInterval {
            lo: f32::INFINITY,
            hi: f32::NEG_INFINITY,
            nan,
        }
    }

    /// Whether the numeric part is empty.
    pub fn numeric_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether no value at all is possible.
    fn is_empty(&self) -> bool {
        self.numeric_empty() && !self.nan
    }

    /// Whether `v` lies inside.
    pub fn contains(&self, v: f32) -> bool {
        if v.is_nan() {
            self.nan
        } else {
            self.lo <= v && v <= self.hi
        }
    }

    /// Whether the numeric part contains zero.
    fn has_zero(&self) -> bool {
        self.lo <= 0.0 && 0.0 <= self.hi
    }

    /// Whether either infinity is a possible value.
    fn has_inf(&self) -> bool {
        !self.numeric_empty() && (self.lo == f32::NEG_INFINITY || self.hi == f32::INFINITY)
    }

    /// Convex hull of the numeric parts, NaN flags or-ed. Works with
    /// empty numeric parts because they are canonically `[+∞, −∞]`.
    fn join(&self, o: &FloatInterval) -> FloatInterval {
        FloatInterval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
            nan: self.nan || o.nan,
        }
    }

    /// Intersection (numeric parts intersected, NaN flags and-ed).
    fn meet(&self, o: &FloatInterval) -> FloatInterval {
        FloatInterval {
            lo: self.lo.max(o.lo),
            hi: self.hi.min(o.hi),
            nan: self.nan && o.nan,
        }
    }
}

/// The next f32 above `x` (saturating at +∞).
fn next_up(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x == 0.0 {
        1 // smallest positive subnormal (covers -0.0 too)
    } else if bits >> 31 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f32::from_bits(next)
}

/// The next f32 below `x` (saturating at −∞).
fn next_down(x: f32) -> f32 {
    -next_up(-x)
}

/// Pads a libm-evaluated endpoint upward to absorb rounding slack.
fn pad_up(mut x: f32) -> f32 {
    for _ in 0..LIBM_PAD_ULPS {
        x = next_up(x);
    }
    x
}

/// Pads a libm-evaluated endpoint downward.
fn pad_down(mut x: f32) -> f32 {
    for _ in 0..LIBM_PAD_ULPS {
        x = next_down(x);
    }
    x
}

// ---------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------

/// The abstract value of one register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsValue {
    /// No value: the program point is unreachable (or every path to it
    /// faults first).
    Bottom,
    /// An i32 in the interval.
    Int(IntInterval),
    /// An f32 in the interval (see [`FloatInterval::nan`]).
    Float(FloatInterval),
    /// Either type, any value.
    Any,
}

impl AbsValue {
    /// A float abstract value, normalizing the empty interval to ⊥.
    pub fn float(f: FloatInterval) -> AbsValue {
        if f.is_empty() {
            AbsValue::Bottom
        } else {
            AbsValue::Float(f)
        }
    }

    /// An int abstract value from an optional (possibly empty) interval.
    pub fn int(i: Option<IntInterval>) -> AbsValue {
        match i {
            Some(i) => AbsValue::Int(i),
            None => AbsValue::Bottom,
        }
    }

    /// Any f32 including NaN — the abstract value of a region input.
    pub fn top_float() -> AbsValue {
        AbsValue::Float(FloatInterval::TOP)
    }

    /// The i32 values this abstraction admits (`None` when it admits no
    /// i32 at all: ⊥ or a float-only value).
    pub fn as_int(&self) -> Option<IntInterval> {
        match self {
            AbsValue::Int(i) => Some(*i),
            AbsValue::Any => Some(IntInterval::FULL),
            AbsValue::Bottom | AbsValue::Float(_) => None,
        }
    }

    /// The f32 values this abstraction admits.
    pub fn as_float(&self) -> Option<FloatInterval> {
        match self {
            AbsValue::Float(f) => Some(*f),
            AbsValue::Any => Some(FloatInterval::TOP),
            AbsValue::Bottom | AbsValue::Int(_) => None,
        }
    }

    /// Whether the concrete `v` is admitted.
    pub fn contains(&self, v: Value) -> bool {
        match (self, v) {
            (AbsValue::Bottom, _) => false,
            (AbsValue::Any, _) => true,
            (AbsValue::Int(i), Value::I(x)) => i.contains(x),
            (AbsValue::Float(f), Value::F(x)) => f.contains(x),
            _ => false,
        }
    }

    /// Least upper bound, in place. Returns whether `self` changed.
    fn join_in_place(&mut self, o: &AbsValue) -> bool {
        let next = match (&*self, o) {
            (AbsValue::Bottom, x) => *x,
            (_, AbsValue::Bottom) => *self,
            (AbsValue::Any, _) | (_, AbsValue::Any) => AbsValue::Any,
            (AbsValue::Int(a), AbsValue::Int(b)) => AbsValue::Int(a.join(b)),
            (AbsValue::Float(a), AbsValue::Float(b)) => AbsValue::Float(a.join(b)),
            _ => AbsValue::Any,
        };
        let changed = next != *self;
        *self = next;
        changed
    }

    /// Widening: join, then jump any bound that moved to the next rung
    /// of a fixed threshold ladder, so ascending chains are finite.
    fn widen_in_place(&mut self, o: &AbsValue) -> bool {
        let old = *self;
        if !self.join_in_place(o) {
            return false;
        }
        match (&old, &mut *self) {
            (AbsValue::Int(prev), AbsValue::Int(j)) => {
                if j.lo < prev.lo {
                    j.lo = int_ladder_down(j.lo);
                }
                if j.hi > prev.hi {
                    j.hi = int_ladder_up(j.hi);
                }
            }
            (AbsValue::Float(prev), AbsValue::Float(j)) => {
                if j.lo < prev.lo {
                    j.lo = float_ladder_down(j.lo);
                }
                if j.hi > prev.hi {
                    j.hi = float_ladder_up(j.hi);
                }
            }
            // Kind changes (⊥ → value, Int/Float → Any) are finite.
            _ => {}
        }
        true
    }

    /// Narrowing: plain intersection with the freshly recomputed value
    /// (both sides over-approximate the least fixpoint, so their meet
    /// still does). Returns whether `self` changed.
    fn narrow_in_place(&mut self, o: &AbsValue) -> bool {
        let next = match (&*self, o) {
            (AbsValue::Bottom, _) | (_, AbsValue::Bottom) => AbsValue::Bottom,
            (AbsValue::Any, x) => *x,
            (x, AbsValue::Any) => *x,
            (AbsValue::Int(a), AbsValue::Int(b)) => AbsValue::int(a.meet(b)),
            (AbsValue::Float(a), AbsValue::Float(b)) => AbsValue::float(a.meet(b)),
            _ => AbsValue::Bottom,
        };
        let changed = next != *self;
        *self = next;
        changed
    }
}

const INT_LADDER: [i64; 9] = [0, 1, 7, 15, 63, 255, 1023, 65_535, (1 << 20) - 1];

fn int_ladder_up(v: i64) -> i64 {
    for t in INT_LADDER {
        if v <= t {
            return t;
        }
    }
    IntInterval::FULL.hi
}

fn int_ladder_down(v: i64) -> i64 {
    for t in INT_LADDER {
        if v >= -t {
            return -t;
        }
    }
    IntInterval::FULL.lo
}

const FLOAT_LADDER: [f32; 6] = [0.0, 1.0, 256.0, 65_536.0, 1.8446744e19, f32::MAX];

fn float_ladder_up(v: f32) -> f32 {
    for t in FLOAT_LADDER {
        if v <= t {
            return t;
        }
    }
    f32::INFINITY
}

fn float_ladder_down(v: f32) -> f32 {
    for t in FLOAT_LADDER {
        if v >= -t {
            return -t;
        }
    }
    f32::NEG_INFINITY
}

// ---------------------------------------------------------------------
// Transfer functions
// ---------------------------------------------------------------------

fn ibin(op: IBinOp, a: IntInterval, b: IntInterval) -> IntInterval {
    match op {
        IBinOp::Add => IntInterval::wrapping(a.lo + b.lo, a.hi + b.hi),
        IBinOp::Sub => IntInterval::wrapping(a.lo - b.hi, a.hi - b.lo),
        IBinOp::Mul => {
            let c = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            IntInterval::wrapping(
                c.iter().copied().min().unwrap(),
                c.iter().copied().max().unwrap(),
            )
        }
        IBinOp::Shl => {
            // wrapping_shl masks the shift to 0..=31; only a provably
            // in-range shift keeps a meaningful bound.
            if b.lo < 0 || b.hi > 31 {
                return IntInterval::FULL;
            }
            let (mut lo, mut hi) = (i64::MAX, i64::MIN);
            for s in b.lo..=b.hi {
                for x in [a.lo, a.hi] {
                    let v = x << s;
                    if !(i32::MIN as i64..=i32::MAX as i64).contains(&v) {
                        return IntInterval::FULL;
                    }
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            IntInterval { lo, hi }
        }
        IBinOp::Shr => {
            // Arithmetic shift never overflows; an out-of-range shift
            // amount is masked, so fall back to the hull over all 32.
            let (slo, shi) = if b.lo >= 0 && b.hi <= 31 {
                (b.lo, b.hi)
            } else {
                (0, 31)
            };
            let (mut lo, mut hi) = (i64::MAX, i64::MIN);
            for s in slo..=shi {
                for x in [a.lo, a.hi] {
                    let v = (x as i32) >> (s as u32);
                    lo = lo.min(v as i64);
                    hi = hi.max(v as i64);
                }
            }
            IntInterval { lo, hi }
        }
        IBinOp::And => {
            // x & y with a non-negative operand is within [0, that
            // operand]; both signs unknown admits anything.
            let bound = match (a.lo >= 0, b.lo >= 0) {
                (true, true) => a.hi.min(b.hi),
                (true, false) => a.hi,
                (false, true) => b.hi,
                (false, false) => return IntInterval::FULL,
            };
            IntInterval { lo: 0, hi: bound }
        }
        IBinOp::Or => {
            if a.lo >= 0 && b.lo >= 0 {
                let m = a.hi.max(b.hi);
                let bits = 64 - (m as u64).leading_zeros();
                IntInterval {
                    lo: a.lo.max(b.lo),
                    hi: (1i64 << bits) - 1,
                }
            } else {
                IntInterval::FULL
            }
        }
        IBinOp::Rem => {
            // rem-by-zero yields 0 in this IR; otherwise the result has
            // |r| ≤ min(|x|, max|y| − 1) and the sign of x.
            let m = a_abs_max(b).max(1) - 1;
            let lo = if a.lo >= 0 { 0 } else { a.lo.max(-m) };
            let hi = if a.hi <= 0 { 0 } else { a.hi.min(m) };
            IntInterval { lo, hi }
        }
    }
}

fn a_abs_max(i: IntInterval) -> i64 {
    i.lo.abs().max(i.hi.abs())
}

/// The 0/1 result interval of an integer comparison, `None` when no
/// outcome is possible (empty operands).
fn cmp_i(op: CmpOp, a: IntInterval, b: IntInterval) -> IntInterval {
    let (can_true, can_false) = match op {
        CmpOp::Lt => (a.lo < b.hi, a.hi >= b.lo),
        CmpOp::Le => (a.lo <= b.hi, a.hi > b.lo),
        CmpOp::Gt => (a.hi > b.lo, a.lo <= b.hi),
        CmpOp::Ge => (a.hi >= b.lo, a.lo < b.hi),
        CmpOp::Eq => (a.meet(&b).is_some(), !(a.is_exact().is_some() && a == b)),
        CmpOp::Ne => (!(a.is_exact().is_some() && a == b), a.meet(&b).is_some()),
    };
    IntInterval {
        lo: if can_false { 0 } else { 1 },
        hi: if can_true { 1 } else { 0 },
    }
}

/// The 0/1 result interval of a float comparison (NaN makes the ordered
/// predicates false and `Ne` true).
fn cmp_f(op: CmpOp, a: FloatInterval, b: FloatInterval) -> Option<IntInterval> {
    let nan_possible = a.nan || b.nan;
    let both_numeric = !a.numeric_empty() && !b.numeric_empty();
    let (mut can_true, mut can_false) = (false, false);
    if both_numeric {
        let (t, f) = match op {
            CmpOp::Lt => (a.lo < b.hi, a.hi >= b.lo),
            CmpOp::Le => (a.lo <= b.hi, a.hi > b.lo),
            CmpOp::Gt => (a.hi > b.lo, a.lo <= b.hi),
            CmpOp::Ge => (a.hi >= b.lo, a.lo < b.hi),
            CmpOp::Eq => (
                !a.meet(&b).numeric_empty(),
                !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
            ),
            CmpOp::Ne => (
                !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
                !a.meet(&b).numeric_empty(),
            ),
        };
        can_true |= t;
        can_false |= f;
    }
    if nan_possible {
        if op == CmpOp::Ne {
            can_true = true;
        } else {
            can_false = true;
        }
    }
    (can_true || can_false).then_some(IntInterval {
        lo: if can_false { 0 } else { 1 },
        hi: if can_true { 1 } else { 0 },
    })
}

/// Hull over corner evaluations, treating NaN corners as a NaN
/// possibility rather than a bound.
fn corner_hull(corners: &[f32]) -> FloatInterval {
    let mut r = FloatInterval::empty_numeric(false);
    for &c in corners {
        if c.is_nan() {
            r.nan = true;
        } else {
            r.lo = r.lo.min(c);
            r.hi = r.hi.max(c);
        }
    }
    r
}

#[allow(clippy::similar_names)]
fn fbin(op: FBinOp, a: FloatInterval, b: FloatInterval) -> FloatInterval {
    let both = !a.numeric_empty() && !b.numeric_empty();
    let mut r = match op {
        FBinOp::Add if both => corner_hull_or_full(&[a.lo + b.lo, a.hi + b.hi]),
        FBinOp::Sub if both => corner_hull_or_full(&[a.lo - b.hi, a.hi - b.lo]),
        FBinOp::Mul if both => {
            let mut r = corner_hull_or_full(&[a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]);
            // 0 × ∞ can arise away from the corners.
            if (a.has_zero() && b.has_inf()) || (b.has_zero() && a.has_inf()) {
                r.nan = true;
            }
            r
        }
        FBinOp::Div if both => {
            if b.has_zero() {
                // Divisors arbitrarily close to zero blow past any
                // corner bound; 0/0 is the only NaN case.
                FloatInterval {
                    lo: f32::NEG_INFINITY,
                    hi: f32::INFINITY,
                    nan: a.has_zero(),
                }
            } else {
                let mut r =
                    corner_hull_or_full(&[a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi]);
                if a.has_inf() && b.has_inf() {
                    r.nan = true;
                }
                r
            }
        }
        // min/max pass the non-NaN operand through when one side is NaN,
        // so a NaN-only side contributes the other side's numeric range.
        FBinOp::Min => {
            let mut r = FloatInterval::empty_numeric(a.nan && b.nan);
            if both {
                r = r.join(&FloatInterval {
                    lo: a.lo.min(b.lo),
                    hi: a.hi.min(b.hi),
                    nan: r.nan,
                });
            }
            if a.nan && !b.numeric_empty() {
                r = r.join(&FloatInterval { nan: r.nan, ..b });
            }
            if b.nan && !a.numeric_empty() {
                r = r.join(&FloatInterval { nan: r.nan, ..a });
            }
            return r;
        }
        FBinOp::Max => {
            let mut r = FloatInterval::empty_numeric(a.nan && b.nan);
            if both {
                r = r.join(&FloatInterval {
                    lo: a.lo.max(b.lo),
                    hi: a.hi.max(b.hi),
                    nan: r.nan,
                });
            }
            if a.nan && !b.numeric_empty() {
                r = r.join(&FloatInterval { nan: r.nan, ..b });
            }
            if b.nan && !a.numeric_empty() {
                r = r.join(&FloatInterval { nan: r.nan, ..a });
            }
            return r;
        }
        FBinOp::Atan2 if both => {
            let bound = pad_up(std::f32::consts::PI);
            FloatInterval {
                lo: -bound,
                hi: bound,
                nan: false,
            }
        }
        _ => FloatInterval::empty_numeric(false),
    };
    r.nan |= a.nan || b.nan;
    r
}

/// Corner hull; a NaN corner (∞ − ∞ and friends) admits NaN *and* voids
/// the bounds, since nearby non-corner inputs reach arbitrary values.
fn corner_hull_or_full(corners: &[f32]) -> FloatInterval {
    let r = corner_hull(corners);
    if r.nan {
        FloatInterval::TOP
    } else {
        r
    }
}

fn fun(op: FUnOp, a: FloatInterval) -> FloatInterval {
    let num = !a.numeric_empty();
    let mut r = match op {
        FUnOp::Neg if num => FloatInterval {
            lo: -a.hi,
            hi: -a.lo,
            nan: false,
        },
        FUnOp::Abs if num => {
            if a.lo >= 0.0 {
                FloatInterval { nan: false, ..a }
            } else if a.hi <= 0.0 {
                FloatInterval {
                    lo: -a.hi,
                    hi: -a.lo,
                    nan: false,
                }
            } else {
                FloatInterval {
                    lo: 0.0,
                    hi: (-a.lo).max(a.hi),
                    nan: false,
                }
            }
        }
        FUnOp::Sqrt if num => {
            // Negative inputs yield NaN; sqrt is correctly rounded and
            // monotone, so endpoints are exact.
            if a.hi < 0.0 {
                FloatInterval::empty_numeric(true)
            } else {
                FloatInterval {
                    lo: a.lo.max(0.0).sqrt(),
                    hi: a.hi.sqrt(),
                    nan: a.lo < 0.0,
                }
            }
        }
        FUnOp::Sin | FUnOp::Cos if num => FloatInterval {
            lo: -1.0,
            hi: 1.0,
            nan: a.has_inf(),
        },
        FUnOp::Floor if num => FloatInterval {
            lo: a.lo.floor(),
            hi: a.hi.floor(),
            nan: false,
        },
        FUnOp::Exp if num => FloatInterval {
            lo: pad_down(a.lo.exp()).max(0.0),
            hi: pad_up(a.hi.exp()),
            nan: false,
        },
        FUnOp::Asin if num => {
            let c = a.meet(&FloatInterval {
                lo: -1.0,
                hi: 1.0,
                nan: false,
            });
            let out_of_domain = a.lo < -1.0 || a.hi > 1.0;
            if c.numeric_empty() {
                FloatInterval::empty_numeric(true)
            } else {
                FloatInterval {
                    lo: pad_down(c.lo.asin()),
                    hi: pad_up(c.hi.asin()),
                    nan: out_of_domain,
                }
            }
        }
        FUnOp::Acos if num => {
            let c = a.meet(&FloatInterval {
                lo: -1.0,
                hi: 1.0,
                nan: false,
            });
            let out_of_domain = a.lo < -1.0 || a.hi > 1.0;
            if c.numeric_empty() {
                FloatInterval::empty_numeric(true)
            } else {
                // acos is decreasing.
                FloatInterval {
                    lo: pad_down(c.hi.acos()),
                    hi: pad_up(c.lo.acos()),
                    nan: out_of_domain,
                }
            }
        }
        FUnOp::Atan if num => FloatInterval {
            lo: pad_down(a.lo.atan()),
            hi: pad_up(a.hi.atan()),
            nan: false,
        },
        _ => FloatInterval::empty_numeric(false),
    };
    r.nan |= a.nan;
    r
}

/// `f32 as i32` over an interval: truncating, saturating, NaN → 0.
fn f_to_i(a: FloatInterval) -> Option<IntInterval> {
    let mut r: Option<IntInterval> = None;
    if !a.numeric_empty() {
        // `as` saturates at the type bounds and truncation is monotone.
        r = Some(IntInterval {
            lo: (a.lo as i32) as i64,
            hi: (a.hi as i32) as i64,
        });
    }
    if a.nan {
        let zero = IntInterval::exact(0);
        r = Some(match r {
            Some(i) => i.join(&zero),
            None => zero,
        });
    }
    r
}

// ---------------------------------------------------------------------
// The domain
// ---------------------------------------------------------------------

/// Per-block abstract state: one [`AbsValue`] per register, plus (for
/// region entries) one [`FloatInterval`] per scratch word.
#[derive(Debug, Clone)]
pub struct IntervalState {
    /// Register abstractions, indexed by register number.
    pub regs: Vec<AbsValue>,
    /// Scratch word abstractions; empty when memory is not modeled.
    pub mem: Vec<FloatInterval>,
}

impl IntervalState {
    /// The abstraction of register `r` (⊥ for out-of-range indices).
    pub fn get(&self, r: Reg) -> AbsValue {
        self.regs
            .get(r.0 as usize)
            .copied()
            .unwrap_or(AbsValue::Bottom)
    }

    fn set(&mut self, r: Reg, v: AbsValue) {
        if let Some(slot) = self.regs.get_mut(r.0 as usize) {
            *slot = v;
        }
    }
}

struct IntervalDomain<'a> {
    f: &'a Function,
    cfg: Cfg,
    params: Vec<AbsValue>,
    space: usize,
    /// `Some(words)` enables the word-granular scratch model.
    mem_words: Option<usize>,
    /// Per-instruction: whether a `Call` here may write memory
    /// (transitively). Only populated when memory is modeled.
    call_writes_mem: Vec<bool>,
}

impl IntervalDomain<'_> {
    #[allow(clippy::too_many_lines)]
    fn transfer_inst(&self, st: &mut IntervalState, i: usize) {
        let inst = &self.f.insts()[i];
        match inst {
            Inst::ConstF { dst, value } => {
                st.set(*dst, AbsValue::float(FloatInterval::exact(*value)))
            }
            Inst::ConstI { dst, value } => st.set(*dst, AbsValue::Int(IntInterval::exact(*value))),
            Inst::Mov { dst, src } => {
                let v = st.get(*src);
                st.set(*dst, v);
            }
            Inst::FBin { op, dst, a, b } => {
                let v = match (st.get(*a).as_float(), st.get(*b).as_float()) {
                    (Some(x), Some(y)) => AbsValue::float(fbin(*op, x, y)),
                    _ => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::FUn { op, dst, a } => {
                let v = match st.get(*a).as_float() {
                    Some(x) => AbsValue::float(fun(*op, x)),
                    None => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::IBin { op, dst, a, b } => {
                let v = match (st.get(*a).as_int(), st.get(*b).as_int()) {
                    (Some(x), Some(y)) => AbsValue::Int(ibin(*op, x, y)),
                    _ => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::CmpF { op, dst, a, b } => {
                let v = match (st.get(*a).as_float(), st.get(*b).as_float()) {
                    (Some(x), Some(y)) => AbsValue::int(cmp_f(*op, x, y)),
                    _ => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::CmpI { op, dst, a, b } => {
                let v = match (st.get(*a).as_int(), st.get(*b).as_int()) {
                    (Some(x), Some(y)) => AbsValue::Int(cmp_i(*op, x, y)),
                    _ => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::IToF { dst, src } => {
                let v = match st.get(*src).as_int() {
                    // i32 → f32 rounding is monotone, endpoints suffice.
                    Some(x) => AbsValue::Float(FloatInterval {
                        lo: x.lo as f32,
                        hi: x.hi as f32,
                        nan: false,
                    }),
                    None => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::FToI { dst, src } => {
                let v = match st.get(*src).as_float() {
                    Some(x) => AbsValue::int(f_to_i(x)),
                    None => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::BitsToF { dst, src } => {
                let v = match st.get(*src).as_int() {
                    Some(x) => match x.is_exact() {
                        Some(bits) => {
                            AbsValue::float(FloatInterval::exact(f32::from_bits(bits as u32)))
                        }
                        None => AbsValue::Float(FloatInterval::TOP),
                    },
                    None => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::FToBits { dst, src } => {
                let v = match st.get(*src).as_float() {
                    Some(x) => {
                        if !x.nan && x.lo == x.hi {
                            AbsValue::Int(IntInterval::exact(x.lo.to_bits() as i32))
                        } else {
                            AbsValue::Int(IntInterval::FULL)
                        }
                    }
                    None => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::Load { dst, base, offset } => {
                let v = match st.get(*base).as_int() {
                    Some(b) => self.load_value(st, b, *offset),
                    None => AbsValue::Bottom,
                };
                st.set(*dst, v);
            }
            Inst::Store { src, base, offset } => {
                if self.mem_words.is_some() {
                    if let (Some(b), Some(val)) = (st.get(*base).as_int(), st.get(*src).as_float())
                    {
                        self.store_value(st, b, *offset, val);
                    }
                }
            }
            Inst::Call { rets, .. } => {
                for r in rets {
                    st.set(*r, AbsValue::Any);
                }
                if self.mem_words.is_some() && self.call_writes_mem.get(i).copied().unwrap_or(true)
                {
                    for w in &mut st.mem {
                        *w = FloatInterval::TOP;
                    }
                }
            }
            Inst::DeqD { dst } => st.set(*dst, AbsValue::Float(FloatInterval::TOP)),
            Inst::DeqC { dst } => st.set(*dst, AbsValue::Int(IntInterval::FULL)),
            Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::Ret { .. }
            | Inst::EnqD { .. }
            | Inst::EnqC { .. } => {}
        }
    }

    fn load_value(&self, st: &IntervalState, base: IntInterval, offset: i32) -> AbsValue {
        let Some(words) = self.mem_words else {
            return AbsValue::Float(FloatInterval::TOP);
        };
        let lo = (base.lo + offset as i64).max(0);
        let hi = (base.hi + offset as i64).min(words as i64 - 1);
        if lo > hi {
            // Every possible address faults.
            return AbsValue::Bottom;
        }
        let mut v = FloatInterval::empty_numeric(false);
        for w in lo as usize..=hi as usize {
            v = v.join(&st.mem[w]);
        }
        AbsValue::float(v)
    }

    fn store_value(
        &self,
        st: &mut IntervalState,
        base: IntInterval,
        offset: i32,
        val: FloatInterval,
    ) {
        let words = self.mem_words.unwrap_or(0) as i64;
        let alo = base.lo + offset as i64;
        let ahi = base.hi + offset as i64;
        let lo = alo.max(0);
        let hi = ahi.min(words - 1);
        if lo > hi {
            return;
        }
        if alo == ahi {
            // Exactly one possible address: strong update.
            st.mem[alo as usize] = val;
        } else {
            for w in lo as usize..=hi as usize {
                st.mem[w] = st.mem[w].join(&val);
            }
        }
    }

    /// Refines `st` along a branch edge: the condition register itself,
    /// and — when the condition is a compare whose operands are stable
    /// through the rest of the block — the compared registers.
    fn refine_branch(&self, st: &mut IntervalState, block: usize, cond: Reg, taken: bool) {
        let blk = &self.cfg.blocks()[block];
        let last = blk.end - 1;

        // The branch read `cond` as an i32, so a float-only value means
        // this edge is never taken without faulting first.
        match st.get(cond).as_int() {
            None => st.set(cond, AbsValue::Bottom),
            Some(ci) => {
                let refined = if taken {
                    ci.exclude(0)
                } else {
                    ci.meet(&IntInterval::exact(0))
                };
                st.set(cond, AbsValue::int(refined));
            }
        }

        // Find the (lexically last) in-block definition of the condition.
        let Some(def) = blk
            .range()
            .take(last - blk.start)
            .rev()
            .find(|&j| defs_of(&self.f.insts()[j]).contains(&cond))
        else {
            return;
        };
        let stable = |r: Reg| {
            r != cond && !(def + 1..last).any(|j| defs_of(&self.f.insts()[j]).contains(&r))
        };
        match &self.f.insts()[def] {
            Inst::CmpI { op, a, b, .. } if stable(*a) && stable(*b) => {
                let (Some(ai), Some(bi)) = (st.get(*a).as_int(), st.get(*b).as_int()) else {
                    return;
                };
                let effective = if taken { *op } else { negate(*op) };
                let (ra, rb) = refine_int(effective, ai, bi);
                st.set(*a, AbsValue::int(ra));
                st.set(*b, AbsValue::int(rb));
            }
            Inst::CmpF { op, a, b, .. } if stable(*a) && stable(*b) => {
                let (Some(af), Some(bf)) = (st.get(*a).as_float(), st.get(*b).as_float()) else {
                    return;
                };
                if taken {
                    // The predicate held, so both operands were ordered.
                    let (ra, rb) = refine_float(*op, af, bf);
                    st.set(*a, AbsValue::float(ra));
                    st.set(*b, AbsValue::float(rb));
                } else if *op == CmpOp::Ne {
                    // ¬(a ≠ b): `Ne` is true on any NaN operand, so this
                    // edge carries NaN-free, numerically equal values.
                    let (ra, rb) = refine_float(CmpOp::Eq, af, bf);
                    st.set(*a, AbsValue::float(FloatInterval { nan: false, ..ra }));
                    st.set(*b, AbsValue::float(FloatInterval { nan: false, ..rb }));
                } else {
                    // ¬(a ⋈ b) means the negated predicate *or* an
                    // unordered pair. An operand's *numeric* part still
                    // refines — but only when the other operand cannot
                    // be NaN (a NaN there falsifies the predicate with
                    // this operand unconstrained). NaN flags are kept:
                    // a NaN operand flows through the edge untouched.
                    let (ra, rb) = refine_float(negate(*op), af, bf);
                    if !bf.nan {
                        st.set(*a, AbsValue::float(FloatInterval { nan: af.nan, ..ra }));
                    }
                    if !af.nan {
                        st.set(*b, AbsValue::float(FloatInterval { nan: bf.nan, ..rb }));
                    }
                }
            }
            _ => {}
        }
    }
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
    }
}

/// Refined operand intervals assuming `a ⋈ b` held (integer form).
fn refine_int(
    op: CmpOp,
    a: IntInterval,
    b: IntInterval,
) -> (Option<IntInterval>, Option<IntInterval>) {
    match op {
        CmpOp::Lt => (a.clamp(i64::MIN, b.hi - 1), b.clamp(a.lo + 1, i64::MAX)),
        CmpOp::Le => (a.clamp(i64::MIN, b.hi), b.clamp(a.lo, i64::MAX)),
        CmpOp::Gt => (a.clamp(b.lo + 1, i64::MAX), b.clamp(i64::MIN, a.hi - 1)),
        CmpOp::Ge => (a.clamp(b.lo, i64::MAX), b.clamp(i64::MIN, a.hi)),
        CmpOp::Eq => {
            let m = a.meet(&b);
            (m, m)
        }
        CmpOp::Ne => {
            let ra = match b.is_exact() {
                Some(v) => a.exclude(v as i64),
                None => Some(a),
            };
            let rb = match a.is_exact() {
                Some(v) => b.exclude(v as i64),
                None => Some(b),
            };
            (ra, rb)
        }
    }
}

/// Refined operand intervals assuming `a ⋈ b` held (float form; a held
/// ordered predicate implies both sides are NaN-free).
fn refine_float(op: CmpOp, a: FloatInterval, b: FloatInterval) -> (FloatInterval, FloatInterval) {
    let bound = |lo: f32, hi: f32| FloatInterval { lo, hi, nan: false };
    match op {
        CmpOp::Lt | CmpOp::Le => (
            a.meet(&bound(f32::NEG_INFINITY, b.hi)),
            b.meet(&bound(a.lo, f32::INFINITY)),
        ),
        CmpOp::Gt | CmpOp::Ge => (
            a.meet(&bound(b.lo, f32::INFINITY)),
            b.meet(&bound(f32::NEG_INFINITY, a.hi)),
        ),
        CmpOp::Eq => {
            let m = a.meet(&b);
            (m, m)
        }
        // `a ≠ b` holds for NaN operands too: no refinement.
        CmpOp::Ne => (a, b),
    }
}

impl AbstractDomain for IntervalDomain<'_> {
    type State = IntervalState;

    fn entry_state(&self) -> IntervalState {
        // Non-parameter registers are zero-initialized i32 by the
        // interpreter; scratch memory is zero-filled f32.
        let mut regs = vec![AbsValue::Int(IntInterval::exact(0)); self.space];
        for (p, slot) in regs.iter_mut().enumerate().take(self.f.n_params()) {
            *slot = self.params.get(p).copied().unwrap_or(AbsValue::Any);
        }
        let mem = match self.mem_words {
            Some(w) => vec![FloatInterval::exact(0.0); w],
            None => Vec::new(),
        };
        IntervalState { regs, mem }
    }

    fn transfer_block(&self, block: usize, input: &IntervalState) -> IntervalState {
        let mut st = input.clone();
        for i in self.cfg.blocks()[block].range() {
            self.transfer_inst(&mut st, i);
        }
        st
    }

    fn edge_state(&self, block: usize, succ: usize, output: &IntervalState) -> IntervalState {
        let blk = &self.cfg.blocks()[block];
        let last = blk.end - 1;
        let mut st = output.clone();
        if let Inst::Branch { cond, target } = &self.f.insts()[last] {
            let n = self.f.len();
            let ft = (blk.end < n).then(|| self.cfg.block_of(blk.end));
            let tk = ((target.0 as usize) < n).then(|| self.cfg.block_of(target.0 as usize));
            if ft != tk {
                self.refine_branch(&mut st, block, *cond, tk == Some(succ));
            }
        }
        st
    }

    fn is_infeasible(&self, state: &IntervalState) -> bool {
        // Every register concretely holds *some* value and scratch words
        // always hold some f32, so a ⊥ register or an empty memory word
        // means no concrete execution reaches this edge — typically a
        // branch refinement that contradicted the known range (zero-trip
        // loop bodies, constant-false arms).
        state.regs.iter().any(|r| matches!(r, AbsValue::Bottom))
            || state.mem.iter().any(|m| m.is_empty())
    }

    fn join(&self, into: &mut IntervalState, incoming: &IntervalState) -> bool {
        let mut changed = false;
        for (a, b) in into.regs.iter_mut().zip(&incoming.regs) {
            changed |= a.join_in_place(b);
        }
        for (a, b) in into.mem.iter_mut().zip(&incoming.mem) {
            let next = a.join(b);
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    fn widen(&self, into: &mut IntervalState, incoming: &IntervalState) -> bool {
        let mut changed = false;
        for (a, b) in into.regs.iter_mut().zip(&incoming.regs) {
            changed |= a.widen_in_place(b);
        }
        for (a, b) in into.mem.iter_mut().zip(&incoming.mem) {
            let joined = a.join(b);
            if joined != *a {
                let mut next = joined;
                if next.lo < a.lo {
                    next.lo = float_ladder_down(next.lo);
                }
                if next.hi > a.hi {
                    next.hi = float_ladder_up(next.hi);
                }
                *a = next;
                changed = true;
            }
        }
        changed
    }

    fn narrow(&self, into: &mut IntervalState, incoming: &IntervalState) -> bool {
        let mut changed = false;
        for (a, b) in into.regs.iter_mut().zip(&incoming.regs) {
            changed |= a.narrow_in_place(b);
        }
        for (a, b) in into.mem.iter_mut().zip(&incoming.mem) {
            let next = a.meet(b);
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

// ---------------------------------------------------------------------
// Public analysis results
// ---------------------------------------------------------------------

/// Abstract values observed at one instruction: operand values just
/// before it executes and definition values just after.
#[derive(Debug, Clone, Default)]
pub struct InstFacts {
    /// Whether the abstract execution reaches this instruction at all.
    pub reachable: bool,
    /// `(register, value-before)` for each register the instruction reads.
    pub pre: Vec<(Reg, AbsValue)>,
    /// `(register, value-after)` for each register the instruction writes.
    pub post: Vec<(Reg, AbsValue)>,
}

/// Converged interval facts for one function.
#[derive(Debug, Clone)]
pub struct IntervalAnalysis {
    facts: Vec<InstFacts>,
    block_in: Vec<Option<IntervalState>>,
    passes: usize,
}

impl IntervalAnalysis {
    /// Analyzes `f` in isolation: no scratch model, loads return any
    /// float. `params` gives the abstract values of the parameters
    /// (missing entries default to [`AbsValue::Any`]).
    pub fn of_function(f: &Function, params: &[AbsValue]) -> IntervalAnalysis {
        Self::build(f, params, None, Vec::new())
    }

    /// Analyzes a region entry function: scratch memory starts
    /// zero-filled (the `RegionSpec` evaluation contract) and is modeled
    /// word-by-word up to a size cap. `program` is consulted for which
    /// calls may write memory.
    pub fn of_region(
        program: &Program,
        f: &Function,
        params: &[AbsValue],
        scratch_words: usize,
    ) -> IntervalAnalysis {
        if scratch_words == 0 || scratch_words > MEM_MODEL_MAX_WORDS {
            return Self::build(f, params, None, Vec::new());
        }
        let call_writes_mem = f
            .insts()
            .iter()
            .map(|inst| match inst {
                Inst::Call { func, .. } => {
                    let fx = region_effects(program, *func);
                    fx.writes_memory || fx.calls_unknown
                }
                _ => false,
            })
            .collect();
        Self::build(f, params, Some(scratch_words), call_writes_mem)
    }

    fn build(
        f: &Function,
        params: &[AbsValue],
        mem_words: Option<usize>,
        call_writes_mem: Vec<bool>,
    ) -> IntervalAnalysis {
        let cfg = Cfg::build(f);
        let domain = IntervalDomain {
            f,
            cfg,
            params: params.to_vec(),
            space: reg_space(f),
            mem_words,
            call_writes_mem,
        };
        let sol = absint::solve(&domain.cfg, &domain, &SolverConfig::default());

        // Replay each block once to snapshot per-instruction facts.
        let mut facts = vec![InstFacts::default(); f.len()];
        for (b, blk) in domain.cfg.blocks().iter().enumerate() {
            let Some(input) = &sol.block_in[b] else {
                continue;
            };
            let mut st = input.clone();
            for i in blk.range() {
                let inst = &f.insts()[i];
                let pre = uses_of(inst).into_iter().map(|r| (r, st.get(r))).collect();
                domain.transfer_inst(&mut st, i);
                let post = defs_of(inst).into_iter().map(|r| (r, st.get(r))).collect();
                facts[i] = InstFacts {
                    reachable: true,
                    pre,
                    post,
                };
            }
        }
        IntervalAnalysis {
            facts,
            block_in: sol.block_in,
            passes: sol.passes,
        }
    }

    /// Whether the abstract execution reaches instruction `i`.
    pub fn reachable(&self, i: usize) -> bool {
        self.facts.get(i).is_some_and(|f| f.reachable)
    }

    /// The abstract value of `r` just before instruction `i` executes
    /// (recorded for the registers `i` reads; ⊥ otherwise).
    pub fn value_before(&self, i: usize, r: Reg) -> AbsValue {
        self.facts
            .get(i)
            .and_then(|f| f.pre.iter().find(|(reg, _)| *reg == r))
            .map_or(AbsValue::Bottom, |(_, v)| *v)
    }

    /// The abstract value of `r` just after instruction `i` executes
    /// (recorded for the registers `i` writes; ⊥ otherwise).
    pub fn value_after(&self, i: usize, r: Reg) -> AbsValue {
        self.facts
            .get(i)
            .and_then(|f| f.post.iter().find(|(reg, _)| *reg == r))
            .map_or(AbsValue::Bottom, |(_, v)| *v)
    }

    /// The abstract value of `r` at the entry of block `b` (block ids as
    /// assigned by [`Cfg::build`] on the same function).
    pub fn at_block_entry(&self, b: usize, r: Reg) -> AbsValue {
        self.block_in
            .get(b)
            .and_then(|s| s.as_ref())
            .map_or(AbsValue::Bottom, |s| s.get(r))
    }

    /// The per-instruction facts, indexed by instruction.
    pub fn facts(&self) -> &[InstFacts] {
        &self.facts
    }

    /// Ascending solver passes taken (diagnostic).
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// The word-address range a load/store at `i` may touch, from the
    /// base operand's interval plus the constant offset. `None` when `i`
    /// is not a memory access, is unreachable, or the base register
    /// cannot hold an integer (so the access always faults first).
    pub fn addr_range(&self, i: usize, inst: &Inst) -> Option<(i64, i64)> {
        let (base, offset) = match inst {
            Inst::Load { base, offset, .. } | Inst::Store { base, offset, .. } => (*base, *offset),
            _ => return None,
        };
        if !self.reachable(i) {
            return None;
        }
        let b = self.value_before(i, base).as_int()?;
        Some((b.lo + offset as i64, b.hi + offset as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder};

    fn top_params(n: usize) -> Vec<AbsValue> {
        vec![AbsValue::top_float(); n]
    }

    #[test]
    fn straight_line_constant_ranges() {
        let mut b = FunctionBuilder::new("c", 0);
        let two = b.consti(2);
        let three = b.consti(3);
        let six = b.imul(two, three);
        let out = b.itof(six);
        b.ret(&[out]);
        let f = b.build().unwrap();
        let ia = IntervalAnalysis::of_function(&f, &[]);
        assert_eq!(ia.value_after(2, six), AbsValue::Int(IntInterval::exact(6)));
        assert_eq!(
            ia.value_after(3, out),
            AbsValue::Float(FloatInterval::exact(6.0))
        );
    }

    #[test]
    fn counting_loop_converges_to_exact_bounds() {
        // for (i = 0; i < 8; i++) {}; return i  — i is [0,8] at exit.
        let mut b = FunctionBuilder::new("loop8", 0);
        let i = b.consti(0);
        let eight = b.consti(8);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, eight);
        b.branch_if(done, exit);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(exit);
        let out = b.itof(i);
        b.ret(&[out]);
        let f = b.build().unwrap();
        let ia = IntervalAnalysis::of_function(&f, &[]);
        // At the itof, the exit-edge refinement pins i to exactly 8.
        let at_exit = ia.value_before(f.len() - 2, i);
        assert_eq!(at_exit, AbsValue::Int(IntInterval::exact(8)));
        // Inside the body (the iadd at index 5), i is refined to [0,7].
        let body_i = ia.value_before(5, i);
        assert_eq!(body_i, AbsValue::Int(IntInterval { lo: 0, hi: 7 }));
    }

    #[test]
    fn widening_caps_unbounded_loops() {
        // while (true) i++ — must converge (to the full range) rather
        // than iterate forever.
        let mut b = FunctionBuilder::new("unb", 0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        b.bind(top);
        b.iadd_into(i, one);
        b.jump(top);
        let f = b.build().unwrap();
        let ia = IntervalAnalysis::of_function(&f, &[]);
        assert!(ia.passes() < SolverConfig::default().max_passes);
        let v = ia.value_after(2, i).as_int().unwrap();
        assert!(v.hi >= 1, "{v:?}");
    }

    #[test]
    fn scratch_model_bounds_loaded_values() {
        // store 2.5 at word 3, load it back: the load's interval must
        // contain (only) 2.5 and the initial zeros of other words.
        let mut b = FunctionBuilder::new("mem", 0);
        let v = b.constf(2.5);
        let addr = b.consti(3);
        b.store(v, addr, 0);
        let r = b.load(addr, 0);
        b.ret(&[r]);
        let f = b.build().unwrap();
        let p = {
            let mut p = Program::new();
            p.add_function(f.clone());
            p
        };
        let ia = IntervalAnalysis::of_region(&p, &f, &[], 8);
        assert_eq!(
            ia.value_after(3, r),
            AbsValue::Float(FloatInterval::exact(2.5))
        );
    }

    #[test]
    fn float_params_flow_through_arithmetic() {
        let mut b = FunctionBuilder::new("fp", 1);
        let x = b.param(0);
        let y = b.fmul(x, x);
        b.ret(&[y]);
        let f = b.build().unwrap();
        let ia = IntervalAnalysis::of_function(&f, &top_params(1));
        let v = ia.value_after(0, y).as_float().unwrap();
        assert!(v.nan, "NaN input times itself may be NaN");
        // With a bounded input range the square is bounded too.
        let ia = IntervalAnalysis::of_function(
            &f,
            &[AbsValue::Float(FloatInterval {
                lo: 0.0,
                hi: 4.0,
                nan: false,
            })],
        );
        let v = ia.value_after(0, y).as_float().unwrap();
        assert!(!v.nan);
        assert!(v.lo >= 0.0 && v.hi <= 16.0, "{v:?}");
    }

    #[test]
    fn branch_refinement_splits_sign() {
        // if (x < 0) return -x else return x — both arms non-negative…
        // except NaN falls through unchanged.
        let mut b = FunctionBuilder::new("abs", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let neg = b.new_label();
        b.branch_if(c, neg);
        b.ret(&[x]);
        b.bind(neg);
        let nx = b.fneg(x);
        b.ret(&[nx]);
        let f = b.build().unwrap();
        let ia = IntervalAnalysis::of_function(&f, &top_params(1));
        // Taken edge (x < 0): the negation's input is [-inf, 0], output
        // [0, inf], NaN-free.
        let v = ia.value_after(4, nx).as_float().unwrap();
        assert!(v.lo >= 0.0 && !v.nan, "{v:?}");
        // Fall-through (¬(x<0) includes unordered): x keeps its NaN.
        let ret_x = ia.value_before(3, x).as_float().unwrap();
        assert!(ret_x.nan);
        assert!(ret_x.lo >= 0.0, "{ret_x:?}");
    }

    #[test]
    fn division_by_possible_zero_admits_nan_and_inf() {
        let mut b = FunctionBuilder::new("div", 2);
        let (x, y) = (b.param(0), b.param(1));
        let q = b.fdiv(x, y);
        b.ret(&[q]);
        let f = b.build().unwrap();
        let ia = IntervalAnalysis::of_function(
            &f,
            &[
                AbsValue::Float(FloatInterval {
                    lo: 0.0,
                    hi: 1.0,
                    nan: false,
                }),
                AbsValue::Float(FloatInterval {
                    lo: -1.0,
                    hi: 1.0,
                    nan: false,
                }),
            ],
        );
        let v = ia.value_after(0, q).as_float().unwrap();
        assert!(v.nan, "0/0 must be admitted");
        assert_eq!(v.hi, f32::INFINITY);
    }

    #[test]
    fn interval_contains_matches_concrete_ops() {
        // Spot-check ibin soundness on hand-picked corners.
        let a = IntInterval { lo: -3, hi: 5 };
        let b = IntInterval { lo: 2, hi: 4 };
        for x in -3i32..=5 {
            for y in 2i32..=4 {
                assert!(ibin(IBinOp::Add, a, b).contains(x.wrapping_add(y)));
                assert!(ibin(IBinOp::Mul, a, b).contains(x.wrapping_mul(y)));
                assert!(ibin(IBinOp::Rem, a, b).contains(if y == 0 { 0 } else { x % y }));
                assert!(ibin(IBinOp::Shl, a, b).contains(x.wrapping_shl(y as u32)));
                assert!(ibin(IBinOp::Shr, a, b).contains(x.wrapping_shr(y as u32)));
                assert!(ibin(IBinOp::And, a, b).contains(x & y));
                assert!(ibin(IBinOp::Or, a, b).contains(x | y));
            }
        }
    }

    #[test]
    fn overflow_degrades_to_full_range() {
        let big = IntInterval {
            lo: i32::MAX as i64 - 1,
            hi: i32::MAX as i64,
        };
        assert_eq!(
            ibin(IBinOp::Add, big, IntInterval::exact(5)),
            IntInterval::FULL
        );
    }

    #[test]
    fn nan_only_propagates_through_min_max() {
        let nan = FloatInterval::NAN_ONLY;
        let num = FloatInterval {
            lo: 1.0,
            hi: 2.0,
            nan: false,
        };
        // min(NaN, x) = x in Rust/IEEE-754-2008 semantics.
        let r = fbin(FBinOp::Min, nan, num);
        assert!(!r.nan);
        assert_eq!((r.lo, r.hi), (1.0, 2.0));
        let r = fbin(FBinOp::Min, nan, nan);
        assert!(r.nan && r.numeric_empty());
    }
}

//! Checked execution: a mirror interpreter that asserts, at every
//! register read and write, that the concrete value lies inside the
//! interval inferred by [`IntervalAnalysis`].
//!
//! This is the executable form of the analysis soundness theorem —
//!
//! > for every program point and register, the set of values the
//! > concrete interpreter can observe there is a subset of the inferred
//! > abstract value
//!
//! — and it is what the `interval_soundness` proptests drive across the
//! six Table 1 benchmark regions and randomly generated programs. The
//! mirror reproduces `Interpreter::run` instruction for instruction
//! (wrapping i32 arithmetic, `rem`-by-zero = 0, saturating `f2i`,
//! NaN-aware compares, fault-on-type-mismatch), because the trace-sink
//! machinery of the real interpreter does not carry register values;
//! callers cross-validate by asserting that [`run_checked`] and
//! `Interpreter::run` return identical results.
//!
//! The depth-0 frame is checked against an *entry* analysis (caller-
//! supplied parameter intervals plus the zero-initialized scratch
//! model); every deeper frame — including recursive re-entries of the
//! entry function itself, for which the zeroed-memory assumption would
//! be unsound — is checked against a generic analysis of its function
//! with ⊤ parameters and no memory model.

use std::collections::HashMap;

use super::defuse::{defs_of, uses_of};
use super::interval::{AbsValue, IntervalAnalysis};
use crate::{CmpOp, FBinOp, FUnOp, FuncId, IBinOp, Inst, IrError, Program, Value};

/// Mirrors `Interpreter::MAX_DEPTH`; the cross-validation against the
/// real interpreter would catch a drift.
const MAX_DEPTH: usize = 64;

/// Runs `func` like `Interpreter::run` (zero-filled `memory_words` of
/// scratch, instruction `budget`, no NPU port), panicking if any value
/// the execution observes escapes its inferred interval.
///
/// `entry_params` are the abstract parameter values the depth-0 frame is
/// analyzed under; every `args[i]` must be contained in `entry_params[i]`
/// (that containment is asserted — a violated premise is a caller bug,
/// not an analysis bug).
///
/// # Errors
///
/// Exactly the `IrError`s the real interpreter would produce.
///
/// # Panics
///
/// On any soundness violation: a concrete value outside its interval, or
/// execution reaching an instruction the analysis proved unreachable.
pub fn run_checked(
    program: &Program,
    func: FuncId,
    args: &[Value],
    memory_words: usize,
    budget: u64,
    entry_params: &[AbsValue],
) -> Result<Vec<Value>, IrError> {
    for (i, &a) in args.iter().enumerate() {
        let p = entry_params.get(i).copied().unwrap_or(AbsValue::Any);
        assert!(
            p.contains(a),
            "premise violation: arg {i} = {a:?} outside declared {p:?}"
        );
    }
    let entry_analysis = match program.function_by_index(func.0) {
        Some(f) => IntervalAnalysis::of_region(program, f, entry_params, memory_words),
        None => return Err(IrError::UnknownFunction(func.0)),
    };
    // Generic (⊤-parameter, no-memory) analyses for inner frames, built
    // up front so frames can borrow immutably.
    let generic: HashMap<u32, IntervalAnalysis> = (0..program.len() as u32)
        .filter_map(|i| {
            let f = program.function_by_index(i)?;
            let params = vec![AbsValue::Any; f.n_params()];
            Some((i, IntervalAnalysis::of_function(f, &params)))
        })
        .collect();
    let mut ck = Checker {
        program,
        memory: vec![0.0; memory_words],
        budget,
        executed: 0,
        entry_analysis,
        generic,
    };
    ck.exec_frame(func, args, 0)
}

struct Checker<'p> {
    program: &'p Program,
    memory: Vec<f32>,
    budget: u64,
    executed: u64,
    entry_analysis: IntervalAnalysis,
    generic: HashMap<u32, IntervalAnalysis>,
}

impl<'p> Checker<'p> {
    #[allow(clippy::too_many_lines)]
    fn exec_frame(
        &mut self,
        func: FuncId,
        args: &[Value],
        depth: usize,
    ) -> Result<Vec<Value>, IrError> {
        if depth > MAX_DEPTH {
            return Err(IrError::StackOverflow);
        }
        // `self.program` is `&'p Program`, so this borrow is independent
        // of `&mut self` and the recursive call below stays legal.
        let f: &'p crate::Function = self
            .program
            .function_by_index(func.0)
            .ok_or(IrError::UnknownFunction(func.0))?;
        if args.len() != f.n_params() {
            return Err(IrError::ArityMismatch {
                expected: f.n_params(),
                actual: args.len(),
            });
        }
        let analysis = if depth == 0 {
            self.entry_analysis.clone()
        } else {
            self.generic[&func.0].clone()
        };

        let mut regs = vec![Value::I(0); f.n_regs()];
        regs[..args.len()].copy_from_slice(args);

        let name = f.name();
        let insts = f.insts();
        let mut pc = 0usize;
        loop {
            if pc >= insts.len() {
                return Err(IrError::MissingReturn(name.to_string()));
            }
            if self.executed >= self.budget {
                return Err(IrError::BudgetExhausted);
            }
            self.executed += 1;
            let inst = &insts[pc];
            let i = pc;
            pc += 1;

            assert!(
                analysis.reachable(i),
                "soundness violation in {name}: executed instruction {i} ({inst:?}) \
                 that the analysis proved unreachable"
            );
            for r in uses_of(inst) {
                let abs = analysis.value_before(i, r);
                let v = regs[r.0 as usize];
                assert!(
                    abs.contains(v),
                    "soundness violation in {name} at {i} ({inst:?}): \
                     read {r:?} = {v:?} outside {abs:?}"
                );
            }

            match inst {
                Inst::ConstF { dst, value } => regs[dst.0 as usize] = Value::F(*value),
                Inst::ConstI { dst, value } => regs[dst.0 as usize] = Value::I(*value),
                Inst::Mov { dst, src } => regs[dst.0 as usize] = regs[src.0 as usize],
                Inst::FBin { op, dst, a, b } => {
                    let x = reg_f32(&regs, *a, pc)?;
                    let y = reg_f32(&regs, *b, pc)?;
                    let r = match op {
                        FBinOp::Add => x + y,
                        FBinOp::Sub => x - y,
                        FBinOp::Mul => x * y,
                        FBinOp::Div => x / y,
                        FBinOp::Min => x.min(y),
                        FBinOp::Max => x.max(y),
                        FBinOp::Atan2 => x.atan2(y),
                    };
                    regs[dst.0 as usize] = Value::F(r);
                }
                Inst::FUn { op, dst, a } => {
                    let x = reg_f32(&regs, *a, pc)?;
                    let r = match op {
                        FUnOp::Neg => -x,
                        FUnOp::Abs => x.abs(),
                        FUnOp::Sqrt => x.sqrt(),
                        FUnOp::Sin => x.sin(),
                        FUnOp::Cos => x.cos(),
                        FUnOp::Floor => x.floor(),
                        FUnOp::Exp => x.exp(),
                        FUnOp::Acos => x.acos(),
                        FUnOp::Asin => x.asin(),
                        FUnOp::Atan => x.atan(),
                    };
                    regs[dst.0 as usize] = Value::F(r);
                }
                Inst::IBin { op, dst, a, b } => {
                    let x = reg_i32(&regs, *a, pc)?;
                    let y = reg_i32(&regs, *b, pc)?;
                    let r = match op {
                        IBinOp::Add => x.wrapping_add(y),
                        IBinOp::Sub => x.wrapping_sub(y),
                        IBinOp::Mul => x.wrapping_mul(y),
                        IBinOp::Shl => x.wrapping_shl(y as u32),
                        IBinOp::Shr => x.wrapping_shr(y as u32),
                        IBinOp::And => x & y,
                        IBinOp::Or => x | y,
                        IBinOp::Rem => {
                            if y == 0 {
                                0
                            } else {
                                x.wrapping_rem(y)
                            }
                        }
                    };
                    regs[dst.0 as usize] = Value::I(r);
                }
                Inst::CmpF { op, dst, a, b } => {
                    let x = reg_f32(&regs, *a, pc)?;
                    let y = reg_f32(&regs, *b, pc)?;
                    regs[dst.0 as usize] = Value::I(CmpOp::eval_f32(*op, x, y) as i32);
                }
                Inst::CmpI { op, dst, a, b } => {
                    let x = reg_i32(&regs, *a, pc)?;
                    let y = reg_i32(&regs, *b, pc)?;
                    regs[dst.0 as usize] = Value::I(CmpOp::eval_i32(*op, x, y) as i32);
                }
                Inst::IToF { dst, src } => {
                    let v = reg_i32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::F(v as f32);
                }
                Inst::FToI { dst, src } => {
                    let v = reg_f32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::I(v as i32);
                }
                Inst::BitsToF { dst, src } => {
                    let v = reg_i32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::F(f32::from_bits(v as u32));
                }
                Inst::FToBits { dst, src } => {
                    let v = reg_f32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::I(v.to_bits() as i32);
                }
                Inst::Load { dst, base, offset } => {
                    let addr = reg_i32(&regs, *base, pc)? as i64 + *offset as i64;
                    let idx = self.check_addr(addr)?;
                    regs[dst.0 as usize] = Value::F(self.memory[idx]);
                }
                Inst::Store { src, base, offset } => {
                    let addr = reg_i32(&regs, *base, pc)? as i64 + *offset as i64;
                    let idx = self.check_addr(addr)?;
                    self.memory[idx] = reg_f32(&regs, *src, pc)?;
                }
                Inst::Branch { cond, target } => {
                    if reg_i32(&regs, *cond, pc)? != 0 {
                        pc = target.0 as usize;
                    }
                }
                Inst::Jump { target } => pc = target.0 as usize,
                Inst::Call {
                    func: callee,
                    args: arg_regs,
                    rets,
                } => {
                    let arg_vals: Vec<Value> =
                        arg_regs.iter().map(|r| regs[r.0 as usize]).collect();
                    let results = self.exec_frame(FuncId(*callee), &arg_vals, depth + 1)?;
                    for (dst, &v) in rets.iter().zip(&results) {
                        regs[dst.0 as usize] = v;
                    }
                }
                Inst::Ret { vals } => {
                    return Ok(vals.iter().map(|r| regs[r.0 as usize]).collect());
                }
                Inst::EnqD { src } => {
                    reg_f32(&regs, *src, pc)?;
                    return Err(IrError::NoNpuAttached);
                }
                Inst::DeqD { .. } | Inst::DeqC { .. } => return Err(IrError::NoNpuAttached),
                Inst::EnqC { src } => {
                    reg_i32(&regs, *src, pc)?;
                    return Err(IrError::NoNpuAttached);
                }
            }

            for r in defs_of(inst) {
                let abs = analysis.value_after(i, r);
                let v = regs[r.0 as usize];
                assert!(
                    abs.contains(v),
                    "soundness violation in {name} at {i} ({inst:?}): \
                     wrote {r:?} = {v:?} outside {abs:?}"
                );
            }
        }
    }

    fn check_addr(&self, addr: i64) -> Result<usize, IrError> {
        if addr < 0 || addr as usize >= self.memory.len() {
            return Err(IrError::OutOfBoundsMemory {
                addr,
                size: self.memory.len(),
            });
        }
        Ok(addr as usize)
    }
}

fn reg_f32(regs: &[Value], r: crate::Reg, at: usize) -> Result<f32, IrError> {
    match regs[r.0 as usize] {
        Value::F(v) => Ok(v),
        Value::I(_) => Err(IrError::TypeMismatch {
            expected: "f32",
            at: at.saturating_sub(1),
        }),
    }
}

fn reg_i32(regs: &[Value], r: crate::Reg, at: usize) -> Result<i32, IrError> {
    match regs[r.0 as usize] {
        Value::I(v) => Ok(v),
        Value::F(_) => Err(IrError::TypeMismatch {
            expected: "i32",
            at: at.saturating_sub(1),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Interpreter};

    fn agree(program: &Program, f: FuncId, args: &[Value], words: usize) {
        let params: Vec<AbsValue> = args
            .iter()
            .map(|&a| match a {
                Value::F(_) => AbsValue::top_float(),
                Value::I(_) => AbsValue::Any,
            })
            .collect();
        let checked = run_checked(program, f, args, words, 100_000, &params);
        let real = Interpreter::new(program)
            .with_memory(words)
            .with_budget(100_000)
            .run(f, args);
        assert_eq!(checked, real);
    }

    #[test]
    fn checked_run_matches_interpreter_on_loops_and_memory() {
        let mut b = FunctionBuilder::new("acc", 1);
        let x = b.param(0);
        let addr = b.consti(3);
        b.store(x, addr, 0);
        let r = b.load(addr, 0);
        let y = b.fmul(r, r);
        b.ret(&[y]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        agree(&p, f, &[Value::F(1.5)], 8);
    }

    #[test]
    fn checked_run_matches_interpreter_on_faults() {
        // Out-of-bounds store faults identically under both executors.
        let mut b = FunctionBuilder::new("oob", 1);
        let x = b.param(0);
        let addr = b.ftoi(x);
        b.store(x, addr, 0);
        b.ret(&[x]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        agree(&p, f, &[Value::F(99.0)], 8);
    }

    #[test]
    fn recursion_is_checked_with_generic_frames() {
        // f(n) = n <= 0 ? 0 : f(n - 1); exercises depth > 0 frames of
        // the entry function itself.
        let mut b = FunctionBuilder::new("rec", 1);
        let n = b.param(0);
        let zero = b.consti(0);
        let one = b.consti(1);
        let base = b.new_label();
        let c = b.cmpi(crate::CmpOp::Le, n, zero);
        b.branch_if(c, base);
        let m = b.isub(n, one);
        let r = b.call(FuncId(0), &[m], 1);
        b.ret(&[r[0]]);
        b.bind(base);
        b.ret(&[zero]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        let out = run_checked(
            &p,
            f,
            &[Value::I(5)],
            4,
            100_000,
            &[AbsValue::Int(super::super::interval::IntInterval {
                lo: 0,
                hi: 10,
            })],
        )
        .unwrap();
        assert_eq!(out, vec![Value::I(0)]);
    }
}

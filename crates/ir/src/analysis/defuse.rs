//! Instruction-level def/use extraction and per-register chains.
//!
//! These helpers are the single source of truth for "which registers does
//! this instruction read and write" — the optimizer and every dataflow
//! analysis build on them, so a new instruction variant only needs to be
//! described once.

use crate::{Function, Inst, Reg};

/// The registers `inst` writes.
///
/// Only `Call` defines more than one register; note that a `Call` whose
/// `rets` list is longer than the callee's return arity leaves the excess
/// registers untouched at runtime — the verifier flags that case, and
/// dataflow callers that know the callee arity should truncate.
pub fn defs_of(inst: &Inst) -> Vec<Reg> {
    match inst {
        Inst::ConstF { dst, .. }
        | Inst::ConstI { dst, .. }
        | Inst::Mov { dst, .. }
        | Inst::FBin { dst, .. }
        | Inst::FUn { dst, .. }
        | Inst::IBin { dst, .. }
        | Inst::CmpF { dst, .. }
        | Inst::CmpI { dst, .. }
        | Inst::IToF { dst, .. }
        | Inst::FToI { dst, .. }
        | Inst::BitsToF { dst, .. }
        | Inst::FToBits { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::DeqD { dst }
        | Inst::DeqC { dst } => vec![*dst],
        Inst::Call { rets, .. } => rets.clone(),
        _ => vec![],
    }
}

/// The single register `inst` writes, if it writes exactly one.
///
/// `Call` returns `None` even when it writes one register — use
/// [`defs_of`] when calls matter.
pub fn def_of(inst: &Inst) -> Option<Reg> {
    match inst {
        Inst::Call { .. } => None,
        _ => {
            let d = defs_of(inst);
            d.first().copied()
        }
    }
}

/// The registers `inst` reads.
pub fn uses_of(inst: &Inst) -> Vec<Reg> {
    match inst {
        Inst::Mov { src, .. }
        | Inst::IToF { src, .. }
        | Inst::FToI { src, .. }
        | Inst::BitsToF { src, .. }
        | Inst::FToBits { src, .. } => vec![*src],
        Inst::FBin { a, b, .. }
        | Inst::IBin { a, b, .. }
        | Inst::CmpF { a, b, .. }
        | Inst::CmpI { a, b, .. } => vec![*a, *b],
        Inst::FUn { a, .. } => vec![*a],
        Inst::Load { base, .. } => vec![*base],
        Inst::Store { src, base, .. } => vec![*src, *base],
        Inst::Branch { cond, .. } => vec![*cond],
        Inst::Call { args, .. } => args.clone(),
        Inst::Ret { vals } => vals.clone(),
        Inst::EnqD { src } | Inst::EnqC { src } => vec![*src],
        _ => vec![],
    }
}

/// Whether `inst` is free of side effects and faults, so a dead definition
/// can be deleted. Loads are excluded: they can fault on a bad address and
/// the conservative passes preserve fault behaviour.
pub fn is_pure(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::ConstF { .. }
            | Inst::ConstI { .. }
            | Inst::Mov { .. }
            | Inst::FBin { .. }
            | Inst::FUn { .. }
            | Inst::IBin { .. }
            | Inst::CmpF { .. }
            | Inst::CmpI { .. }
            | Inst::IToF { .. }
            | Inst::FToI { .. }
            | Inst::BitsToF { .. }
            | Inst::FToBits { .. }
    )
}

/// Def and use sites per register for one function.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    /// `defs[r]` = instruction indices writing register `r`.
    defs: Vec<Vec<usize>>,
    /// `uses[r]` = instruction indices reading register `r`.
    uses: Vec<Vec<usize>>,
}

impl DefUse {
    /// Collects def/use chains for `f`. Parameters count as a def at a
    /// virtual pre-entry site and are *not* listed in [`defs`](Self::defs).
    /// Registers numbered beyond `n_regs` (malformed IR) are still
    /// indexed, so chains never panic on bad input.
    pub fn build(f: &Function) -> DefUse {
        let mut max_reg = f.n_regs();
        for inst in f.insts() {
            for r in defs_of(inst).into_iter().chain(uses_of(inst)) {
                max_reg = max_reg.max(r.0 as usize + 1);
            }
        }
        let mut du = DefUse {
            defs: vec![Vec::new(); max_reg],
            uses: vec![Vec::new(); max_reg],
        };
        for (i, inst) in f.insts().iter().enumerate() {
            for r in defs_of(inst) {
                du.defs[r.0 as usize].push(i);
            }
            for r in uses_of(inst) {
                du.uses[r.0 as usize].push(i);
            }
        }
        du
    }

    /// Instruction indices writing `r`.
    pub fn defs(&self, r: Reg) -> &[usize] {
        self.defs.get(r.0 as usize).map_or(&[], |v| v)
    }

    /// Instruction indices reading `r`.
    pub fn uses(&self, r: Reg) -> &[usize] {
        self.uses.get(r.0 as usize).map_or(&[], |v| v)
    }

    /// The unique def site of `r`, if it is written exactly once.
    pub fn single_def(&self, r: Reg) -> Option<usize> {
        match self.defs(r) {
            [one] => Some(*one),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    #[test]
    fn chains_cover_defs_and_uses() {
        let mut b = FunctionBuilder::new("du", 1);
        let x = b.param(0);
        let two = b.constf(2.0);
        let y = b.fmul(x, two);
        b.ret(&[y]);
        let f = b.build().unwrap();
        let du = DefUse::build(&f);
        assert_eq!(du.defs(x), &[] as &[usize], "params have no def site");
        assert_eq!(du.uses(x), &[1]);
        assert_eq!(du.single_def(two), Some(0));
        assert_eq!(du.single_def(y), Some(1));
        assert_eq!(du.uses(y), &[2]);
    }

    #[test]
    fn call_defines_all_ret_registers() {
        use crate::{Inst, Reg};
        let call = Inst::Call {
            func: 0,
            args: vec![Reg(1)],
            rets: vec![Reg(2), Reg(3)],
        };
        assert_eq!(defs_of(&call), vec![Reg(2), Reg(3)]);
        assert_eq!(def_of(&call), None);
        assert_eq!(uses_of(&call), vec![Reg(1)]);
        assert!(!is_pure(&call));
    }
}

//! Dominator computation.
//!
//! Iterative dataflow formulation over reverse postorder (the
//! Cooper–Harvey–Kennedy "engineered" algorithm): for the block counts in
//! this IR (tens, not thousands) it beats Lengauer–Tarjan on both code
//! size and constant factors, and converges in two passes on reducible
//! graphs — every loop the builder can express is reducible.

use super::cfg::Cfg;

/// Immediate-dominator tree for one CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of block `b`; `idom[entry] = entry`;
    /// `None` for unreachable blocks.
    idom: Vec<Option<usize>>,
}

impl Dominators {
    /// Computes dominators for `cfg`. Empty graphs yield an empty tree.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        let mut rpo_pos = vec![usize::MAX; n];
        for (pos, &b) in cfg.rpo().iter().enumerate() {
            rpo_pos[b] = pos;
        }
        if n == 0 {
            return Dominators { idom };
        }
        let entry = cfg.rpo()[0];
        idom[entry] = Some(entry);

        let intersect = |idom: &[Option<usize>], rpo_pos: &[usize], a: usize, b: usize| {
            let (mut x, mut y) = (a, b);
            while x != y {
                while rpo_pos[x] > rpo_pos[y] {
                    x = idom[x].expect("processed block has idom");
                }
                while rpo_pos[y] > rpo_pos[x] {
                    y = idom[y].expect("processed block has idom");
                }
            }
            x
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &cfg.blocks()[b].preds {
                    if idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (`b` itself for the entry, `None`
    /// for unreachable blocks).
    pub fn idom(&self, b: usize) -> Option<usize> {
        self.idom.get(b).copied().flatten()
    }

    /// Whether block `a` dominates block `b`. Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(cur).copied().flatten() {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder};

    #[test]
    fn diamond_dominance() {
        let mut b = FunctionBuilder::new("d", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let other = b.new_label();
        let join = b.new_label();
        b.branch_if(c, other);
        let t = b.fadd(x, x);
        b.jump(join);
        b.bind(other);
        let _e = b.fneg(x);
        b.bind(join);
        let out = b.fmul(x, t);
        b.ret(&[out]);
        let f = b.build().unwrap();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(cfg.len(), 4);
        // Entry dominates everything; neither arm dominates the join.
        for blk in 0..4 {
            assert!(dom.dominates(0, blk));
        }
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert_eq!(dom.idom(3), Some(0));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = FunctionBuilder::new("l", 1);
        let n = b.param(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(exit);
        b.ret(&[i]);
        let f = b.build().unwrap();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let header = cfg.block_of(2);
        // The back-edge source: a later block whose successors include the
        // header.
        let body = (0..cfg.len())
            .find(|&blk| {
                cfg.blocks()[blk].succs.contains(&header)
                    && cfg.blocks()[blk].start > cfg.blocks()[header].start
            })
            .expect("loop body block");
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(0, header));
    }
}

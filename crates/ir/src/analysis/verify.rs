//! The Parrot region safety verifier (`parrot-lint`).
//!
//! Maps the paper's §3.1 admission criteria for approximable regions onto
//! concrete static checks over the IR:
//!
//! | §3.1 criterion              | check                                     |
//! |-----------------------------|-------------------------------------------|
//! | well-defined inputs         | [`Lint::UninitRead`], [`Lint::NonFloatParam`] |
//! | well-defined outputs        | [`Lint::MissingRet`], [`Lint::RetArityMismatch`] |
//! | pure (no escaping state)    | [`Lint::ScratchOutOfBounds`], [`Lint::NpuInRegion`] |
//! | executable / terminating    | [`Lint::InfiniteLoop`], [`Lint::UnboundedLoop`] |
//! | structurally valid          | [`Lint::RegisterOutOfRange`], [`Lint::UnknownCallee`], [`Lint::CallArityMismatch`], [`Lint::TypeConfusion`] |
//! | hygiene                     | [`Lint::UnreachableBlock`], [`Lint::DeadStore`] |
//!
//! Severity is fixed per lint. *Error* findings identify programs the
//! interpreter will fault (or panic) on along some path; the compiler
//! pipeline refuses to observe/train such regions. *Warning* findings are
//! suspicious but executable; *Info* findings record what could not be
//! proven statically (e.g. a scratch address whose inferred range
//! straddles the window boundary, which the interpreter still
//! bounds-checks dynamically); *Note* findings are positive proof
//! artifacts — the interval analysis ([`super::interval`]) proved a
//! runtime-computed scratch access in bounds ([`Lint::ProvenScratchBounds`])
//! or a loop terminating ([`Lint::ProvenLoopBounds`]).

use super::cfg::Cfg;
use super::defuse::{defs_of, is_pure, uses_of, DefUse};
use super::dom::Dominators;
use super::effects::region_effects;
use super::interval::{AbsValue, FloatInterval, IntervalAnalysis};
use super::liveness::{reg_space, Liveness};
use super::types::{infer_types, RegType, TypeMap};
use super::RegSet;
use crate::{CmpOp, Function, IBinOp, Inst, Program, Reg};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A positive proof artifact: the property *was* established
    /// statically. Never indicates a problem.
    Note,
    /// Unprovable statically; checked at runtime instead.
    Info,
    /// Suspicious but executable.
    Warning,
    /// Will fault (or panic) on some path; the region is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The lint catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A register may be read before any path initializes it.
    UninitRead,
    /// A constant-foldable load/store address falls outside the declared
    /// scratch window.
    ScratchOutOfBounds,
    /// A load/store address range straddles the scratch window boundary;
    /// bounds are only enforced dynamically.
    UnprovenScratchBounds,
    /// The interval analysis proved a runtime-computed load/store address
    /// in bounds for every execution.
    ProvenScratchBounds,
    /// An induction-variable argument proved this loop terminates.
    ProvenLoopBounds,
    /// A register is constrained to both `i32` and `f32`.
    TypeConfusion,
    /// Some path leaves the function without executing `ret`.
    MissingRet,
    /// A `ret` yields a different number of values than the function
    /// declares.
    RetArityMismatch,
    /// An instruction names a register ≥ the function's register count
    /// (the interpreter indexes its register file unchecked).
    RegisterOutOfRange,
    /// A call names a function id not present in the program.
    UnknownCallee,
    /// A call's argument or result list disagrees with the callee's
    /// signature.
    CallArityMismatch,
    /// A candidate region contains NPU queue instructions.
    NpuInRegion,
    /// An entry parameter is not used as `f32` (the Parrot call
    /// convention passes all region inputs as floats).
    NonFloatParam,
    /// A loop with no exit: no conditional branch out and no `ret`.
    InfiniteLoop,
    /// A loop whose every exit condition looks loop-invariant.
    UnboundedLoop,
    /// A basic block no path from the entry reaches.
    UnreachableBlock,
    /// A side-effect-free instruction whose result no path reads.
    DeadStore,
}

impl Lint {
    /// The fixed severity of this lint.
    pub fn severity(self) -> Severity {
        match self {
            Lint::UninitRead
            | Lint::ScratchOutOfBounds
            | Lint::TypeConfusion
            | Lint::MissingRet
            | Lint::RetArityMismatch
            | Lint::RegisterOutOfRange
            | Lint::UnknownCallee
            | Lint::CallArityMismatch
            | Lint::NpuInRegion
            | Lint::NonFloatParam
            | Lint::InfiniteLoop => Severity::Error,
            Lint::UnboundedLoop | Lint::UnreachableBlock | Lint::DeadStore => Severity::Warning,
            Lint::UnprovenScratchBounds => Severity::Info,
            Lint::ProvenScratchBounds | Lint::ProvenLoopBounds => Severity::Note,
        }
    }

    /// Stable kebab-case name (used in diagnostics tables and metrics
    /// keys).
    pub fn name(self) -> &'static str {
        match self {
            Lint::UninitRead => "uninit-read",
            Lint::ScratchOutOfBounds => "scratch-out-of-bounds",
            Lint::UnprovenScratchBounds => "unproven-scratch-bounds",
            Lint::ProvenScratchBounds => "proven-scratch-bounds",
            Lint::ProvenLoopBounds => "proven-loop-bounds",
            Lint::TypeConfusion => "type-confusion",
            Lint::MissingRet => "missing-ret",
            Lint::RetArityMismatch => "ret-arity-mismatch",
            Lint::RegisterOutOfRange => "register-out-of-range",
            Lint::UnknownCallee => "unknown-callee",
            Lint::CallArityMismatch => "call-arity-mismatch",
            Lint::NpuInRegion => "npu-in-region",
            Lint::NonFloatParam => "non-float-param",
            Lint::InfiniteLoop => "infinite-loop",
            Lint::UnboundedLoop => "unbounded-loop",
            Lint::UnreachableBlock => "unreachable-block",
            Lint::DeadStore => "dead-store",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Its severity ([`Lint::severity`], denormalized for consumers).
    pub severity: Severity,
    /// The function the finding is in.
    pub function: String,
    /// The instruction index the finding anchors to, when one exists.
    pub inst: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(i) => write!(
                f,
                "{}: [{}] {} at {}:{}: {}",
                self.severity, self.lint, self.function, self.function, i, self.message
            ),
            None => write!(
                f,
                "{}: [{}] {}: {}",
                self.severity, self.lint, self.function, self.message
            ),
        }
    }
}

/// All findings for one region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// Every finding, in function/instruction order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any error-severity finding exists (the region is rejected).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether the report has no findings above [`Severity::Note`]
    /// (notes are positive proof artifacts, not problems).
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity <= Severity::Note)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    fn push(&mut self, lint: Lint, function: &str, inst: Option<usize>, message: String) {
        self.diagnostics.push(Diagnostic {
            lint,
            severity: lint.severity(),
            function: function.to_string(),
            inst,
            message,
        });
    }
}

/// Verifies the region rooted at function index `entry` against the §3.1
/// criteria, assuming a scratch memory of `scratch_words` f32 words.
///
/// Checks the entry function and every transitively reachable callee.
/// Entry inputs are assumed unconstrained (any f32 including NaN); use
/// [`verify_region_with_inputs`] when the region declares input ranges.
pub fn verify_region(program: &Program, entry: u32, scratch_words: usize) -> VerifyReport {
    verify_region_with_inputs(program, entry, scratch_words, &[])
}

/// Like [`verify_region`], but bounding entry parameter `p` by
/// `inputs[p]` (missing entries default to any float, including NaN).
///
/// Tighter input ranges let the interval analysis prove more scratch
/// accesses in bounds and more loops terminating, upgrading info-level
/// findings to [`Severity::Note`] proofs.
pub fn verify_region_with_inputs(
    program: &Program,
    entry: u32,
    scratch_words: usize,
    inputs: &[FloatInterval],
) -> VerifyReport {
    let mut report = VerifyReport::default();
    if program.function_by_index(entry).is_none() {
        report.push(
            Lint::UnknownCallee,
            "<region>",
            None,
            format!("entry function id {entry} does not exist in the program"),
        );
        return report;
    }

    let effects = region_effects(program, entry);
    let mut funcs: Vec<u32> = vec![entry];
    for c in &effects.calls {
        if !funcs.contains(c) && program.function_by_index(*c).is_some() {
            funcs.push(*c);
        }
    }
    let types = infer_types(program);

    for &fid in &funcs {
        let f = program.function(crate::FuncId(fid));
        verify_function(
            program,
            f,
            &types[fid as usize],
            scratch_words,
            (fid == entry).then_some(inputs),
            &mut report,
        );
    }
    report
}

fn verify_function(
    program: &Program,
    f: &Function,
    types: &TypeMap,
    scratch_words: usize,
    entry_inputs: Option<&[FloatInterval]>,
    report: &mut VerifyReport,
) {
    let is_entry = entry_inputs.is_some();
    let name = f.name();
    let insts = f.insts();

    // Structural: register operands must fit the declared register file
    // (the interpreter indexes it unchecked and would panic).
    for (i, inst) in insts.iter().enumerate() {
        for r in defs_of(inst).into_iter().chain(uses_of(inst)) {
            if r.0 as usize >= f.n_regs() {
                report.push(
                    Lint::RegisterOutOfRange,
                    name,
                    Some(i),
                    format!(
                        "register {} out of range (function declares {})",
                        r,
                        f.n_regs()
                    ),
                );
            }
        }
    }

    if insts.is_empty() {
        report.push(
            Lint::MissingRet,
            name,
            None,
            "function has no instructions; execution immediately falls off the end".to_string(),
        );
        return;
    }

    let cfg = Cfg::build(f);
    let dom = Dominators::compute(&cfg);
    let du = DefUse::build(f);

    // All paths must reach `ret` with the declared arity.
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if blk.falls_off_end && cfg.is_reachable(b) {
            let last = blk.end - 1;
            let how = match &insts[last] {
                Inst::Branch { target, .. } | Inst::Jump { target } => {
                    format!("branch target {} is past the last instruction", target.0)
                }
                _ => "control falls off the end of the function".to_string(),
            };
            report.push(
                Lint::MissingRet,
                name,
                Some(last),
                format!("{how}; this path never reaches `ret`"),
            );
        }
        if !cfg.is_reachable(b) {
            report.push(
                Lint::UnreachableBlock,
                name,
                Some(blk.start),
                format!(
                    "block covering instructions {}..{} is unreachable from the entry",
                    blk.start, blk.end
                ),
            );
        }
    }
    for (i, inst) in insts.iter().enumerate() {
        if let Inst::Ret { vals } = inst {
            if vals.len() != f.n_rets() {
                report.push(
                    Lint::RetArityMismatch,
                    name,
                    Some(i),
                    format!(
                        "ret yields {} value(s) but the function declares {}",
                        vals.len(),
                        f.n_rets()
                    ),
                );
            }
        }
    }

    // Call-site signatures.
    for (i, inst) in insts.iter().enumerate() {
        if let Inst::Call { func, args, rets } = inst {
            match program.function_by_index(*func) {
                None => report.push(
                    Lint::UnknownCallee,
                    name,
                    Some(i),
                    format!("call to unknown function id {func}"),
                ),
                Some(callee) => {
                    if args.len() != callee.n_params() {
                        report.push(
                            Lint::CallArityMismatch,
                            name,
                            Some(i),
                            format!(
                                "call passes {} argument(s) but `{}` takes {}",
                                args.len(),
                                callee.name(),
                                callee.n_params()
                            ),
                        );
                    }
                    if rets.len() > callee.n_rets() {
                        report.push(
                            Lint::CallArityMismatch,
                            name,
                            Some(i),
                            format!(
                                "call receives {} value(s) but `{}` returns {}; the extra registers stay uninitialized",
                                rets.len(),
                                callee.name(),
                                callee.n_rets()
                            ),
                        );
                    }
                }
            }
        }
    }

    // NPU queue instructions may not appear inside a candidate region:
    // the region is the code being *replaced* by the NPU, and the
    // observe/train interpreter runs it with no port attached.
    for (i, inst) in insts.iter().enumerate() {
        if matches!(
            inst,
            Inst::EnqD { .. } | Inst::DeqD { .. } | Inst::EnqC { .. } | Inst::DeqC { .. }
        ) {
            report.push(
                Lint::NpuInRegion,
                name,
                Some(i),
                "candidate regions must not contain NPU queue instructions".to_string(),
            );
        }
    }

    // Type consistency.
    let space = reg_space(f);
    for r in types.conflicts() {
        if (r.0 as usize) < space {
            let site = du.defs(r).first().or_else(|| du.uses(r).first()).copied();
            report.push(
                Lint::TypeConfusion,
                name,
                site,
                format!("register {r} is used as both i32 and f32"),
            );
        }
    }
    if is_entry {
        for (p, t) in types.prefix(f.n_params()).iter().enumerate() {
            if *t == RegType::Int {
                report.push(
                    Lint::NonFloatParam,
                    name,
                    None,
                    format!("entry parameter {p} is used as i32; region inputs are passed as f32"),
                );
            }
        }
    }

    // Interval analysis backing the proof-carrying checks: the entry is
    // analyzed as a region (declared input ranges, zero-filled modeled
    // scratch); callees assume ⊤ parameters (any caller, any argument).
    let ia = match entry_inputs {
        Some(inputs) => {
            let params: Vec<AbsValue> = (0..f.n_params())
                .map(|p| {
                    inputs
                        .get(p)
                        .map_or_else(AbsValue::top_float, |iv| AbsValue::float(*iv))
                })
                .collect();
            IntervalAnalysis::of_region(program, f, &params, scratch_words)
        }
        None => IntervalAnalysis::of_function(f, &vec![AbsValue::Any; f.n_params()]),
    };

    must_init_check(f, &cfg, program, report);
    scratch_bounds_check(f, &ia, scratch_words, report);
    loop_check(f, &cfg, &dom, &ia, report);
    dead_store_check(f, &cfg, report);
}

/// Forward must-initialize dataflow: intersection meet, entry seeded with
/// the parameter registers, unvisited predecessors contribute TOP.
fn must_init_check(f: &Function, cfg: &Cfg, program: &Program, report: &mut VerifyReport) {
    let space = reg_space(f);
    let insts = f.insts();

    let transfer = |init: &mut RegSet, i: usize, flag: &mut Option<Vec<(usize, Reg)>>| {
        let inst = &insts[i];
        for r in uses_of(inst) {
            if !init.contains(r.0) {
                if let Some(found) = flag {
                    found.push((i, r));
                }
            }
        }
        // A call only writes as many result registers as the callee
        // actually returns; the rest stay uninitialized.
        if let Inst::Call { func, rets, .. } = inst {
            let n = program
                .function_by_index(*func)
                .map_or(rets.len(), crate::Function::n_rets);
            for r in rets.iter().take(n) {
                init.insert(r.0);
            }
        } else {
            for r in defs_of(inst) {
                init.insert(r.0);
            }
        }
    };

    let nb = cfg.len();
    let mut in_sets: Vec<Option<RegSet>> = vec![None; nb];
    let entry = match cfg.rpo().first() {
        Some(&e) => e,
        None => return,
    };
    let mut entry_init = RegSet::empty(space);
    for p in 0..f.n_params() {
        entry_init.insert(p as u16);
    }
    in_sets[entry] = Some(entry_init);

    // Propagate block out-sets into successor in-sets with intersection
    // meet. The entry's initial parameter seed acts as the virtual
    // function-entry predecessor: intersection only shrinks sets, so a
    // back edge into the entry block can never re-add registers the
    // fresh-entry path leaves uninitialized.
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let mut out = match &in_sets[b] {
                Some(s) => s.clone(),
                None => continue,
            };
            let mut no_report: Option<Vec<(usize, Reg)>> = None;
            for i in cfg.blocks()[b].range() {
                transfer(&mut out, i, &mut no_report);
            }
            for &s in &cfg.blocks()[b].succs {
                if let Some(cur) = &mut in_sets[s] {
                    if cur.intersect_with(&out) {
                        changed = true;
                    }
                } else {
                    in_sets[s] = Some(out.clone());
                    changed = true;
                }
            }
        }
    }

    // Final reporting pass, deduplicated per (instruction, register).
    let mut found: Vec<(usize, Reg)> = Vec::new();
    for &b in cfg.rpo() {
        let mut state = match &in_sets[b] {
            Some(s) => s.clone(),
            None => continue,
        };
        let mut flag = Some(Vec::new());
        for i in cfg.blocks()[b].range() {
            transfer(&mut state, i, &mut flag);
        }
        if let Some(hits) = flag {
            for h in hits {
                if !found.contains(&h) {
                    found.push(h);
                }
            }
        }
    }
    found.sort_unstable_by_key(|(i, r)| (*i, r.0));
    for (i, r) in found {
        report.push(
            Lint::UninitRead,
            f.name(),
            Some(i),
            format!("register {r} may be read before it is initialized on some path"),
        );
    }
}

/// Classifies every reachable load/store by its inferred address range:
/// provably inside the scratch window (note), provably outside (error),
/// or straddling the boundary (info — checked dynamically).
fn scratch_bounds_check(
    f: &Function,
    ia: &IntervalAnalysis,
    scratch_words: usize,
    report: &mut VerifyReport,
) {
    let words = scratch_words as i64;
    for (i, inst) in f.insts().iter().enumerate() {
        let what = match inst {
            Inst::Load { .. } => "load",
            Inst::Store { .. } => "store",
            _ => continue,
        };
        // Unreachable accesses never execute (the unreachable-block lint
        // covers the dead code); a float-only base is the type lints'
        // problem.
        if !ia.reachable(i) {
            continue;
        }
        let Some((lo, hi)) = ia.addr_range(i, inst) else {
            continue;
        };
        if lo >= 0 && hi < words {
            report.push(
                Lint::ProvenScratchBounds,
                f.name(),
                Some(i),
                format!(
                    "{what} address proven within [{lo}, {hi}], inside the scratch window of {scratch_words} word(s)"
                ),
            );
        } else if hi < 0 || lo >= words {
            let shown = if lo == hi {
                format!("{lo}")
            } else {
                format!("range [{lo}, {hi}]")
            };
            report.push(
                Lint::ScratchOutOfBounds,
                f.name(),
                Some(i),
                format!(
                    "{what} address {shown} escapes the scratch window of {scratch_words} word(s)"
                ),
            );
        } else {
            report.push(
                Lint::UnprovenScratchBounds,
                f.name(),
                Some(i),
                format!(
                    "{what} address range [{lo}, {hi}] straddles the scratch window of {scratch_words} word(s); bounds only checked dynamically"
                ),
            );
        }
    }
}

/// Back-edge based loop screening: every natural loop must have an exit,
/// and at least one exit must be *proven* bounded by the
/// induction-variable argument ([`prove_loop_exit`], reported as a
/// `proven-loop-bounds` note) or, failing that, at least plausibly vary
/// across iterations ([`cond_varies`] heuristic).
fn loop_check(
    f: &Function,
    cfg: &Cfg,
    dom: &Dominators,
    ia: &IntervalAnalysis,
    report: &mut VerifyReport,
) {
    let insts = f.insts();
    // Collect back edges u -> h (h dominates u).
    let mut headers: Vec<(usize, usize)> = Vec::new();
    for (u, blk) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(u) {
            continue;
        }
        for &s in &blk.succs {
            if dom.dominates(s, u) {
                headers.push((u, s));
            }
        }
    }

    for &(latch, header) in &headers {
        // Natural loop body: blocks reaching the latch without passing
        // the header.
        let mut in_loop = vec![false; cfg.len()];
        in_loop[header] = true;
        let mut work = vec![latch];
        while let Some(b) = work.pop() {
            if in_loop[b] {
                continue;
            }
            in_loop[b] = true;
            for &p in &cfg.blocks()[b].preds {
                work.push(p);
            }
        }

        // Registers defined anywhere in the loop.
        let mut defined_in_loop = RegSet::empty(reg_space(f));
        for (b, blk) in cfg.blocks().iter().enumerate() {
            if !in_loop[b] {
                continue;
            }
            for i in blk.range() {
                for r in defs_of(&insts[i]) {
                    defined_in_loop.insert(r.0);
                }
            }
        }

        // The induction-variable proof only handles the simple shape
        // where each iteration is one acyclic header→latch path, so it
        // is off for loops containing another back edge (an inner loop
        // or a second latch into this header).
        let simple = !headers
            .iter()
            .any(|&(l2, h2)| (l2, h2) != (latch, header) && in_loop[l2] && in_loop[h2]);

        let mut has_exit = false;
        let mut has_varying_exit = false;
        let mut proofs: Vec<(usize, String)> = Vec::new();
        for (b, blk) in cfg.blocks().iter().enumerate() {
            if !in_loop[b] {
                continue;
            }
            let last = blk.end - 1;
            if matches!(insts[last], Inst::Ret { .. }) {
                // Returning from inside the loop is an exit we accept
                // unconditionally.
                has_exit = true;
                has_varying_exit = true;
                continue;
            }
            let exits_loop = blk.succs.iter().any(|s| !in_loop[*s]);
            if !exits_loop {
                continue;
            }
            has_exit = true;
            if let Inst::Branch { cond, .. } = &insts[last] {
                if simple {
                    if let Some(msg) = prove_loop_exit(
                        f,
                        cfg,
                        &in_loop,
                        header,
                        latch,
                        b,
                        *cond,
                        &defined_in_loop,
                        ia,
                    ) {
                        has_varying_exit = true;
                        proofs.push((last, msg));
                        continue;
                    }
                }
                if cond_varies(f, *cond, &defined_in_loop) {
                    has_varying_exit = true;
                }
            } else {
                // A fall-through or jump out of the loop body still exits.
                has_varying_exit = true;
            }
        }

        let latch_inst = cfg.blocks()[latch].end - 1;
        if !has_exit {
            report.push(
                Lint::InfiniteLoop,
                f.name(),
                Some(latch_inst),
                format!(
                    "loop with header at instruction {} has no exit path",
                    cfg.blocks()[header].start
                ),
            );
        } else if !has_varying_exit {
            report.push(
                Lint::UnboundedLoop,
                f.name(),
                Some(latch_inst),
                "every exit condition of this loop appears loop-invariant; the loop may not terminate".to_string(),
            );
        }
        for (i, msg) in proofs {
            report.push(Lint::ProvenLoopBounds, f.name(), Some(i), msg);
        }
    }
}

/// The induction-variable termination argument for the exit branch
/// ending block `exit_b` of the `header`/`latch` loop (which the caller
/// guarantees contains no other back edge, so each iteration is one
/// acyclic header→latch path). The proof requires:
///
/// 1. exactly one branch edge stays in the loop, and staying requires
///    `i < n` / `i ≤ n` (or the mirrored/negated forms) where `i` is
///    loop-defined and `n` loop-invariant;
/// 2. `i`'s only in-loop definition steps it by a nonzero constant in
///    the direction that eventually violates the continue condition;
/// 3. both the compare and the step execute on every header→latch path
///    (each at most once, by acyclicity);
/// 4. the stepped counter cannot wrap around i32 before failing the
///    test: `n_hi − adj + step ≤ i32::MAX` (upward; mirrored downward),
///    with `n`'s bound taken from the interval analysis.
///
/// Under these, `i` moves monotonically by `step` per iteration while
/// the continue condition bounds it, so the loop exits after at most
/// `(bound − start)/step` iterations. Returns the note message.
#[allow(clippy::too_many_arguments)]
fn prove_loop_exit(
    f: &Function,
    cfg: &Cfg,
    in_loop: &[bool],
    header: usize,
    latch: usize,
    exit_b: usize,
    cond: Reg,
    defined_in_loop: &RegSet,
    ia: &IntervalAnalysis,
) -> Option<String> {
    let insts = f.insts();
    let blk = &cfg.blocks()[exit_b];
    let last = blk.end - 1;

    // Which side of the branch continues the loop?
    let target = match &insts[last] {
        Inst::Branch { target, .. } => target.0 as usize,
        _ => return None,
    };
    let n_insts = f.len();
    let tk = (target < n_insts).then(|| cfg.block_of(target));
    let ft = (blk.end < n_insts).then(|| cfg.block_of(blk.end));
    let tk_in = tk.is_some_and(|b| in_loop[b]);
    let ft_in = ft.is_some_and(|b| in_loop[b]);
    if tk_in == ft_in {
        return None;
    }
    let continue_on_true = tk_in;

    // The condition must be an integer compare in this block; the
    // backward scan finds the definition that reaches the branch.
    let cmp_at = (blk.start..last)
        .rev()
        .find(|&j| defs_of(&insts[j]).contains(&cond))?;
    let (op, a, b) = match &insts[cmp_at] {
        Inst::CmpI { op, a, b, .. } => (*op, *a, *b),
        _ => return None,
    };

    // One operand is the loop counter, the other loop-invariant.
    let (iv, bound, op_on_iv) = if defined_in_loop.contains(a.0) && !defined_in_loop.contains(b.0) {
        (a, b, op)
    } else if defined_in_loop.contains(b.0) && !defined_in_loop.contains(a.0) {
        (b, a, mirror(op))
    } else {
        return None;
    };
    let c = if continue_on_true {
        op_on_iv
    } else {
        negate(op_on_iv)
    };

    // The counter's single in-loop definition: `iv = iv ± constant`.
    let mut def_site: Option<usize> = None;
    for (bb, blk2) in cfg.blocks().iter().enumerate() {
        if !in_loop[bb] {
            continue;
        }
        for j in blk2.range() {
            if defs_of(&insts[j]).contains(&iv) {
                if def_site.is_some() {
                    return None;
                }
                def_site = Some(j);
            }
        }
    }
    let def_at = def_site?;
    let exact_at = |j: usize, r: Reg| -> Option<i64> {
        ia.value_before(j, r).as_int()?.is_exact().map(i64::from)
    };
    let step = match &insts[def_at] {
        Inst::IBin {
            op: IBinOp::Add,
            dst,
            a: x,
            b: y,
        } if *dst == iv => {
            if *x == iv && *y != iv {
                exact_at(def_at, *y)?
            } else if *y == iv && *x != iv {
                exact_at(def_at, *x)?
            } else {
                return None;
            }
        }
        Inst::IBin {
            op: IBinOp::Sub,
            dst,
            a: x,
            b: y,
        } if *dst == iv && *x == iv && *y != iv => -exact_at(def_at, *y)?,
        _ => return None,
    };
    if step == 0 {
        return None;
    }
    let up = step > 0;
    match c {
        CmpOp::Lt | CmpOp::Le if up => {}
        CmpOp::Gt | CmpOp::Ge if !up => {}
        _ => return None,
    }

    // Both the test and the step must run on every complete iteration.
    if !on_every_iteration(cfg, in_loop, header, latch, exit_b)
        || !on_every_iteration(cfg, in_loop, header, latch, cfg.block_of(def_at))
    {
        return None;
    }

    // No-wraparound: the counter never passes the bound by more than one
    // step, which must stay within i32.
    let n_iv = ia.value_before(cmp_at, bound).as_int()?;
    let ok = if up {
        let adj = i64::from(c == CmpOp::Lt);
        n_iv.hi - adj + step <= i64::from(i32::MAX)
    } else {
        let adj = i64::from(c == CmpOp::Gt);
        n_iv.lo + adj + step >= i64::from(i32::MIN)
    };
    if !ok {
        return None;
    }

    Some(format!(
        "loop proven bounded: counter {iv} steps by {step} per iteration toward the loop-invariant bound {bound} tested at instruction {cmp_at}"
    ))
}

/// Swaps the operand order of a compare: `a op b` ⟺ `b mirror(op) a`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

/// Logical negation of an integer compare (total order, no NaN).
fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
    }
}

/// Whether every complete iteration — a path header→latch inside the
/// (inner-back-edge-free) loop — passes through block `x`.
fn on_every_iteration(cfg: &Cfg, in_loop: &[bool], header: usize, latch: usize, x: usize) -> bool {
    if x == header || x == latch {
        return true;
    }
    let mut seen = vec![false; cfg.len()];
    let mut work = vec![header];
    while let Some(b) = work.pop() {
        if b == latch {
            return false;
        }
        if seen[b] || b == x {
            continue;
        }
        seen[b] = true;
        for &s in &cfg.blocks()[b].succs {
            if in_loop[s] && s != x && !seen[s] {
                work.push(s);
            }
        }
    }
    true
}

/// Heuristic: a branch condition can change across iterations if some
/// definition of it reads a register that is itself (re)defined in the
/// loop, or derives from memory/call results produced in the loop.
fn cond_varies(f: &Function, cond: Reg, defined_in_loop: &RegSet) -> bool {
    for inst in f.insts() {
        let defs = defs_of(inst);
        if !defs.contains(&cond) {
            continue;
        }
        if matches!(
            inst,
            Inst::Load { .. } | Inst::DeqD { .. } | Inst::DeqC { .. } | Inst::Call { .. }
        ) {
            return true;
        }
        if uses_of(inst).iter().any(|u| defined_in_loop.contains(u.0)) {
            return true;
        }
    }
    false
}

/// Flags pure instructions whose result is provably never read (per-point
/// liveness within each reachable block).
fn dead_store_check(f: &Function, cfg: &Cfg, report: &mut VerifyReport) {
    let lv = Liveness::compute(f, cfg);
    let insts = f.insts();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut live = lv.live_out(b).clone();
        let mut dead: Vec<usize> = Vec::new();
        for i in blk.range().rev() {
            let inst = &insts[i];
            let defs = defs_of(inst);
            if is_pure(inst) && !defs.is_empty() && defs.iter().all(|d| !live.contains(d.0)) {
                dead.push(i);
                // A dead instruction's uses do not keep anything alive.
                continue;
            }
            for d in &defs {
                live.remove(d.0);
            }
            for u in uses_of(inst) {
                live.insert(u.0);
            }
        }
        dead.reverse();
        for i in dead {
            report.push(
                Lint::DeadStore,
                f.name(),
                Some(i),
                "result of this instruction is never read on any path".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder, Label};

    fn entry_program(f: Function) -> Program {
        let mut p = Program::new();
        p.add_function(f);
        p
    }

    #[test]
    fn clean_straight_line_region_verifies() {
        let mut b = FunctionBuilder::new("ok", 2);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.fadd(x, y);
        b.ret(&[s]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }

    #[test]
    fn uninit_read_flagged_on_one_path_only() {
        // if (p0 < 0) r = p0*p0;  return r  — `r` uninitialized on the
        // fall-through path.
        let mut b = FunctionBuilder::new("uninit", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let skip = b.new_label();
        let r = b.reg();
        b.branch_if_zero(c, skip);
        b.emit(Inst::FBin {
            op: crate::FBinOp::Mul,
            dst: r,
            a: x,
            b: x,
        });
        b.bind(skip);
        b.ret(&[r]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(report.has_errors());
        assert!(
            report.errors().any(|d| d.lint == Lint::UninitRead),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn scratch_overflow_and_unproven_bounds() {
        let mut b = FunctionBuilder::new("mem", 1);
        let x = b.param(0);
        let base = b.consti(30);
        b.store(x, base, 5); // 35 >= 32: out of bounds
        let dyn_base = b.ftoi(x); // runtime-computed
        let v = b.load(dyn_base, 0);
        b.ret(&[v]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 32);
        assert!(report.errors().any(|d| d.lint == Lint::ScratchOutOfBounds));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::UnprovenScratchBounds && d.severity == Severity::Info));
    }

    #[test]
    fn missing_ret_and_unreachable_block() {
        use crate::Reg;
        let f = Function::new_unchecked(
            "bad",
            1,
            3,
            vec![Reg(1)],
            vec![
                // 0: jump over the ret to an instruction that falls off.
                Inst::Jump { target: Label(3) },
                // 1..2: unreachable
                Inst::Mov {
                    dst: Reg(1),
                    src: Reg(0),
                },
                Inst::Ret { vals: vec![Reg(1)] },
                // 3: falls off the end
                Inst::Mov {
                    dst: Reg(2),
                    src: Reg(0),
                },
            ],
        );
        let report = verify_region(&entry_program(f), 0, 0);
        assert!(report.errors().any(|d| d.lint == Lint::MissingRet));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::UnreachableBlock));
    }

    #[test]
    fn infinite_and_invariant_loops_flagged() {
        // while(true) {}
        let mut b = FunctionBuilder::new("spin", 0);
        let top = b.new_label();
        b.bind(top);
        b.jump(top);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(report.errors().any(|d| d.lint == Lint::InfiniteLoop));

        // Loop whose exit condition never changes inside the loop.
        let mut b = FunctionBuilder::new("inv", 1);
        let x = b.param(0);
        let n = b.ftoi(x);
        let zero = b.consti(0);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let c = b.cmpi(CmpOp::Le, n, zero);
        b.branch_if(c, exit);
        b.jump(top);
        b.bind(exit);
        b.ret(&[x]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.lint == Lint::UnboundedLoop),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn bounded_counting_loop_is_clean_of_loop_lints() {
        let mut b = FunctionBuilder::new("count", 1);
        let x = b.param(0);
        let n = b.ftoi(x);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(exit);
        let out = b.itof(i);
        b.ret(&[out]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(
            !report
                .diagnostics()
                .iter()
                .any(|d| matches!(d.lint, Lint::InfiniteLoop | Lint::UnboundedLoop)),
            "{:?}",
            report.diagnostics()
        );
        assert!(!report.has_errors());
    }

    #[test]
    fn counting_loop_gets_proven_bounds_note() {
        let mut b = FunctionBuilder::new("count", 1);
        let x = b.param(0);
        let n = b.ftoi(x);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(exit);
        let out = b.itof(i);
        b.ret(&[out]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.lint == Lint::ProvenLoopBounds && d.severity == Severity::Note),
            "{:?}",
            report.diagnostics()
        );
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }

    #[test]
    fn downward_loop_proven_and_invariant_step_rejected() {
        // for (i = n; i > 0; i -= 2) — downward induction proof.
        let mut b = FunctionBuilder::new("down", 1);
        let x = b.param(0);
        let i = b.ftoi(x);
        let zero = b.consti(0);
        let two = b.consti(2);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Le, i, zero);
        b.branch_if(done, exit);
        let next = b.isub(i, two);
        b.emit(Inst::Mov { dst: i, src: next });
        b.jump(top);
        b.bind(exit);
        b.ret(&[x]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        // Two in-loop defs of `i`'s chain (isub + mov) — the mov *is*
        // the single def of `i`? No: `i` is defined by ftoi (outside)
        // and mov (inside): single in-loop def, but a Mov is not an
        // IBin step, so the proof falls back to the heuristic (which
        // accepts it) without a note.
        assert!(
            !report
                .diagnostics()
                .iter()
                .any(|d| matches!(d.lint, Lint::InfiniteLoop | Lint::UnboundedLoop)),
            "{:?}",
            report.diagnostics()
        );

        // Same loop with a direct `i = i - 2` step is proven.
        let mut b = FunctionBuilder::new("down2", 1);
        let x = b.param(0);
        let i = b.ftoi(x);
        let zero = b.consti(0);
        let two = b.consti(2);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Le, i, zero);
        b.branch_if(done, exit);
        b.emit(Inst::IBin {
            op: crate::IBinOp::Sub,
            dst: i,
            a: i,
            b: two,
        });
        b.jump(top);
        b.bind(exit);
        b.ret(&[x]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.lint == Lint::ProvenLoopBounds),
            "{:?}",
            report.diagnostics()
        );
    }

    #[test]
    fn scratch_access_proven_by_input_ranges() {
        use crate::analysis::interval::FloatInterval;
        // addr = ftoi(p0): unprovable with unconstrained inputs, proven
        // once the region declares p0 ∈ [0, 31].
        let mut b = FunctionBuilder::new("mem", 1);
        let x = b.param(0);
        let base = b.ftoi(x);
        let v = b.load(base, 0);
        b.ret(&[v]);
        let p = entry_program(b.build().unwrap());

        let loose = verify_region(&p, 0, 32);
        assert!(loose
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::UnprovenScratchBounds));

        let tight = verify_region_with_inputs(
            &p,
            0,
            32,
            &[FloatInterval {
                lo: 0.0,
                hi: 31.0,
                nan: false,
            }],
        );
        assert!(
            tight
                .diagnostics()
                .iter()
                .any(|d| d.lint == Lint::ProvenScratchBounds && d.severity == Severity::Note),
            "{:?}",
            tight.diagnostics()
        );
        assert!(tight.is_clean(), "{:?}", tight.diagnostics());
    }

    #[test]
    fn constant_scratch_access_proven_without_inputs() {
        let mut b = FunctionBuilder::new("cmem", 1);
        let x = b.param(0);
        let base = b.consti(3);
        b.store(x, base, 2);
        let v = b.load(base, 2);
        b.ret(&[v]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 8);
        let notes = report
            .diagnostics()
            .iter()
            .filter(|d| d.lint == Lint::ProvenScratchBounds)
            .count();
        assert_eq!(notes, 2, "{:?}", report.diagnostics());
        assert!(report.is_clean());
    }

    #[test]
    fn type_confusion_and_register_range() {
        use crate::{IBinOp, Reg};
        let f = Function::new_unchecked(
            "ty",
            1,
            2,
            vec![Reg(1)],
            vec![
                Inst::IBin {
                    op: IBinOp::Add,
                    dst: Reg(1),
                    a: Reg(0),
                    b: Reg(0),
                },
                Inst::FUn {
                    op: crate::FUnOp::Neg,
                    dst: Reg(1),
                    a: Reg(0),
                },
                Inst::Mov {
                    dst: Reg(9),
                    src: Reg(1),
                },
                Inst::Ret { vals: vec![Reg(1)] },
            ],
        );
        let report = verify_region(&entry_program(f), 0, 0);
        assert!(report.errors().any(|d| d.lint == Lint::TypeConfusion));
        assert!(report.errors().any(|d| d.lint == Lint::RegisterOutOfRange));
    }

    #[test]
    fn npu_instructions_rejected_in_regions() {
        let mut b = FunctionBuilder::new("npu", 1);
        let x = b.param(0);
        b.enq_d(x);
        let y = b.deq_d();
        b.ret(&[y]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(report.errors().any(|d| d.lint == Lint::NpuInRegion));
    }

    #[test]
    fn int_entry_param_flagged() {
        let mut b = FunctionBuilder::new("ip", 1);
        let x = b.param(0);
        let one = b.consti(1);
        let y = b.iadd(x, one);
        let out = b.itof(y);
        b.ret(&[out]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(report.errors().any(|d| d.lint == Lint::NonFloatParam));
    }

    #[test]
    fn dead_store_warned_not_errored() {
        let mut b = FunctionBuilder::new("ds", 1);
        let x = b.param(0);
        let _dead = b.fmul(x, x);
        let y = b.fadd(x, x);
        b.ret(&[y]);
        let p = entry_program(b.build().unwrap());
        let report = verify_region(&p, 0, 0);
        assert!(!report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.lint == Lint::DeadStore && d.severity == Severity::Warning));
    }

    #[test]
    fn call_arity_mismatch_detected() {
        use crate::Reg;
        let mut callee = FunctionBuilder::new("one", 1);
        let a = callee.param(0);
        callee.ret(&[a]);
        let mut p = Program::new();
        p.add_function(callee.build().unwrap());
        let f = Function::new_unchecked(
            "caller",
            1,
            4,
            vec![Reg(1)],
            vec![
                Inst::Call {
                    func: 0,
                    args: vec![Reg(0), Reg(0)],
                    rets: vec![Reg(1), Reg(2)],
                },
                Inst::Ret { vals: vec![Reg(1)] },
            ],
        );
        p.add_function(f);
        let report = verify_region(&p, 1, 0);
        let arity_errors = report
            .errors()
            .filter(|d| d.lint == Lint::CallArityMismatch)
            .count();
        assert_eq!(arity_errors, 2, "{:?}", report.diagnostics());
    }

    use crate::Function;
}

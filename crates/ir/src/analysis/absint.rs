//! Generic forward abstract interpretation over the CFG.
//!
//! [`solve`] runs any monotone transfer system ([`AbstractDomain`]) to a
//! fixpoint with the classic widening/narrowing discipline:
//!
//! 1. **Ascending phase** — chaotic iteration in reverse postorder with
//!    plain joins. For lattices of unbounded height (intervals), this
//!    alone need not terminate, so after [`SolverConfig::widen_delay`]
//!    passes the join is replaced by [`AbstractDomain::widen`] on every
//!    *retreating edge* — an edge whose target sits at an equal or
//!    earlier reverse-postorder position than its source, which covers
//!    irreducible cycles as well as natural loop back edges. Forward
//!    edges into a loop head keep plain joins even after the delay:
//!    their contributions are bounded by earlier-RPO blocks stabilizing
//!    (every cycle contains a retreating edge, so every unbounded chain
//!    still meets a widening point), and joining them keeps
//!    loop-invariant values *exact* — widening a nested loop's head on
//!    its preheader edge would coarsen outer-loop invariants that
//!    narrowing can never recover, because the stale bound re-justifies
//!    itself around the inner cycle.
//! 2. **Descending phase** — a bounded number of narrowing passes
//!    recompute each block's input from its predecessors' outputs and
//!    tighten via [`AbstractDomain::narrow`], clawing back precision the
//!    widening jumps gave up.
//!
//! The delayed widening matters in practice: the benchmark regions' loop
//! counters run to small constant bounds (8 for the jpeg DCT), and a few
//! extra plain-join passes let those intervals converge *exactly* before
//! any widening coarsens them.
//!
//! The solver is deterministic: iteration order is reverse postorder and
//! every operation is a pure function of the domain, so repeated runs
//! produce identical solutions (the RunReport pipeline relies on this).

use super::cfg::Cfg;

/// A monotone abstract domain: per-block transfer plus lattice plumbing.
///
/// `join`/`widen`/`narrow` mutate their first argument in place and report
/// whether it changed. `widen` must subsume the join (`widen(a, b) ⊒
/// a ⊔ b`); `narrow` may shrink its target but must never drop below the
/// greatest lower bound of its arguments, so any fixed number of
/// narrowing passes stays sound.
pub trait AbstractDomain {
    /// The per-block abstract state.
    type State: Clone;

    /// The state on entry to the function (parameters, initial memory).
    fn entry_state(&self) -> Self::State;

    /// The state after executing every instruction of `block`, given the
    /// state at its start.
    fn transfer_block(&self, block: usize, input: &Self::State) -> Self::State;

    /// The state flowing along the edge `block → succ`, given the state
    /// at the end of `block`. This is where conditional-branch refinement
    /// lives; the default is to propagate the block output unchanged.
    fn edge_state(&self, block: usize, succ: usize, output: &Self::State) -> Self::State {
        let _ = (block, succ);
        output.clone()
    }

    /// Whether `state` admits no concrete execution at all (⊥ somewhere
    /// a concrete value must exist). The solver drops infeasible edge
    /// states instead of propagating them, so a branch arm whose
    /// refinement yields a contradiction — a zero-trip loop body, a
    /// constant-false arm — is proven unreachable rather than analyzed
    /// under an impossible premise. The default never prunes.
    fn is_infeasible(&self, state: &Self::State) -> bool {
        let _ = state;
        false
    }

    /// Least upper bound, in place. Returns whether `into` changed.
    fn join(&self, into: &mut Self::State, incoming: &Self::State) -> bool;

    /// Widening: like `join` but guaranteed to converge in finitely many
    /// steps on any ascending chain. Returns whether `into` changed.
    fn widen(&self, into: &mut Self::State, incoming: &Self::State) -> bool;

    /// Narrowing: tightens `into` using a freshly recomputed `incoming`
    /// (which is itself a sound over-approximation). Returns whether
    /// `into` changed.
    fn narrow(&self, into: &mut Self::State, incoming: &Self::State) -> bool;
}

/// Iteration knobs. The defaults suit the benchmark regions: loop bounds
/// there are small constants, so a modest widening delay lets them
/// converge exactly.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Plain-join passes before widening engages on retreating edges.
    pub widen_delay: usize,
    /// Descending (narrowing) passes after the ascending fixpoint.
    pub narrow_passes: usize,
    /// Hard cap on ascending passes (backstop against a domain whose
    /// widening fails to converge; never hit by a law-abiding domain).
    pub max_passes: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            widen_delay: 32,
            narrow_passes: 2,
            max_passes: 512,
        }
    }
}

/// The converged solution: one abstract state per block at block *entry*
/// (`None` for blocks the abstract execution never reaches).
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// State at the start of each block, indexed by block id.
    pub block_in: Vec<Option<S>>,
    /// Ascending passes taken to converge (diagnostic).
    pub passes: usize,
}

/// Runs `domain` to a fixpoint over `cfg`. See the module docs for the
/// iteration strategy.
pub fn solve<D: AbstractDomain>(
    cfg: &Cfg,
    domain: &D,
    config: &SolverConfig,
) -> Solution<D::State> {
    let nb = cfg.len();
    let mut block_in: Vec<Option<D::State>> = (0..nb).map(|_| None).collect();
    if nb == 0 {
        return Solution {
            block_in,
            passes: 0,
        };
    }

    // Reverse-postorder positions; a retreating edge targets a block at
    // an equal or earlier position than its source. Self-loops retreat.
    let mut rpo_pos = vec![usize::MAX; nb];
    for (k, &b) in cfg.rpo().iter().enumerate() {
        rpo_pos[b] = k;
    }

    let entry = cfg.rpo()[0];
    block_in[entry] = Some(domain.entry_state());

    // Ascending phase.
    let mut passes = 0usize;
    loop {
        let mut changed = false;
        for &b in cfg.rpo() {
            let input = match &block_in[b] {
                Some(s) => s,
                None => continue,
            };
            let output = domain.transfer_block(b, input);
            for &s in &cfg.blocks()[b].succs {
                let edge = domain.edge_state(b, s, &output);
                if domain.is_infeasible(&edge) {
                    continue;
                }
                match &mut block_in[s] {
                    None => {
                        block_in[s] = Some(edge);
                        changed = true;
                    }
                    Some(cur) => {
                        let retreating = rpo_pos[s] <= rpo_pos[b];
                        let grew = if passes >= config.widen_delay && retreating {
                            domain.widen(cur, &edge)
                        } else {
                            domain.join(cur, &edge)
                        };
                        changed |= grew;
                    }
                }
            }
        }
        passes += 1;
        if !changed || passes >= config.max_passes {
            break;
        }
    }

    // Descending phase: recompute each block input from predecessor
    // outputs and narrow toward it.
    for _ in 0..config.narrow_passes {
        let outputs: Vec<Option<D::State>> = block_in
            .iter()
            .enumerate()
            .map(|(b, s)| s.as_ref().map(|s| domain.transfer_block(b, s)))
            .collect();
        let mut changed = false;
        for &b in cfg.rpo() {
            let mut fresh: Option<D::State> = if b == entry {
                Some(domain.entry_state())
            } else {
                None
            };
            for &p in &cfg.blocks()[b].preds {
                if let Some(out) = &outputs[p] {
                    let edge = domain.edge_state(p, b, out);
                    if domain.is_infeasible(&edge) {
                        continue;
                    }
                    match &mut fresh {
                        None => fresh = Some(edge),
                        Some(acc) => {
                            domain.join(acc, &edge);
                        }
                    }
                }
            }
            if let (Some(cur), Some(fresh)) = (&mut block_in[b], &fresh) {
                changed |= domain.narrow(cur, fresh);
            }
        }
        if !changed {
            break;
        }
    }

    Solution { block_in, passes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder};

    /// A toy domain: tracks only "how many blocks deep" the state has
    /// flowed, capped by widening — enough to exercise solver mechanics
    /// (reachability, widening engagement, narrowing invocation).
    struct Depth {
        widened: std::cell::Cell<bool>,
    }
    impl AbstractDomain for Depth {
        type State = u64;
        fn entry_state(&self) -> u64 {
            0
        }
        fn transfer_block(&self, _b: usize, input: &u64) -> u64 {
            input.saturating_add(1)
        }
        fn join(&self, into: &mut u64, incoming: &u64) -> bool {
            let next = (*into).max(*incoming);
            let changed = next != *into;
            *into = next;
            changed
        }
        fn widen(&self, into: &mut u64, incoming: &u64) -> bool {
            if *incoming > *into {
                self.widened.set(true);
                *into = u64::MAX;
                true
            } else {
                false
            }
        }
        fn narrow(&self, _into: &mut u64, _incoming: &u64) -> bool {
            false
        }
    }

    #[test]
    fn loop_triggers_widening_and_converges() {
        let mut b = FunctionBuilder::new("l", 1);
        let n = b.param(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(exit);
        b.ret(&[i]);
        let f = b.build().unwrap();
        let cfg = Cfg::build(&f);
        let d = Depth {
            widened: std::cell::Cell::new(false),
        };
        let sol = solve(
            &cfg,
            &d,
            &SolverConfig {
                widen_delay: 2,
                narrow_passes: 1,
                max_passes: 64,
            },
        );
        assert!(d.widened.get(), "loop head must eventually widen");
        assert!(sol.passes < 64, "widening must force convergence");
        // Every reachable block got a state.
        for &b in cfg.rpo() {
            assert!(sol.block_in[b].is_some());
        }
    }

    #[test]
    fn unreachable_blocks_stay_none() {
        use crate::{Inst, Label, Reg};
        let f = crate::Function::new_unchecked(
            "u",
            1,
            2,
            vec![Reg(0)],
            vec![
                Inst::Jump { target: Label(2) },
                Inst::Mov {
                    dst: Reg(1),
                    src: Reg(0),
                }, // unreachable
                Inst::Ret { vals: vec![Reg(0)] },
            ],
        );
        let cfg = Cfg::build(&f);
        let d = Depth {
            widened: std::cell::Cell::new(false),
        };
        let sol = solve(&cfg, &d, &SolverConfig::default());
        let dead = (0..cfg.len()).find(|&b| !cfg.is_reachable(b)).unwrap();
        assert!(sol.block_in[dead].is_none());
    }

    #[test]
    fn empty_cfg_yields_empty_solution() {
        let f = crate::Function::new_unchecked("e", 0, 0, vec![], vec![]);
        let cfg = Cfg::build(&f);
        let d = Depth {
            widened: std::cell::Cell::new(false),
        };
        let sol = solve(&cfg, &d, &SolverConfig::default());
        assert!(sol.block_in.is_empty());
    }
}

//! Side-effect and purity summaries.
//!
//! Parrot's §3.1 criteria require candidate regions to be *pure* apart
//! from their declared scratch memory: no observable state may escape the
//! region other than its return values and the scratch window the region
//! owns. These summaries classify each function's effects and compose
//! them transitively over the call graph.

use crate::{Function, Inst, Program};

/// What one function (or a call tree) may do besides compute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Reads the data memory (`Load`).
    pub reads_memory: bool,
    /// Writes the data memory (`Store`).
    pub writes_memory: bool,
    /// Touches the NPU queues (`enq.c`/`deq.c`/`enq.d`/`deq.d`).
    pub uses_npu: bool,
    /// Function ids called directly.
    pub calls: Vec<u32>,
    /// Contains a call to a function id not present in the program.
    pub calls_unknown: bool,
}

impl EffectSummary {
    /// Whether the function is pure up to its scratch memory: no NPU
    /// traffic and no unknown callees. Memory access is *not* impurity
    /// here — the scratch window belongs to the region and bounds are
    /// checked separately by the verifier.
    pub fn pure_up_to_scratch(&self) -> bool {
        !self.uses_npu && !self.calls_unknown
    }

    fn absorb(&mut self, other: &EffectSummary) {
        self.reads_memory |= other.reads_memory;
        self.writes_memory |= other.writes_memory;
        self.uses_npu |= other.uses_npu;
        self.calls_unknown |= other.calls_unknown;
    }
}

/// The direct (non-transitive) effects of `f`.
pub fn function_effects(f: &Function) -> EffectSummary {
    let mut s = EffectSummary::default();
    for inst in f.insts() {
        match inst {
            Inst::Load { .. } => s.reads_memory = true,
            Inst::Store { .. } => s.writes_memory = true,
            Inst::EnqD { .. } | Inst::DeqD { .. } | Inst::EnqC { .. } | Inst::DeqC { .. } => {
                s.uses_npu = true;
            }
            Inst::Call { func, .. } if !s.calls.contains(func) => s.calls.push(*func),
            _ => {}
        }
    }
    s
}

/// The transitive effects of calling `entry`: the function's own effects
/// merged with those of every reachable callee. `calls` lists the full
/// reachable callee set.
pub fn region_effects(program: &Program, entry: u32) -> EffectSummary {
    let mut summary = match program.function_by_index(entry) {
        Some(f) => function_effects(f),
        None => {
            return EffectSummary {
                calls_unknown: true,
                ..EffectSummary::default()
            }
        }
    };
    let mut seen = vec![entry];
    let mut work = summary.calls.clone();
    while let Some(id) = work.pop() {
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        match program.function_by_index(id) {
            Some(f) => {
                let sub = function_effects(f);
                summary.absorb(&sub);
                for c in sub.calls {
                    if !summary.calls.contains(&c) {
                        summary.calls.push(c);
                    }
                    work.push(c);
                }
            }
            None => summary.calls_unknown = true,
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    #[test]
    fn transitive_effects_cross_calls() {
        let mut leaf = FunctionBuilder::new("leaf", 1);
        let a = leaf.param(0);
        leaf.store(a, a, 0);
        leaf.ret(&[]);
        let mut p = Program::new();
        let leaf_id = p.add_function(leaf.build().unwrap());

        let mut top = FunctionBuilder::new("top", 1);
        let x = top.param(0);
        top.call(leaf_id, &[x], 0);
        top.ret(&[x]);
        let top_id = p.add_function(top.build().unwrap());

        let direct = function_effects(p.function(top_id));
        assert!(!direct.writes_memory);
        let region = region_effects(&p, top_id.0);
        assert!(region.writes_memory);
        assert!(!region.uses_npu);
        assert!(region.pure_up_to_scratch());
    }

    #[test]
    fn npu_and_unknown_callee_break_purity() {
        let mut b = FunctionBuilder::new("n", 1);
        let x = b.param(0);
        b.enq_d(x);
        let y = b.deq_d();
        b.ret(&[y]);
        let mut p = Program::new();
        let id = p.add_function(b.build().unwrap());
        assert!(!region_effects(&p, id.0).pure_up_to_scratch());
        assert!(region_effects(&p, 99).calls_unknown);
    }
}

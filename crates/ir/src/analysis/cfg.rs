//! Control-flow graph recovery.
//!
//! The IR stores a function as a flat instruction list with branch targets
//! already resolved to instruction indices; basic blocks are not part of
//! the representation. This module recovers them: block leaders are the
//! entry instruction, every branch/jump target, and every instruction
//! following a terminator (`Branch`, `Jump`, `Ret`).
//!
//! Branch targets that point past the end of the instruction list are
//! legal at build time but fault with `MissingReturn` when executed; the
//! CFG records them as [`BasicBlock::falls_off_end`] instead of an edge so
//! the verifier can flag the path.

use crate::{Function, Inst};

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
    /// Whether control can leave this block past the end of the function
    /// (no terminator, or a branch/jump target beyond the last
    /// instruction) — a guaranteed `MissingReturn` fault if taken.
    pub falls_off_end: bool,
}

impl BasicBlock {
    /// The instruction indices covered by this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Block id containing each instruction.
    block_of: Vec<usize>,
    /// Block ids reachable from the entry, in reverse postorder.
    rpo: Vec<usize>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `f`. An empty function yields an empty graph.
    pub fn build(f: &Function) -> Cfg {
        let insts = f.insts();
        let n = insts.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                rpo: Vec::new(),
                reachable: Vec::new(),
            };
        }

        let mut leader = vec![false; n];
        leader[0] = true;
        for (i, inst) in insts.iter().enumerate() {
            match inst {
                Inst::Branch { target, .. } | Inst::Jump { target } => {
                    if (target.0 as usize) < n {
                        leader[target.0 as usize] = true;
                    }
                    if i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Inst::Ret { .. } if i + 1 < n => leader[i + 1] = true,
                _ => {}
            }
        }

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for i in 0..n {
            block_of[i] = blocks.len();
            let is_last = i + 1 == n || leader[i + 1];
            if is_last {
                blocks.push(BasicBlock {
                    start,
                    end: i + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    falls_off_end: false,
                });
                start = i + 1;
            }
        }

        for b in 0..blocks.len() {
            let last = blocks[b].end - 1;
            let (succs, falls) = match &insts[last] {
                Inst::Branch { target, .. } => {
                    let mut s = Vec::new();
                    let mut falls = false;
                    // Fall-through edge first, then the taken edge.
                    if blocks[b].end < n {
                        s.push(block_of[blocks[b].end]);
                    } else {
                        falls = true;
                    }
                    if (target.0 as usize) < n {
                        let t = block_of[target.0 as usize];
                        if !s.contains(&t) {
                            s.push(t);
                        }
                    } else {
                        falls = true;
                    }
                    (s, falls)
                }
                Inst::Jump { target } => {
                    if (target.0 as usize) < n {
                        (vec![block_of[target.0 as usize]], false)
                    } else {
                        (Vec::new(), true)
                    }
                }
                Inst::Ret { .. } => (Vec::new(), false),
                _ => {
                    // Not a terminator: this is the lexically last block
                    // (otherwise the next instruction would have started a
                    // new one only after a terminator or as a target, and a
                    // target still produces a fall-through edge).
                    if blocks[b].end < n {
                        (vec![block_of[blocks[b].end]], false)
                    } else {
                        (Vec::new(), true)
                    }
                }
            };
            blocks[b].falls_off_end = falls;
            blocks[b].succs = succs;
        }
        for b in 0..blocks.len() {
            for s in blocks[b].succs.clone() {
                blocks[s].preds.push(b);
            }
        }

        // Reachability + reverse postorder via iterative DFS from block 0.
        let mut reachable = vec![false; blocks.len()];
        let mut post: Vec<usize> = Vec::with_capacity(blocks.len());
        // Stack of (block, next-successor-to-visit).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        reachable[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < blocks[b].succs.len() {
                let s = blocks[b].succs[*next];
                *next += 1;
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();

        Cfg {
            blocks,
            block_of,
            rpo: post,
            reachable,
        }
    }

    /// All blocks, in instruction order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `i`.
    pub fn block_of(&self, i: usize) -> usize {
        self.block_of[i]
    }

    /// Reachable block ids in reverse postorder (entry first).
    pub fn rpo(&self) -> &[usize] {
        &self.rpo
    }

    /// Whether block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph has no blocks (empty function).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = FunctionBuilder::new("sl", 1);
        let x = b.param(0);
        let y = b.fadd(x, x);
        b.ret(&[y]);
        let cfg = Cfg::build(&b.build().unwrap());
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks()[0].range(), 0..2);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert!(!cfg.blocks()[0].falls_off_end);
        assert_eq!(cfg.rpo(), &[0]);
    }

    #[test]
    fn diamond_shape() {
        let mut b = FunctionBuilder::new("d", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let c = b.cmpf(CmpOp::Lt, x, zero);
        let neg = b.new_label();
        let join = b.new_label();
        b.branch_if(c, neg);
        let r = b.reg();
        b.emit(Inst::FBin {
            op: crate::FBinOp::Add,
            dst: r,
            a: x,
            b: x,
        });
        b.jump(join);
        b.bind(neg);
        b.emit(Inst::FUn {
            op: crate::FUnOp::Neg,
            dst: r,
            a: x,
        });
        b.bind(join);
        b.mov(r, r);
        b.ret(&[r]);
        let cfg = Cfg::build(&b.build().unwrap());
        // entry / then / else / join
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks()[0].succs.len(), 2);
        assert_eq!(cfg.blocks()[3].preds.len(), 2);
        assert_eq!(cfg.rpo()[0], 0);
        assert_eq!(*cfg.rpo().last().unwrap(), 3);
        assert!(cfg.rpo().iter().all(|&b| cfg.is_reachable(b)));
    }

    #[test]
    fn loop_back_edge_and_unreachable_block() {
        let mut b = FunctionBuilder::new("l", 1);
        let n = b.param(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit);
        b.iadd_into(i, one);
        b.jump(top);
        b.bind(exit);
        b.ret(&[i]);
        let f = b.build().unwrap();
        let cfg = Cfg::build(&f);
        // All blocks reachable; the loop body jumps back to the header.
        assert!((0..cfg.len()).all(|b| cfg.is_reachable(b)));
        let header = cfg.block_of(2);
        let body_last = cfg
            .blocks()
            .iter()
            .position(|blk| matches!(f.insts()[blk.end - 1], Inst::Jump { .. }));
        let body = body_last.unwrap();
        assert!(cfg.blocks()[body].succs.contains(&header));
    }

    #[test]
    fn empty_function_yields_empty_cfg() {
        let f = Function::new_unchecked("e", 0, 0, vec![], vec![]);
        let cfg = Cfg::build(&f);
        assert!(cfg.is_empty());
        assert!(cfg.rpo().is_empty());
    }

    #[test]
    fn branch_past_end_marks_falls_off() {
        use crate::{Label, Reg};
        let f = Function::new_unchecked("off", 1, 1, vec![], vec![Inst::Jump { target: Label(5) }]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.blocks()[0].falls_off_end);
        // And a non-terminated tail:
        let g = Function::new_unchecked(
            "tail",
            1,
            2,
            vec![],
            vec![Inst::Mov {
                dst: Reg(1),
                src: Reg(0),
            }],
        );
        let cfg = Cfg::build(&g);
        assert!(cfg.blocks()[0].falls_off_end);
    }
}

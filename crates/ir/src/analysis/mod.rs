//! Static analysis over the register IR.
//!
//! The Parrot transformation only admits candidate regions that are hot,
//! pure, and have well-defined fixed-size inputs and outputs (paper
//! §3.1). Until this module existed those criteria were enforced by
//! nothing: a malformed region surfaced, if at all, as a runtime
//! interpreter error deep inside an observation run. The analyses here
//! give the whole workspace a reusable dataflow stack:
//!
//! * [`cfg`] — basic blocks and control-flow edges recovered from the
//!   flat label/branch structure, with reverse-postorder iteration;
//! * [`dom`] — immediate dominators (iterative Cooper–Harvey–Kennedy);
//! * [`defuse`] — per-instruction def/use sets and per-register
//!   def-use chains;
//! * [`liveness`] — per-block live-in/live-out via backward dataflow;
//! * [`types`] — int/float type inference per register (union-find over
//!   `mov` copies plus operand constraints);
//! * [`effects`] — side-effect and purity summaries per function and per
//!   call graph;
//! * [`absint`] — a generic forward abstract-interpretation solver
//!   (monotone lattice, widening/narrowing at loop heads);
//! * [`interval`] — the solver instantiated with an int/float interval
//!   domain, including a word-granular scratch-memory model;
//! * [`precision`] — static fixed-point precision requirements (integer
//!   and fraction bits per value) derived from the intervals;
//! * [`soundness`] — a checked mirror interpreter asserting every
//!   concrete value falls inside its inferred interval;
//! * [`verify`] — the region safety verifier (`parrot-lint`): the lint
//!   catalogue mapping the paper's §3.1 criteria onto concrete checks.
//!
//! The optimizer ([`crate::opt`]) consumes the same CFG and liveness
//! results, replacing its former straight-line-only conservatism.

pub mod absint;
pub mod cfg;
pub mod defuse;
pub mod dom;
pub mod effects;
pub mod interval;
pub mod liveness;
pub mod precision;
pub mod soundness;
pub mod types;
pub mod verify;

pub use absint::{solve, AbstractDomain, SolverConfig};
pub use cfg::{BasicBlock, Cfg};
pub use defuse::{def_of, defs_of, is_pure, uses_of, DefUse};
pub use dom::Dominators;
pub use effects::{function_effects, region_effects, EffectSummary};
pub use interval::{AbsValue, FloatInterval, InstFacts, IntInterval, IntervalAnalysis};
pub use liveness::Liveness;
pub use precision::{PrecisionReport, ValuePrecision};
pub use soundness::run_checked;
pub use types::{infer_types, RegType, TypeMap};
pub use verify::{
    verify_region, verify_region_with_inputs, Diagnostic, Lint, Severity, VerifyReport,
};

/// A dense bit set over register numbers, used by the must-initialize
/// and liveness dataflow problems (register spaces run into the hundreds
/// for the generated software-NN functions, so `HashSet` churn matters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    /// An empty set sized for `n_regs` registers.
    pub fn empty(n_regs: usize) -> RegSet {
        RegSet {
            bits: vec![0; n_regs.div_ceil(64)],
        }
    }

    /// The full set `{0, …, n_regs-1}`.
    pub fn full(n_regs: usize) -> RegSet {
        let mut s = RegSet::empty(n_regs);
        for r in 0..n_regs {
            s.insert(r as u16);
        }
        s
    }

    /// Adds `r`.
    pub fn insert(&mut self, r: u16) {
        let (w, b) = (r as usize / 64, r as usize % 64);
        if w < self.bits.len() {
            self.bits[w] |= 1 << b;
        }
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: u16) {
        let (w, b) = (r as usize / 64, r as usize % 64);
        if w < self.bits.len() {
            self.bits[w] &= !(1 << b);
        }
    }

    /// Whether `r` is present.
    pub fn contains(&self, r: u16) -> bool {
        let (w, b) = (r as usize / 64, r as usize % 64);
        w < self.bits.len() && self.bits[w] & (1 << b) != 0
    }

    /// In-place intersection. Returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place union. Returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place difference (`self \ other`). Returns `true` if `self`
    /// changed.
    pub fn subtract(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regset_basic_ops() {
        let mut s = RegSet::empty(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        s.remove(64);
        assert!(!s.contains(64));

        let full = RegSet::full(130);
        assert!(full.contains(129));
        let mut inter = full.clone();
        assert!(inter.intersect_with(&s));
        assert!(inter.contains(0) && !inter.contains(64));

        let mut uni = RegSet::empty(130);
        assert!(uni.union_with(&s));
        assert_eq!(uni, s);
        assert!(!uni.union_with(&s));
    }
}

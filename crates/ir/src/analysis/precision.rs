//! Static fixed-point precision analysis.
//!
//! The NPU datapath (paper §7) evaluates neurons in fixed point; sizing
//! it — and the quantized int8/int16 inference path on the roadmap —
//! needs to know, per region, how many integer and fraction bits each
//! value requires. This module derives those statically from the
//! interval analysis: for every region input, output, and the hull of
//! all float intermediates, it reports the inferred range and a Qm.n
//! fixed-point requirement.
//!
//! The bit-width convention (documented in DESIGN.md §12):
//!
//! * **integer bits** = 1 sign bit + enough magnitude bits for the
//!   integer part of the largest absolute value in the range;
//! * **fraction bits** = enough bits to hit the f32 ulp at the range's
//!   largest magnitude (`23 − ⌊log₂ max|x|⌋`, clamped to `[0, 149]`) —
//!   i.e. a fixed-point grid at least as fine as the float values the
//!   region actually produces;
//! * an unbounded range (an endpoint at ±∞, or a ⊤ value) has no finite
//!   requirement: both widths report `None` and the region is flagged
//!   unbounded;
//! * a range is also treated as unbounded when its integer part cannot
//!   fit a 32-bit fixed-point word (magnitude ≥ 2³¹). Widening
//!   thresholds stop short of ±∞, so a loop that genuinely diverges can
//!   still converge to a *finite but astronomical* bound — a "Q129.0
//!   datapath" is not a sizing answer, it is unboundedness with extra
//!   steps.

use super::defuse::defs_of;
use super::interval::{AbsValue, IntervalAnalysis};
use crate::{FuncId, Inst, Program};

/// The fixed-point requirement for one named value of a region.
#[derive(Debug, Clone, PartialEq)]
pub struct ValuePrecision {
    /// `in<k>` for parameters, `out<k>` for return positions, or
    /// `intermediates` for the hull over float-typed definitions.
    pub name: String,
    /// Inferred lower bound (numeric part; `+∞ > -∞` means empty).
    pub lo: f32,
    /// Inferred upper bound.
    pub hi: f32,
    /// Whether the value may be NaN.
    pub may_be_nan: bool,
    /// Sign + integer-part bits, `None` when the range is unbounded.
    pub int_bits: Option<u8>,
    /// Fraction bits to reach f32-ulp resolution at the top magnitude,
    /// `None` when the range is unbounded.
    pub frac_bits: Option<u8>,
}

impl ValuePrecision {
    fn from_abs(name: String, v: AbsValue) -> ValuePrecision {
        match v {
            AbsValue::Bottom => ValuePrecision {
                name,
                lo: f32::INFINITY,
                hi: f32::NEG_INFINITY,
                may_be_nan: false,
                int_bits: Some(0),
                frac_bits: Some(0),
            },
            AbsValue::Int(i) => {
                let m = i.lo.unsigned_abs().max(i.hi.unsigned_abs());
                let fits = m < (1u64 << 31);
                ValuePrecision {
                    name,
                    lo: i.lo as f32,
                    hi: i.hi as f32,
                    may_be_nan: false,
                    int_bits: fits.then(|| int_bits_for_magnitude(m)),
                    frac_bits: fits.then_some(0),
                }
            }
            AbsValue::Float(f) => {
                let bounded =
                    !f.numeric_empty() && f.lo > f32::NEG_INFINITY && f.hi < f32::INFINITY;
                let (ib, fb) = if f.numeric_empty() {
                    (Some(0), Some(0))
                } else if bounded {
                    let m = f.lo.abs().max(f.hi.abs());
                    let e = ulp_exponent(m);
                    // Sign + integer bits must fit a 32-bit word:
                    // 1 + (e + 1) ≤ 32.
                    if e > 30 {
                        (None, None)
                    } else {
                        (
                            Some(1 + u8::try_from((e + 1).max(0)).unwrap_or(0)),
                            Some(u8::try_from((23 - e).clamp(0, 149)).unwrap_or(149)),
                        )
                    }
                } else {
                    (None, None)
                };
                ValuePrecision {
                    name,
                    lo: f.lo,
                    hi: f.hi,
                    may_be_nan: f.nan,
                    int_bits: ib,
                    frac_bits: fb,
                }
            }
            AbsValue::Any => ValuePrecision {
                name,
                lo: f32::NEG_INFINITY,
                hi: f32::INFINITY,
                may_be_nan: true,
                int_bits: None,
                frac_bits: None,
            },
        }
    }

    /// Whether this value has a finite fixed-point requirement.
    pub fn bounded(&self) -> bool {
        self.int_bits.is_some() && self.frac_bits.is_some()
    }
}

/// Sign + magnitude bits for an integer of absolute value ≤ `m`.
fn int_bits_for_magnitude(m: u64) -> u8 {
    1 + (64 - m.leading_zeros()) as u8
}

/// The binary exponent of `m`'s f32 ulp anchor: `⌊log₂ m⌋` for normal
/// `m`, the minimum exponent for subnormals and zero.
fn ulp_exponent(m: f32) -> i32 {
    if m >= f32::MIN_POSITIVE {
        ((m.to_bits() >> 23) & 0xff) as i32 - 127
    } else {
        -126
    }
}

/// Static per-region fixed-point requirements, derived from the
/// interval analysis of the region entry under its declared input
/// ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionReport {
    /// The region (benchmark) name.
    pub region: String,
    /// One row per region input, return position, and the intermediate
    /// hull, in that order.
    pub values: Vec<ValuePrecision>,
}

impl PrecisionReport {
    /// Builds the report for `entry` analyzed as a region (zero-filled
    /// scratch of `scratch_words`, parameters bounded by `params` —
    /// missing entries default to any-float-including-NaN).
    ///
    /// Returns `None` when `entry` is not in `program`.
    pub fn for_region(
        program: &Program,
        entry: FuncId,
        region: &str,
        params: &[AbsValue],
        scratch_words: usize,
    ) -> Option<PrecisionReport> {
        let f = program.function_by_index(entry.0)?;
        let filled: Vec<AbsValue> = (0..f.n_params())
            .map(|p| params.get(p).copied().unwrap_or_else(AbsValue::top_float))
            .collect();
        let ia = IntervalAnalysis::of_region(program, f, &filled, scratch_words);

        let mut values = Vec::new();
        for (p, v) in filled.iter().enumerate() {
            values.push(ValuePrecision::from_abs(format!("in{p}"), *v));
        }

        // Per return position: the hull over every reachable `ret`.
        let mut outs = vec![AbsValue::Bottom; f.n_rets()];
        for (i, inst) in f.insts().iter().enumerate() {
            if let Inst::Ret { vals } = inst {
                if !ia.reachable(i) {
                    continue;
                }
                for (k, r) in vals.iter().enumerate().take(outs.len()) {
                    let mut cur = outs[k];
                    abs_join(&mut cur, ia.value_before(i, *r));
                    outs[k] = cur;
                }
            }
        }
        for (k, v) in outs.iter().enumerate() {
            values.push(ValuePrecision::from_abs(format!("out{k}"), *v));
        }

        // The hull over every float-typed definition: what the fixed
        // point datapath would carry between operations.
        let mut inter = AbsValue::Bottom;
        for (i, inst) in f.insts().iter().enumerate() {
            for r in defs_of(inst) {
                if let AbsValue::Float(fv) = ia.value_after(i, r) {
                    abs_join(&mut inter, AbsValue::Float(fv));
                }
            }
        }
        values.push(ValuePrecision::from_abs("intermediates".to_string(), inter));

        Some(PrecisionReport {
            region: region.to_string(),
            values,
        })
    }

    /// The widest integer-bit requirement across all rows, `None` when
    /// any row is unbounded.
    pub fn datapath_int_bits(&self) -> Option<u8> {
        self.values
            .iter()
            .map(|v| v.int_bits)
            .try_fold(0u8, |m, b| b.map(|b| m.max(b)))
    }

    /// The widest fraction-bit requirement across all rows, `None` when
    /// any row is unbounded.
    pub fn datapath_frac_bits(&self) -> Option<u8> {
        self.values
            .iter()
            .map(|v| v.frac_bits)
            .try_fold(0u8, |m, b| b.map(|b| m.max(b)))
    }

    /// Whether every tracked value has a finite fixed-point requirement.
    pub fn bounded(&self) -> bool {
        self.values.iter().all(ValuePrecision::bounded)
    }
}

/// Join helper over plain `AbsValue` copies (the in-place lattice ops
/// live on the domain state).
fn abs_join(into: &mut AbsValue, v: AbsValue) {
    let joined = match (*into, v) {
        (AbsValue::Bottom, x) | (x, AbsValue::Bottom) => x,
        (AbsValue::Any, _) | (_, AbsValue::Any) => AbsValue::Any,
        (AbsValue::Int(a), AbsValue::Int(b)) => AbsValue::Int(super::interval::IntInterval {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
        }),
        (AbsValue::Float(a), AbsValue::Float(b)) => {
            AbsValue::Float(super::interval::FloatInterval {
                lo: a.lo.min(b.lo),
                hi: a.hi.max(b.hi),
                nan: a.nan || b.nan,
            })
        }
        _ => AbsValue::Any,
    };
    *into = joined;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::interval::FloatInterval;
    use crate::FunctionBuilder;

    fn unit_param() -> AbsValue {
        AbsValue::Float(FloatInterval {
            lo: 0.0,
            hi: 1.0,
            nan: false,
        })
    }

    #[test]
    fn bounded_region_gets_finite_bit_widths() {
        // out = 8 * in, in ∈ [0,1] → out ∈ [0,8]: 5 int bits (sign+4),
        // 20 frac bits (ulp at magnitude 8 = 2^(3-23)).
        let mut b = FunctionBuilder::new("scale", 1);
        let x = b.param(0);
        let eight = b.constf(8.0);
        let y = b.fmul(x, eight);
        b.ret(&[y]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        let r = PrecisionReport::for_region(&p, f, "scale", &[unit_param()], 0).unwrap();
        assert!(r.bounded(), "{r:?}");
        let out = r.values.iter().find(|v| v.name == "out0").unwrap();
        assert_eq!((out.lo, out.hi), (0.0, 8.0));
        assert_eq!(out.int_bits, Some(5));
        assert_eq!(out.frac_bits, Some(20));
        assert_eq!(r.datapath_frac_bits(), Some(23)); // in0 ulp at 1.0
    }

    #[test]
    fn unbounded_inputs_flag_the_region() {
        let mut b = FunctionBuilder::new("id", 1);
        let x = b.param(0);
        b.ret(&[x]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        let r = PrecisionReport::for_region(&p, f, "id", &[AbsValue::top_float()], 0).unwrap();
        assert!(!r.bounded());
        assert_eq!(r.datapath_int_bits(), None);
    }

    #[test]
    fn astronomical_bounds_do_not_count_as_a_datapath() {
        // Widening thresholds produce finite-but-huge ranges; a Qm.n
        // answer needing >32 integer bits is unboundedness in disguise.
        let v = ValuePrecision::from_abs(
            "x".into(),
            AbsValue::Float(FloatInterval {
                lo: -3.4e37,
                hi: 3.4e37,
                nan: false,
            }),
        );
        assert!(!v.bounded());
        assert_eq!((v.lo, v.hi), (-3.4e37, 3.4e37));
        let w = ValuePrecision::from_abs(
            "y".into(),
            AbsValue::Int(crate::analysis::interval::IntInterval {
                lo: 0,
                hi: i64::MAX,
            }),
        );
        assert!(!w.bounded());
    }

    #[test]
    fn integer_rows_report_zero_fraction_bits() {
        let v = ValuePrecision::from_abs(
            "x".into(),
            AbsValue::Int(crate::analysis::interval::IntInterval { lo: -5, hi: 100 }),
        );
        assert_eq!(v.frac_bits, Some(0));
        assert_eq!(v.int_bits, Some(8)); // sign + 7 bits for 100
    }
}

//! Function containers.

use crate::{Inst, Reg};
use serde::{Deserialize, Serialize};

/// A compiled IR function: a flat instruction list with declared parameter
/// count and return registers.
///
/// Built via [`FunctionBuilder`](crate::FunctionBuilder); all labels are
/// resolved to instruction indices by the time a `Function` exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    name: String,
    n_params: usize,
    n_regs: usize,
    rets: Vec<Reg>,
    insts: Vec<Inst>,
}

impl Function {
    pub(crate) fn from_parts(
        name: String,
        n_params: usize,
        n_regs: usize,
        rets: Vec<Reg>,
        insts: Vec<Inst>,
    ) -> Self {
        Function {
            name,
            n_params,
            n_regs,
            rets,
            insts,
        }
    }

    /// Assembles a function directly from raw parts, bypassing every
    /// invariant [`FunctionBuilder`](crate::FunctionBuilder) enforces
    /// (terminated instruction stream, uniform return arity, in-range
    /// registers and labels).
    ///
    /// This exists so tests and the [`analysis`](crate::analysis) lint
    /// suite can construct deliberately malformed IR; executing such a
    /// function may return any [`IrError`](crate::IrError) or panic on
    /// out-of-range registers. Run
    /// [`analysis::verify_region`](crate::analysis::verify_region) first.
    pub fn new_unchecked(
        name: impl Into<String>,
        n_params: usize,
        n_regs: usize,
        rets: Vec<Reg>,
        insts: Vec<Inst>,
    ) -> Self {
        Function::from_parts(name.into(), n_params, n_regs, rets, insts)
    }

    /// The function's name (diagnostic only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters (occupying registers `r0..n_params`).
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Total registers the function uses.
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    /// Number of values the function returns (every `Ret` site agrees).
    pub fn n_rets(&self) -> usize {
        self.rets.len()
    }

    /// The return registers of the lexically last `ret` site (arity
    /// reference; each `Ret` instruction carries its own registers).
    pub fn rets(&self) -> &[Reg] {
        &self.rets
    }

    /// The instruction list.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

//! Programmatic construction of IR functions.

use crate::{CmpOp, FBinOp, FUnOp, FuncId, Function, IBinOp, Inst, IrError, Label, Reg};
use std::collections::HashMap;

/// Builds a [`Function`] instruction by instruction.
///
/// Registers are allocated with [`reg`](Self::reg) or implicitly by the
/// arithmetic helpers, which allocate a fresh destination and return it —
/// giving construction an expression-like feel:
///
/// ```
/// use approx_ir::FunctionBuilder;
///
/// let mut b = FunctionBuilder::new("axpy", 3); // a, x, y
/// let (a, x, y) = (b.param(0), b.param(1), b.param(2));
/// let ax = b.fmul(a, x);
/// let r = b.fadd(ax, y);
/// b.ret(&[r]);
/// let f = b.build()?;
/// assert_eq!(f.len(), 3); // mul, add, ret
/// # Ok::<(), approx_ir::IrError>(())
/// ```
///
/// Control flow uses labels: create with [`new_label`](Self::new_label),
/// place with [`bind`](Self::bind), branch with
/// [`branch_if`](Self::branch_if) / [`jump`](Self::jump). [`build`](Self::build)
/// fails if any referenced label is left unbound.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    n_params: usize,
    next_reg: u16,
    next_label: u32,
    insts: Vec<Inst>,
    bound: HashMap<u32, u32>,
    rets: Vec<Reg>,
}

impl FunctionBuilder {
    /// Starts a function with `n_params` parameters (registers `r0..`).
    pub fn new(name: impl Into<String>, n_params: usize) -> Self {
        FunctionBuilder {
            name: name.into(),
            n_params,
            next_reg: n_params as u16,
            next_label: 0,
            insts: Vec::new(),
            bound: HashMap::new(),
            rets: Vec::new(),
        }
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid parameter index.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.n_params, "parameter index out of range");
        Reg(i as u16)
    }

    /// Allocates a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register space exhausted");
        r
    }

    /// Creates a new, not-yet-bound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position (the next emitted instruction).
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.bound.insert(label.0, self.insts.len() as u32);
        assert!(prev.is_none(), "label bound twice");
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    // --- constants and moves -------------------------------------------

    /// Emits an f32 constant, returning its register.
    pub fn constf(&mut self, value: f32) -> Reg {
        let dst = self.reg();
        self.emit(Inst::ConstF { dst, value });
        dst
    }

    /// Emits an i32 constant, returning its register.
    pub fn consti(&mut self, value: i32) -> Reg {
        let dst = self.reg();
        self.emit(Inst::ConstI { dst, value });
        dst
    }

    /// Emits a register move into an existing register.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Inst::Mov { dst, src });
    }

    // --- floating-point arithmetic --------------------------------------

    fn fbin(&mut self, op: FBinOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::FBin { op, dst, a, b });
        dst
    }

    /// `a + b`
    pub fn fadd(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbin(FBinOp::Add, a, b)
    }

    /// `a - b`
    pub fn fsub(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbin(FBinOp::Sub, a, b)
    }

    /// `a * b`
    pub fn fmul(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbin(FBinOp::Mul, a, b)
    }

    /// `a / b`
    pub fn fdiv(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbin(FBinOp::Div, a, b)
    }

    /// `min(a, b)`
    pub fn fmin(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbin(FBinOp::Min, a, b)
    }

    /// `max(a, b)`
    pub fn fmax(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbin(FBinOp::Max, a, b)
    }

    /// `atan2(a, b)`
    pub fn fatan2(&mut self, a: Reg, b: Reg) -> Reg {
        self.fbin(FBinOp::Atan2, a, b)
    }

    /// Accumulate in place: `dst += a` (no new register).
    pub fn fadd_into(&mut self, dst: Reg, a: Reg) {
        self.emit(Inst::FBin {
            op: FBinOp::Add,
            dst,
            a: dst,
            b: a,
        });
    }

    fn fun(&mut self, op: FUnOp, a: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::FUn { op, dst, a });
        dst
    }

    /// `-a`
    pub fn fneg(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Neg, a)
    }

    /// `|a|`
    pub fn fabs(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Abs, a)
    }

    /// `sqrt(a)`
    pub fn fsqrt(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Sqrt, a)
    }

    /// `sin(a)`
    pub fn fsin(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Sin, a)
    }

    /// `cos(a)`
    pub fn fcos(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Cos, a)
    }

    /// `floor(a)`
    pub fn ffloor(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Floor, a)
    }

    /// `e^a`
    pub fn fexp(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Exp, a)
    }

    /// `acos(a)`
    pub fn facos(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Acos, a)
    }

    /// `asin(a)`
    pub fn fasin(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Asin, a)
    }

    /// `atan(a)`
    pub fn fatan(&mut self, a: Reg) -> Reg {
        self.fun(FUnOp::Atan, a)
    }

    // --- integer arithmetic ---------------------------------------------

    fn ibin(&mut self, op: IBinOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::IBin { op, dst, a, b });
        dst
    }

    /// `a + b` (i32)
    pub fn iadd(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::Add, a, b)
    }

    /// `a - b` (i32)
    pub fn isub(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::Sub, a, b)
    }

    /// `a * b` (i32)
    pub fn imul(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::Mul, a, b)
    }

    /// `a % b` (i32)
    pub fn irem(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::Rem, a, b)
    }

    /// `a << b` (i32)
    pub fn ishl(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::Shl, a, b)
    }

    /// `a >> b` (i32)
    pub fn ishr(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::Shr, a, b)
    }

    /// `a & b` (i32)
    pub fn iand(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::And, a, b)
    }

    /// `a | b` (i32)
    pub fn ior(&mut self, a: Reg, b: Reg) -> Reg {
        self.ibin(IBinOp::Or, a, b)
    }

    /// Increment in place: `dst += a` (no new register).
    pub fn iadd_into(&mut self, dst: Reg, a: Reg) {
        self.emit(Inst::IBin {
            op: IBinOp::Add,
            dst,
            a: dst,
            b: a,
        });
    }

    // --- compares & conversions -----------------------------------------

    /// Floating compare producing 0/1.
    pub fn cmpf(&mut self, op: CmpOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::CmpF { op, dst, a, b });
        dst
    }

    /// Integer compare producing 0/1.
    pub fn cmpi(&mut self, op: CmpOp, a: Reg, b: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::CmpI { op, dst, a, b });
        dst
    }

    /// i32 → f32 conversion.
    pub fn itof(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::IToF { dst, src });
        dst
    }

    /// f32 → i32 (truncating) conversion.
    pub fn ftoi(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::FToI { dst, src });
        dst
    }

    /// Reinterprets i32 bits as f32 (lossless).
    pub fn bits_to_f(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::BitsToF { dst, src });
        dst
    }

    /// Reinterprets f32 bits as i32 (lossless).
    pub fn f_to_bits(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::FToBits { dst, src });
        dst
    }

    // --- memory -----------------------------------------------------------

    /// Loads `mem[base + offset]` into a fresh register.
    pub fn load(&mut self, base: Reg, offset: i32) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Load { dst, base, offset });
        dst
    }

    /// Stores `src` to `mem[base + offset]`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i32) {
        self.emit(Inst::Store { src, base, offset });
    }

    // --- control flow -----------------------------------------------------

    /// Branch to `target` when `cond != 0`.
    pub fn branch_if(&mut self, cond: Reg, target: Label) {
        self.emit(Inst::Branch { cond, target });
    }

    /// Branch to `target` when `cond == 0` (emits a compare + branch).
    pub fn branch_if_zero(&mut self, cond: Reg, target: Label) {
        let zero = self.consti(0);
        let is_zero = self.cmpi(CmpOp::Eq, cond, zero);
        self.branch_if(is_zero, target);
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: Label) {
        self.emit(Inst::Jump { target });
    }

    /// Calls `func` with `args`, writing returns into fresh registers.
    pub fn call(&mut self, func: FuncId, args: &[Reg], n_rets: usize) -> Vec<Reg> {
        let rets: Vec<Reg> = (0..n_rets).map(|_| self.reg()).collect();
        self.emit(Inst::Call {
            func: func.0,
            args: args.to_vec(),
            rets: rets.clone(),
        });
        rets
    }

    /// Emits `Ret`, returning the listed registers' values to the caller.
    ///
    /// All `ret` sites in one function must return the same number of
    /// values; [`build`](Self::build) enforces this.
    pub fn ret(&mut self, values: &[Reg]) {
        self.rets = values.to_vec();
        self.emit(Inst::Ret {
            vals: values.to_vec(),
        });
    }

    // --- NPU queue instructions --------------------------------------------

    /// `enq.d %src`
    pub fn enq_d(&mut self, src: Reg) {
        self.emit(Inst::EnqD { src });
    }

    /// `deq.d` into a fresh register.
    pub fn deq_d(&mut self) -> Reg {
        let dst = self.reg();
        self.emit(Inst::DeqD { dst });
        dst
    }

    /// `enq.c %src`
    pub fn enq_c(&mut self, src: Reg) {
        self.emit(Inst::EnqC { src });
    }

    /// `deq.c` into a fresh register.
    pub fn deq_c(&mut self) -> Reg {
        let dst = self.reg();
        self.emit(Inst::DeqC { dst });
        dst
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finalizes the function, resolving all labels.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnboundLabel`] if any branch or jump references a
    /// label that was never [`bind`](Self::bind)-ed, and
    /// [`IrError::MissingReturn`] if the function does not end in a
    /// terminator.
    pub fn build(mut self) -> Result<Function, IrError> {
        // Every function must end with an unconditional control transfer.
        match self.insts.last() {
            Some(Inst::Ret { .. }) | Some(Inst::Jump { .. }) => {}
            _ => return Err(IrError::MissingReturn(self.name.clone())),
        }
        // All return sites must agree on arity.
        let arity = self.rets.len();
        for inst in &self.insts {
            if let Inst::Ret { vals } = inst {
                if vals.len() != arity {
                    return Err(IrError::ArityMismatch {
                        expected: arity,
                        actual: vals.len(),
                    });
                }
            }
        }
        let bound = &self.bound;
        for inst in &mut self.insts {
            let target = match inst {
                Inst::Branch { target, .. } | Inst::Jump { target } => target,
                _ => continue,
            };
            match bound.get(&target.0) {
                Some(&idx) => *target = Label(idx),
                None => return Err(IrError::UnboundLabel(target.0)),
            }
        }
        Ok(Function::from_parts(
            self.name,
            self.n_params,
            self.next_reg as usize,
            self.rets,
            self.insts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_resolves_labels() {
        let mut b = FunctionBuilder::new("loop", 1);
        let n = b.param(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        b.bind(top);
        b.iadd_into(i, one);
        let done = b.cmpi(CmpOp::Ge, i, n);
        let exit = b.new_label();
        b.branch_if(done, exit);
        b.jump(top);
        b.bind(exit);
        b.ret(&[i]);
        let f = b.build().unwrap();
        // Jump target must point at the bound index, not the label id.
        let jump_target = f
            .insts()
            .iter()
            .find_map(|inst| match inst {
                Inst::Jump { target } => Some(target.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(jump_target, 2); // after the two consts
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = FunctionBuilder::new("bad", 0);
        let l = b.new_label();
        b.jump(l);
        assert_eq!(b.build().unwrap_err(), IrError::UnboundLabel(0));
    }

    #[test]
    fn missing_return_is_an_error() {
        let mut b = FunctionBuilder::new("fallsoff", 0);
        b.constf(1.0);
        assert!(matches!(b.build(), Err(IrError::MissingReturn(_))));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = FunctionBuilder::new("dup", 0);
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn params_occupy_low_registers() {
        let mut b = FunctionBuilder::new("f", 2);
        assert_eq!(b.param(0), Reg(0));
        assert_eq!(b.param(1), Reg(1));
        assert_eq!(b.reg(), Reg(2));
    }
}

//! The tracing interpreter.

use crate::trace::{BranchInfo, MemAccess, NullSink, OpClass, TraceEvent, TraceSink};
use crate::{FBinOp, FUnOp, FuncId, IBinOp, Inst, IrError, Program, Reg};
use serde::{Deserialize, Serialize};

/// A dynamically typed register value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 32-bit float.
    F(f32),
    /// 32-bit integer.
    I(i32),
}

impl Value {
    /// The value as `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TypeMismatch`] if the value is an integer.
    pub fn as_f32(self) -> Result<f32, IrError> {
        match self {
            Value::F(v) => Ok(v),
            Value::I(_) => Err(IrError::TypeMismatch {
                expected: "f32",
                at: 0,
            }),
        }
    }

    /// The value as `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::TypeMismatch`] if the value is a float.
    pub fn as_i32(self) -> Result<i32, IrError> {
        match self {
            Value::I(v) => Ok(v),
            Value::F(_) => Err(IrError::TypeMismatch {
                expected: "i32",
                at: 0,
            }),
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I(v)
    }
}

/// The CPU-side view of the NPU queues (paper Section 5.1).
///
/// The interpreter routes `enq.c`/`deq.c`/`enq.d`/`deq.d` through this
/// trait; the `npu` crate's simulator implements it, and tests can provide
/// stubs.
pub trait NpuPort {
    /// `enq.c`: push one configuration word.
    fn enq_config(&mut self, word: u32);
    /// `deq.c`: pop one configuration word (context-switch save path).
    fn deq_config(&mut self) -> u32;
    /// `enq.d`: push one input value; the NPU starts evaluation once all
    /// inputs of an invocation have arrived.
    fn enq_data(&mut self, value: f32);
    /// `deq.d`: pop one output value.
    fn deq_data(&mut self) -> f32;
}

/// Result of a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The function's declared return values.
    pub outputs: Vec<Value>,
    /// Dynamic instructions executed.
    pub executed: u64,
}

/// Executes IR programs, optionally emitting a dynamic trace and talking to
/// an attached NPU.
///
/// The interpreter owns a flat f32 data memory (word addressed in the IR,
/// byte addresses ×4 in the trace). Preload it with
/// [`memory_mut`](Self::memory_mut) before running.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    memory: Vec<f32>,
    budget: u64,
    max_depth: usize,
    /// Recycled register/argument buffers: each frame pops one on entry and
    /// pushes it back on return, so steady-state execution (including the
    /// per-invocation loops in the benchmark sweep) allocates nothing.
    value_pool: Vec<Vec<Value>>,
}

const DEFAULT_BUDGET: u64 = u64::MAX;
const MAX_DEPTH: usize = 64;

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program` with an empty data memory.
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            memory: Vec::new(),
            budget: DEFAULT_BUDGET,
            max_depth: MAX_DEPTH,
            value_pool: Vec::new(),
        }
    }

    /// Sets the data memory size in f32 words (zero filled), returning
    /// `self` for chaining.
    pub fn with_memory(mut self, words: usize) -> Self {
        self.memory = vec![0.0; words];
        self
    }

    /// Caps the number of dynamic instructions (guards runaway loops).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Read access to the data memory.
    pub fn memory(&self) -> &[f32] {
        &self.memory
    }

    /// Mutable access to the data memory (for preloading inputs).
    pub fn memory_mut(&mut self) -> &mut Vec<f32> {
        &mut self.memory
    }

    /// Runs `func` functionally (no trace, no NPU).
    ///
    /// # Errors
    ///
    /// Propagates any runtime [`IrError`]; NPU queue instructions fail with
    /// [`IrError::NoNpuAttached`].
    pub fn run(&mut self, func: FuncId, args: &[Value]) -> Result<Vec<Value>, IrError> {
        // Monomorphized on `NullSink`: the compiler sees `event` is a no-op
        // and elides trace-event construction entirely on this path.
        let mut executed = 0u64;
        let mut npu: Option<&mut dyn NpuPort> = None;
        self.exec_frame(func, args, &mut NullSink, &mut npu, &mut executed, 0)
    }

    /// Runs `func` while emitting the dynamic trace into `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_traced<S: TraceSink + ?Sized>(
        &mut self,
        func: FuncId,
        args: &[Value],
        sink: &mut S,
    ) -> Result<RunOutcome, IrError> {
        self.run_full(func, args, sink, None)
    }

    /// Runs `func` with both a trace sink and an attached NPU port.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run), except NPU instructions now succeed.
    pub fn run_full<S: TraceSink + ?Sized>(
        &mut self,
        func: FuncId,
        args: &[Value],
        sink: &mut S,
        mut npu: Option<&mut dyn NpuPort>,
    ) -> Result<RunOutcome, IrError> {
        let mut executed = 0u64;
        let outputs = self.exec_frame(func, args, sink, &mut npu, &mut executed, 0)?;
        Ok(RunOutcome { outputs, executed })
    }

    #[allow(clippy::too_many_lines)]
    fn exec_frame<S: TraceSink + ?Sized>(
        &mut self,
        func: FuncId,
        args: &[Value],
        sink: &mut S,
        npu: &mut Option<&mut dyn NpuPort>,
        executed: &mut u64,
        depth: usize,
    ) -> Result<Vec<Value>, IrError> {
        if depth > self.max_depth {
            return Err(IrError::StackOverflow);
        }
        // `self.program` is `&'p Program`, so this borrow is independent of
        // `&mut self` and recursion below stays legal without cloning.
        let f: &'p crate::Function = self
            .program
            .function_by_index(func.0)
            .ok_or(IrError::UnknownFunction(func.0))?;
        if args.len() != f.n_params() {
            return Err(IrError::ArityMismatch {
                expected: f.n_params(),
                actual: args.len(),
            });
        }
        // Frames recycle buffers through `value_pool`; buffers held across
        // an early `?` return are simply dropped, which only shrinks the
        // pool on (rare, run-terminating) error paths.
        let mut regs = self.value_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(f.n_regs(), Value::I(0));
        regs[..args.len()].copy_from_slice(args);

        let base_pc = (func.0 as u64) << 32;
        let mut pc = 0usize;
        let insts = f.insts();
        loop {
            if pc >= insts.len() {
                return Err(IrError::MissingReturn(f.name().to_string()));
            }
            if *executed >= self.budget {
                return Err(IrError::BudgetExhausted);
            }
            *executed += 1;
            let cur_pc = base_pc | pc as u64;
            let inst = &insts[pc];
            pc += 1;
            match inst {
                Inst::ConstF { dst, value } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [None; 3],
                        Some(dst.0),
                    ));
                    regs[dst.0 as usize] = Value::F(*value);
                }
                Inst::ConstI { dst, value } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [None; 3],
                        Some(dst.0),
                    ));
                    regs[dst.0 as usize] = Value::I(*value);
                }
                Inst::Mov { dst, src } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [Some(src.0), None, None],
                        Some(dst.0),
                    ));
                    regs[dst.0 as usize] = regs[src.0 as usize];
                }
                Inst::FBin { op, dst, a, b } => {
                    let class = match op {
                        FBinOp::Mul => OpClass::FpMul,
                        FBinOp::Div => OpClass::FpDiv,
                        FBinOp::Atan2 => OpClass::FpTrig,
                        _ => OpClass::FpAdd,
                    };
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        class,
                        [Some(a.0), Some(b.0), None],
                        Some(dst.0),
                    ));
                    let x = self.reg_f32(&regs, *a, pc)?;
                    let y = self.reg_f32(&regs, *b, pc)?;
                    let r = match op {
                        FBinOp::Add => x + y,
                        FBinOp::Sub => x - y,
                        FBinOp::Mul => x * y,
                        FBinOp::Div => x / y,
                        FBinOp::Min => x.min(y),
                        FBinOp::Max => x.max(y),
                        FBinOp::Atan2 => x.atan2(y),
                    };
                    regs[dst.0 as usize] = Value::F(r);
                }
                Inst::FUn { op, dst, a } => {
                    let class = match op {
                        FUnOp::Sqrt => OpClass::FpSqrt,
                        FUnOp::Sin
                        | FUnOp::Cos
                        | FUnOp::Exp
                        | FUnOp::Acos
                        | FUnOp::Asin
                        | FUnOp::Atan => OpClass::FpTrig,
                        _ => OpClass::FpAdd,
                    };
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        class,
                        [Some(a.0), None, None],
                        Some(dst.0),
                    ));
                    let x = self.reg_f32(&regs, *a, pc)?;
                    let r = match op {
                        FUnOp::Neg => -x,
                        FUnOp::Abs => x.abs(),
                        FUnOp::Sqrt => x.sqrt(),
                        FUnOp::Sin => x.sin(),
                        FUnOp::Cos => x.cos(),
                        FUnOp::Floor => x.floor(),
                        FUnOp::Exp => x.exp(),
                        FUnOp::Acos => x.acos(),
                        FUnOp::Asin => x.asin(),
                        FUnOp::Atan => x.atan(),
                    };
                    regs[dst.0 as usize] = Value::F(r);
                }
                Inst::IBin { op, dst, a, b } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [Some(a.0), Some(b.0), None],
                        Some(dst.0),
                    ));
                    let x = self.reg_i32(&regs, *a, pc)?;
                    let y = self.reg_i32(&regs, *b, pc)?;
                    let r = match op {
                        IBinOp::Add => x.wrapping_add(y),
                        IBinOp::Sub => x.wrapping_sub(y),
                        IBinOp::Mul => x.wrapping_mul(y),
                        IBinOp::Shl => x.wrapping_shl(y as u32),
                        IBinOp::Shr => x.wrapping_shr(y as u32),
                        IBinOp::And => x & y,
                        IBinOp::Or => x | y,
                        IBinOp::Rem => {
                            if y == 0 {
                                0
                            } else {
                                x.wrapping_rem(y)
                            }
                        }
                    };
                    regs[dst.0 as usize] = Value::I(r);
                }
                Inst::CmpF { op, dst, a, b } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::FpAdd,
                        [Some(a.0), Some(b.0), None],
                        Some(dst.0),
                    ));
                    let x = self.reg_f32(&regs, *a, pc)?;
                    let y = self.reg_f32(&regs, *b, pc)?;
                    regs[dst.0 as usize] = Value::I(op.eval_f32(x, y) as i32);
                }
                Inst::CmpI { op, dst, a, b } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [Some(a.0), Some(b.0), None],
                        Some(dst.0),
                    ));
                    let x = self.reg_i32(&regs, *a, pc)?;
                    let y = self.reg_i32(&regs, *b, pc)?;
                    regs[dst.0 as usize] = Value::I(op.eval_i32(x, y) as i32);
                }
                Inst::IToF { dst, src } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [Some(src.0), None, None],
                        Some(dst.0),
                    ));
                    let v = self.reg_i32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::F(v as f32);
                }
                Inst::FToI { dst, src } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [Some(src.0), None, None],
                        Some(dst.0),
                    ));
                    let v = self.reg_f32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::I(v as i32);
                }
                Inst::BitsToF { dst, src } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [Some(src.0), None, None],
                        Some(dst.0),
                    ));
                    let v = self.reg_i32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::F(f32::from_bits(v as u32));
                }
                Inst::FToBits { dst, src } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::IntAlu,
                        [Some(src.0), None, None],
                        Some(dst.0),
                    ));
                    let v = self.reg_f32(&regs, *src, pc)?;
                    regs[dst.0 as usize] = Value::I(v.to_bits() as i32);
                }
                Inst::Load { dst, base, offset } => {
                    let addr = self.reg_i32(&regs, *base, pc)? as i64 + *offset as i64;
                    let idx = self.check_addr(addr)?;
                    sink.event(&TraceEvent {
                        pc: cur_pc,
                        class: OpClass::Load,
                        srcs: [Some(base.0), None, None],
                        dst: Some(dst.0),
                        mem: Some(MemAccess {
                            addr: (idx as u64) * 4,
                            is_store: false,
                        }),
                        branch: None,
                    });
                    regs[dst.0 as usize] = Value::F(self.memory[idx]);
                }
                Inst::Store { src, base, offset } => {
                    let addr = self.reg_i32(&regs, *base, pc)? as i64 + *offset as i64;
                    let idx = self.check_addr(addr)?;
                    sink.event(&TraceEvent {
                        pc: cur_pc,
                        class: OpClass::Store,
                        srcs: [Some(src.0), Some(base.0), None],
                        dst: None,
                        mem: Some(MemAccess {
                            addr: (idx as u64) * 4,
                            is_store: true,
                        }),
                        branch: None,
                    });
                    self.memory[idx] = self.reg_f32(&regs, *src, pc)?;
                }
                Inst::Branch { cond, target } => {
                    let taken = self.reg_i32(&regs, *cond, pc)? != 0;
                    let target_idx = target.0 as usize;
                    sink.event(&TraceEvent {
                        pc: cur_pc,
                        class: OpClass::Branch,
                        srcs: [Some(cond.0), None, None],
                        dst: None,
                        mem: None,
                        branch: Some(BranchInfo {
                            taken,
                            conditional: true,
                            target: base_pc | target_idx as u64,
                        }),
                    });
                    if taken {
                        pc = target_idx;
                    }
                }
                Inst::Jump { target } => {
                    let target_idx = target.0 as usize;
                    sink.event(&TraceEvent {
                        pc: cur_pc,
                        class: OpClass::Jump,
                        srcs: [None; 3],
                        dst: None,
                        mem: None,
                        branch: Some(BranchInfo {
                            taken: true,
                            conditional: false,
                            target: base_pc | target_idx as u64,
                        }),
                    });
                    pc = target_idx;
                }
                Inst::Call {
                    func: callee,
                    args: arg_regs,
                    rets,
                } => {
                    sink.event(&TraceEvent {
                        pc: cur_pc,
                        class: OpClass::Call,
                        srcs: [None; 3],
                        dst: None,
                        mem: None,
                        branch: Some(BranchInfo {
                            taken: true,
                            conditional: false,
                            target: (*callee as u64) << 32,
                        }),
                    });
                    let mut arg_vals = self.value_pool.pop().unwrap_or_default();
                    arg_vals.clear();
                    arg_vals.extend(arg_regs.iter().map(|r| regs[r.0 as usize]));
                    let results = self.exec_frame(
                        FuncId(*callee),
                        &arg_vals,
                        sink,
                        npu,
                        executed,
                        depth + 1,
                    )?;
                    self.value_pool.push(arg_vals);
                    for (dst, &v) in rets.iter().zip(&results) {
                        regs[dst.0 as usize] = v;
                    }
                    self.value_pool.push(results);
                }
                Inst::Ret { vals } => {
                    sink.event(&TraceEvent {
                        pc: cur_pc,
                        class: OpClass::Ret,
                        srcs: [None; 3],
                        dst: None,
                        mem: None,
                        branch: Some(BranchInfo {
                            taken: true,
                            conditional: false,
                            target: 0,
                        }),
                    });
                    let mut out = self.value_pool.pop().unwrap_or_default();
                    out.clear();
                    out.extend(vals.iter().map(|r| regs[r.0 as usize]));
                    self.value_pool.push(regs);
                    return Ok(out);
                }
                Inst::EnqD { src } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::NpuEnqD,
                        [Some(src.0), None, None],
                        None,
                    ));
                    let v = self.reg_f32(&regs, *src, pc)?;
                    match npu {
                        Some(port) => port.enq_data(v),
                        None => return Err(IrError::NoNpuAttached),
                    }
                }
                Inst::DeqD { dst } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::NpuDeqD,
                        [None; 3],
                        Some(dst.0),
                    ));
                    match npu {
                        Some(port) => regs[dst.0 as usize] = Value::F(port.deq_data()),
                        None => return Err(IrError::NoNpuAttached),
                    }
                }
                Inst::EnqC { src } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::NpuEnqC,
                        [Some(src.0), None, None],
                        None,
                    ));
                    let v = self.reg_i32(&regs, *src, pc)?;
                    match npu {
                        Some(port) => port.enq_config(v as u32),
                        None => return Err(IrError::NoNpuAttached),
                    }
                }
                Inst::DeqC { dst } => {
                    sink.event(&TraceEvent::simple(
                        cur_pc,
                        OpClass::NpuDeqC,
                        [None; 3],
                        Some(dst.0),
                    ));
                    match npu {
                        Some(port) => regs[dst.0 as usize] = Value::I(port.deq_config() as i32),
                        None => return Err(IrError::NoNpuAttached),
                    }
                }
            }
        }
    }

    fn reg_f32(&self, regs: &[Value], r: Reg, at: usize) -> Result<f32, IrError> {
        match regs[r.0 as usize] {
            Value::F(v) => Ok(v),
            Value::I(_) => Err(IrError::TypeMismatch {
                expected: "f32",
                at: at.saturating_sub(1),
            }),
        }
    }

    fn reg_i32(&self, regs: &[Value], r: Reg, at: usize) -> Result<i32, IrError> {
        match regs[r.0 as usize] {
            Value::I(v) => Ok(v),
            Value::F(_) => Err(IrError::TypeMismatch {
                expected: "i32",
                at: at.saturating_sub(1),
            }),
        }
    }

    fn check_addr(&self, addr: i64) -> Result<usize, IrError> {
        if addr < 0 || addr as usize >= self.memory.len() {
            return Err(IrError::OutOfBoundsMemory {
                addr,
                size: self.memory.len(),
            });
        }
        Ok(addr as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, CountingSink, FunctionBuilder, VecSink};

    fn single(program_fn: Function) -> (Program, FuncId) {
        let mut p = Program::new();
        let id = p.add_function(program_fn);
        (p, id)
    }
    use crate::Function;

    #[test]
    fn arithmetic_and_return() {
        let mut b = FunctionBuilder::new("f", 2);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.fadd(x, y);
        let d = b.fsub(x, y);
        let p = b.fmul(s, d); // (x+y)(x-y) = x^2 - y^2
        b.ret(&[p]);
        let (program, f) = single(b.build().unwrap());
        let out = Interpreter::new(&program)
            .run(f, &[Value::F(5.0), Value::F(3.0)])
            .unwrap();
        assert_eq!(out[0].as_f32().unwrap(), 16.0);
    }

    #[test]
    fn loop_sums_integers() {
        // sum 1..=n
        let mut b = FunctionBuilder::new("sum", 1);
        let n = b.param(0);
        let acc = b.consti(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit);
        b.iadd_into(i, one);
        b.iadd_into(acc, i);
        b.jump(top);
        b.bind(exit);
        b.ret(&[acc]);
        let (program, f) = single(b.build().unwrap());
        let out = Interpreter::new(&program).run(f, &[Value::I(10)]).unwrap();
        assert_eq!(out[0].as_i32().unwrap(), 55);
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let mut b = FunctionBuilder::new("memrt", 1);
        let addr = b.param(0);
        let v = b.constf(2.5);
        b.store(v, addr, 1);
        let r = b.load(addr, 1);
        let doubled = b.fadd(r, r);
        b.ret(&[doubled]);
        let (program, f) = single(b.build().unwrap());
        let out = Interpreter::new(&program)
            .with_memory(16)
            .run(f, &[Value::I(4)])
            .unwrap();
        assert_eq!(out[0].as_f32().unwrap(), 5.0);
    }

    #[test]
    fn out_of_bounds_memory_is_reported() {
        let mut b = FunctionBuilder::new("oob", 1);
        let addr = b.param(0);
        let r = b.load(addr, 0);
        b.ret(&[r]);
        let (program, f) = single(b.build().unwrap());
        let err = Interpreter::new(&program)
            .with_memory(8)
            .run(f, &[Value::I(9)])
            .unwrap_err();
        assert!(matches!(
            err,
            IrError::OutOfBoundsMemory { addr: 9, size: 8 }
        ));
    }

    #[test]
    fn calls_pass_args_and_returns() {
        let mut callee = FunctionBuilder::new("square", 1);
        let x = callee.param(0);
        let xx = callee.fmul(x, x);
        callee.ret(&[xx]);

        let mut program = Program::new();
        let sq = program.add_function(callee.build().unwrap());

        let mut caller = FunctionBuilder::new("main", 1);
        let a = caller.param(0);
        let r = caller.call(sq, &[a], 1);
        let two = caller.constf(2.0);
        let out = caller.fmul(r[0], two);
        caller.ret(&[out]);
        let main = program.add_function(caller.build().unwrap());

        let result = Interpreter::new(&program)
            .run(main, &[Value::F(3.0)])
            .unwrap();
        assert_eq!(result[0].as_f32().unwrap(), 18.0);
    }

    #[test]
    fn trace_counts_and_branch_info() {
        let mut b = FunctionBuilder::new("b", 1);
        let x = b.param(0);
        let zero = b.constf(0.0);
        let neg = b.cmpf(CmpOp::Lt, x, zero);
        let skip = b.new_label();
        b.branch_if(neg, skip);
        let y = b.fadd(x, x);
        b.ret(&[y]);
        b.bind(skip);
        let z = b.fneg(x);
        b.ret(&[z]);
        let (program, f) = single(b.build().unwrap());

        let mut sink = VecSink::default();
        let mut interp = Interpreter::new(&program);
        let outcome = interp.run_traced(f, &[Value::F(-2.0)], &mut sink).unwrap();
        assert_eq!(outcome.outputs[0].as_f32().unwrap(), 2.0);
        let branch_ev = sink
            .events
            .iter()
            .find(|e| e.class == OpClass::Branch)
            .unwrap();
        assert!(branch_ev.branch.unwrap().taken);

        // Not-taken path
        let mut sink2 = CountingSink::default();
        let outcome2 = interp.run_traced(f, &[Value::F(2.0)], &mut sink2).unwrap();
        assert_eq!(outcome2.outputs[0].as_f32().unwrap(), 4.0);
        assert_eq!(sink2.control, 2); // branch + ret
    }

    #[test]
    fn npu_instructions_require_port() {
        let mut b = FunctionBuilder::new("npu", 1);
        let x = b.param(0);
        b.enq_d(x);
        let y = b.deq_d();
        b.ret(&[y]);
        let (program, f) = single(b.build().unwrap());
        let err = Interpreter::new(&program)
            .run(f, &[Value::F(1.0)])
            .unwrap_err();
        assert_eq!(err, IrError::NoNpuAttached);
    }

    #[test]
    fn npu_port_echo() {
        struct Echo(Vec<f32>);
        impl NpuPort for Echo {
            fn enq_config(&mut self, _w: u32) {}
            fn deq_config(&mut self) -> u32 {
                0
            }
            fn enq_data(&mut self, v: f32) {
                self.0.push(v);
            }
            fn deq_data(&mut self) -> f32 {
                self.0.remove(0) * 10.0
            }
        }
        let mut b = FunctionBuilder::new("npu", 2);
        let (x, y) = (b.param(0), b.param(1));
        b.enq_d(x);
        b.enq_d(y);
        let a = b.deq_d();
        let c = b.deq_d();
        let s = b.fadd(a, c);
        b.ret(&[s]);
        let (program, f) = single(b.build().unwrap());
        let mut echo = Echo(Vec::new());
        let mut sink = NullSink;
        let out = Interpreter::new(&program)
            .run_full(
                f,
                &[Value::F(1.0), Value::F(2.0)],
                &mut sink,
                Some(&mut echo),
            )
            .unwrap();
        assert_eq!(out.outputs[0].as_f32().unwrap(), 30.0);
    }

    #[test]
    fn budget_stops_infinite_loops() {
        let mut b = FunctionBuilder::new("spin", 0);
        let top = b.new_label();
        b.bind(top);
        b.jump(top);
        let (program, f) = single(b.build().unwrap());
        let err = Interpreter::new(&program)
            .with_budget(1000)
            .run(f, &[])
            .unwrap_err();
        assert_eq!(err, IrError::BudgetExhausted);
    }

    #[test]
    fn type_mismatch_detected() {
        let mut b = FunctionBuilder::new("t", 1);
        let x = b.param(0); // will receive an i32
        let y = b.fadd(x, x); // fp op on i32
        b.ret(&[y]);
        let (program, f) = single(b.build().unwrap());
        let err = Interpreter::new(&program)
            .run(f, &[Value::I(3)])
            .unwrap_err();
        assert!(matches!(
            err,
            IrError::TypeMismatch {
                expected: "f32",
                ..
            }
        ));
    }

    #[test]
    fn arity_checked() {
        let mut b = FunctionBuilder::new("two", 2);
        b.ret(&[]);
        let (program, f) = single(b.build().unwrap());
        let err = Interpreter::new(&program)
            .run(f, &[Value::F(0.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            IrError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }
}

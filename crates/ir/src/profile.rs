//! Hot-code profiling (paper Section 3.1).
//!
//! "Like any acceleration technique, the Parrot transformation should
//! replace hot code. … A traditional performance profiler can reveal hot
//! code." This module is that profiler: a [`TraceSink`] that attributes
//! dynamic instructions to the function executing them, so the programmer
//! (or an automatic pass) can rank candidate regions by coverage before
//! annotating one.

use crate::trace::{TraceEvent, TraceSink};
use crate::Program;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-function dynamic execution profile.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Dynamic instructions attributed to each function id.
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Total dynamic instructions observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Dynamic instructions attributed to function `id`.
    pub fn count(&self, id: u32) -> u64 {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Fraction of all dynamic instructions spent in function `id` —
    /// the "hotness" that makes a region worth transforming.
    pub fn coverage(&self, id: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(id) as f64 / self.total as f64
        }
    }

    /// Function ids ranked by dynamic instruction count, hottest first.
    pub fn ranked(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.counts.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The hottest function, if anything executed.
    pub fn hottest(&self) -> Option<u32> {
        self.ranked().first().map(|&(id, _)| id)
    }

    /// Renders a flat profile report with function names from `program`.
    pub fn report(&self, program: &Program) -> String {
        let mut out = String::from("  dyn insts      %  function\n");
        for (id, count) in self.ranked() {
            let name = program
                .function_by_index(id)
                .map(|f| f.name().to_string())
                .unwrap_or_else(|| format!("f{id}"));
            out.push_str(&format!(
                "{count:>11}  {:>5.1}  {name}\n",
                100.0 * self.coverage(id)
            ));
        }
        out
    }
}

impl TraceSink for Profile {
    fn event(&mut self, ev: &TraceEvent) {
        // The function id is the high half of the static PC.
        let func = (ev.pc >> 32) as u32;
        *self.counts.entry(func).or_insert(0) += 1;
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder, Interpreter};

    /// A program where `hot` runs in a loop and `cold` runs once.
    fn program() -> (Program, crate::FuncId) {
        let mut p = Program::new();

        let mut hot = FunctionBuilder::new("hot", 1);
        let x = hot.param(0);
        let mut acc = x;
        for _ in 0..8 {
            acc = hot.fmul(acc, x);
        }
        hot.ret(&[acc]);
        let hot_id = p.add_function(hot.build().unwrap());

        let mut cold = FunctionBuilder::new("cold", 1);
        let y = cold.param(0);
        let d = cold.fadd(y, y);
        cold.ret(&[d]);
        let cold_id = p.add_function(cold.build().unwrap());

        let mut main = FunctionBuilder::new("main", 0);
        let v = main.constf(1.001);
        let cold_out = main.call(cold_id, &[v], 1);
        let i = main.consti(0);
        let n = main.consti(50);
        let one = main.consti(1);
        let top = main.new_label();
        let done = main.new_label();
        main.bind(top);
        let fin = main.cmpi(CmpOp::Ge, i, n);
        main.branch_if(fin, done);
        main.call(hot_id, &[cold_out[0]], 1);
        main.iadd_into(i, one);
        main.jump(top);
        main.bind(done);
        main.ret(&[]);
        let main_id = p.add_function(main.build().unwrap());
        (p, main_id)
    }

    #[test]
    fn profiler_finds_the_hot_function() {
        let (p, main_id) = program();
        let mut profile = Profile::new();
        Interpreter::new(&p)
            .run_traced(main_id, &[], &mut profile)
            .unwrap();
        // Function ids: 0 = hot, 1 = cold, 2 = main.
        assert_eq!(profile.hottest(), Some(0));
        assert!(profile.coverage(0) > 0.5, "{}", profile.coverage(0));
        assert!(profile.count(1) < profile.count(0) / 10);
        assert_eq!(
            profile.total(),
            profile.count(0) + profile.count(1) + profile.count(2)
        );
    }

    #[test]
    fn ranked_is_descending_and_report_renders() {
        let (p, main_id) = program();
        let mut profile = Profile::new();
        Interpreter::new(&p)
            .run_traced(main_id, &[], &mut profile)
            .unwrap();
        let ranked = profile.ranked();
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let report = profile.report(&p);
        assert!(report.contains("hot"));
        assert!(report.contains("cold"));
        assert!(report.contains("main"));
        // The hot function is the first data row.
        assert!(report.lines().nth(1).unwrap().contains("hot"));
    }

    #[test]
    fn empty_profile_is_safe() {
        let profile = Profile::new();
        assert_eq!(profile.total(), 0);
        assert_eq!(profile.coverage(0), 0.0);
        assert_eq!(profile.hottest(), None);
    }
}

//! Dynamic execution traces: the interface between the interpreter and the
//! cycle-level core model.

use serde::{Deserialize, Serialize};

/// Coarse operation classes, used by the core model to pick functional
/// units and latencies, and by the energy model to price events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU work (arithmetic, compares, moves, conversions).
    IntAlu,
    /// Floating-point add/sub/compare/min/max.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Floating-point square root.
    FpSqrt,
    /// Trigonometric libm stand-ins (`sin`, `cos`).
    FpTrig,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// Function call (unconditional transfer, pushes return address).
    Call,
    /// Function return (unconditional transfer, pops return address).
    Ret,
    /// `enq.d` NPU input enqueue.
    NpuEnqD,
    /// `deq.d` NPU output dequeue.
    NpuDeqD,
    /// `enq.c` NPU config enqueue.
    NpuEnqC,
    /// `deq.c` NPU config dequeue.
    NpuDeqC,
}

impl OpClass {
    /// Whether this is one of the four NPU queue instructions.
    pub fn is_npu_queue(self) -> bool {
        matches!(
            self,
            OpClass::NpuEnqD | OpClass::NpuDeqD | OpClass::NpuEnqC | OpClass::NpuDeqC
        )
    }

    /// Whether the instruction redirects the fetch stream.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            OpClass::Branch | OpClass::Jump | OpClass::Call | OpClass::Ret
        )
    }

    /// Whether the op executes on the floating-point units.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt | OpClass::FpTrig
        )
    }
}

/// Memory behaviour of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// `true` for stores.
    pub is_store: bool,
}

/// Control behaviour of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch was taken in this execution.
    pub taken: bool,
    /// Whether the instruction is a *conditional* branch (predictable both
    /// ways) as opposed to a jump/call/return.
    pub conditional: bool,
    /// The dynamic target program counter (for BTB modelling).
    pub target: u64,
}

/// One dynamically executed instruction.
///
/// Register identifiers are the IR's virtual register indices; the core
/// model's renaming stage maps them to physical registers. `srcs` lists up
/// to three source registers (unused slots are `None`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Static program counter: `(function id << 32) | instruction index`.
    pub pc: u64,
    /// Operation class.
    pub class: OpClass,
    /// Source registers.
    pub srcs: [Option<u16>; 3],
    /// Destination register, if the instruction writes one.
    pub dst: Option<u16>,
    /// Memory access, for loads/stores.
    pub mem: Option<MemAccess>,
    /// Branch outcome, for control instructions.
    pub branch: Option<BranchInfo>,
}

impl TraceEvent {
    /// A plain ALU-style event with no memory or control side effects.
    pub fn simple(pc: u64, class: OpClass, srcs: [Option<u16>; 3], dst: Option<u16>) -> Self {
        TraceEvent {
            pc,
            class,
            srcs,
            dst,
            mem: None,
            branch: None,
        }
    }
}

/// Consumes trace events as the interpreter produces them.
///
/// The `uarch` crate's core model implements this to simulate timing while
/// the program runs; lightweight sinks below support counting and capture.
pub trait TraceSink {
    /// Receives the next dynamically executed instruction.
    fn event(&mut self, ev: &TraceEvent);
}

/// A sink that discards everything (functional-only execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _ev: &TraceEvent) {}
}

/// Counts dynamic instructions by class.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total events seen.
    pub total: u64,
    /// NPU queue instructions (`enq.d`/`deq.d`/`enq.c`/`deq.c`).
    pub npu_queue: u64,
    /// Loads + stores.
    pub memory: u64,
    /// Control-flow instructions.
    pub control: u64,
    /// Floating-point instructions.
    pub fp: u64,
}

impl TraceSink for CountingSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.total += 1;
        if ev.class.is_npu_queue() {
            self.npu_queue += 1;
        }
        if matches!(ev.class, OpClass::Load | OpClass::Store) {
            self.memory += 1;
        }
        if ev.class.is_control() {
            self.control += 1;
        }
        if ev.class.is_fp() {
            self.fp += 1;
        }
    }
}

/// Captures every event into a vector (tests and small traces only).
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The captured events in execution order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn event(&mut self, ev: &TraceEvent) {
        (**self).event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(OpClass::NpuEnqD.is_npu_queue());
        assert!(!OpClass::Load.is_npu_queue());
        assert!(OpClass::Branch.is_control());
        assert!(OpClass::Call.is_control());
        assert!(OpClass::FpSqrt.is_fp());
        assert!(!OpClass::IntAlu.is_fp());
    }

    #[test]
    fn counting_sink_classifies() {
        let mut sink = CountingSink::default();
        sink.event(&TraceEvent::simple(0, OpClass::FpMul, [None; 3], Some(1)));
        sink.event(&TraceEvent {
            pc: 1,
            class: OpClass::Load,
            srcs: [Some(0), None, None],
            dst: Some(2),
            mem: Some(MemAccess {
                addr: 64,
                is_store: false,
            }),
            branch: None,
        });
        sink.event(&TraceEvent::simple(
            2,
            OpClass::NpuEnqD,
            [Some(2), None, None],
            None,
        ));
        assert_eq!(sink.total, 3);
        assert_eq!(sink.npu_queue, 1);
        assert_eq!(sink.memory, 1);
        assert_eq!(sink.fp, 1);
    }
}

//! Programs: collections of functions.

use crate::Function;
use serde::{Deserialize, Serialize};

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// A whole IR program: an indexed function table.
///
/// # Example
///
/// ```
/// use approx_ir::{FunctionBuilder, Program};
///
/// let mut b = FunctionBuilder::new("id", 1);
/// let p = b.param(0);
/// b.ret(&[p]);
/// let mut program = Program::new();
/// let id = program.add_function(b.build()?);
/// assert_eq!(program.function(id).name(), "id");
/// # Ok::<(), approx_ir::IrError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a function, returning its id. Ids are stable and dense; a
    /// `Call` instruction's `func` field is the id's index.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        FuncId(self.functions.len() as u32 - 1)
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this program.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Fallible lookup by raw index.
    pub fn function_by_index(&self, index: u32) -> Option<&Function> {
        self.functions.get(index as usize)
    }

    /// Looks a function up by name.
    pub fn function_id_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name() == name)
            .map(|i| FuncId(i as u32))
    }

    /// All functions in id order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    #[test]
    fn lookup_by_name() {
        let mut program = Program::new();
        for name in ["a", "b", "c"] {
            let mut b = FunctionBuilder::new(name, 0);
            b.ret(&[]);
            program.add_function(b.build().unwrap());
        }
        assert_eq!(program.function_id_by_name("b"), Some(FuncId(1)));
        assert_eq!(program.function_id_by_name("zz"), None);
        assert_eq!(program.len(), 3);
    }
}

//! Static characterization of candidate regions (Table 1, left half).

use crate::{Function, Inst, Program};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Static counts for a region: the paper's Table 1 reports, per transformed
/// function, the number of function calls, loops, `if`/`else` constructs,
/// and (x86-64) instructions — the latter excluding standard-library code,
/// which this IR represents as single `sin`/`cos`/`sqrt` operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticCounts {
    /// Static `Call` sites in the region (including those in callees).
    pub function_calls: usize,
    /// Loops, counted as backward control-flow edges.
    pub loops: usize,
    /// `if`/`else` constructs, counted as forward conditional branches.
    pub ifs: usize,
    /// Total static instructions across the region and its callees.
    pub instructions: usize,
}

/// Computes [`StaticCounts`] for `root` and every function it transitively
/// calls within `program`.
///
/// # Example
///
/// ```
/// use approx_ir::{static_counts, FunctionBuilder, Program};
///
/// let mut b = FunctionBuilder::new("f", 1);
/// let x = b.param(0);
/// let y = b.fadd(x, x);
/// b.ret(&[y]);
/// let mut p = Program::new();
/// let f = p.add_function(b.build()?);
/// let c = static_counts(&p, f);
/// assert_eq!(c.instructions, 2);
/// assert_eq!(c.loops, 0);
/// # Ok::<(), approx_ir::IrError>(())
/// ```
pub fn static_counts(program: &Program, root: crate::FuncId) -> StaticCounts {
    let mut visited = BTreeSet::new();
    let mut stack = vec![root.0];
    let mut total = StaticCounts::default();
    while let Some(id) = stack.pop() {
        if !visited.insert(id) {
            continue;
        }
        let Some(f) = program.function_by_index(id) else {
            continue;
        };
        let c = function_counts(f);
        total.function_calls += c.function_calls;
        total.loops += c.loops;
        total.ifs += c.ifs;
        total.instructions += c.instructions;
        for inst in f.insts() {
            if let Inst::Call { func, .. } = inst {
                stack.push(*func);
            }
        }
    }
    total
}

fn function_counts(f: &Function) -> StaticCounts {
    let mut counts = StaticCounts {
        instructions: f.len(),
        ..StaticCounts::default()
    };
    for (idx, inst) in f.insts().iter().enumerate() {
        match inst {
            Inst::Call { .. } => counts.function_calls += 1,
            Inst::Branch { target, .. } => {
                if (target.0 as usize) <= idx {
                    counts.loops += 1;
                } else {
                    counts.ifs += 1;
                }
            }
            Inst::Jump { target } if (target.0 as usize) <= idx => {
                counts.loops += 1;
            }
            _ => {}
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, FunctionBuilder};

    #[test]
    fn counts_loop_and_if() {
        let mut b = FunctionBuilder::new("f", 1);
        let n = b.param(0);
        let i = b.consti(0);
        let one = b.consti(1);
        let top = b.new_label();
        let exit = b.new_label();
        let skip = b.new_label();
        b.bind(top);
        let done = b.cmpi(CmpOp::Ge, i, n);
        b.branch_if(done, exit); // forward conditional -> if
        let odd = b.irem(i, one);
        b.branch_if(odd, skip); // forward conditional -> if
        b.bind(skip);
        b.iadd_into(i, one);
        b.jump(top); // backward jump -> loop
        b.bind(exit);
        b.ret(&[i]);
        let mut p = Program::new();
        let f = p.add_function(b.build().unwrap());
        let c = static_counts(&p, f);
        assert_eq!(c.loops, 1);
        assert_eq!(c.ifs, 2);
        assert_eq!(c.function_calls, 0);
    }

    #[test]
    fn counts_follow_callees_once() {
        let mut leaf = FunctionBuilder::new("leaf", 1);
        let x = leaf.param(0);
        let y = leaf.fmul(x, x);
        leaf.ret(&[y]);
        let mut p = Program::new();
        let leaf_id = p.add_function(leaf.build().unwrap());

        let mut root = FunctionBuilder::new("root", 1);
        let a = root.param(0);
        let r1 = root.call(leaf_id, &[a], 1);
        let r2 = root.call(leaf_id, &[r1[0]], 1);
        root.ret(&[r2[0]]);
        let root_id = p.add_function(root.build().unwrap());

        let c = static_counts(&p, root_id);
        assert_eq!(c.function_calls, 2);
        // root: 2 calls + ret = 3; leaf: mul + ret = 2 (counted once).
        assert_eq!(c.instructions, 5);
    }

    #[test]
    fn recursive_functions_terminate() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("rec", 0);
        // Call function id 0 (itself — ids are assigned in order).
        b.emit(crate::Inst::Call {
            func: 0,
            args: vec![],
            rets: vec![],
        });
        b.ret(&[]);
        let id = p.add_function(b.build().unwrap());
        let c = static_counts(&p, id);
        assert_eq!(c.function_calls, 1);
        assert_eq!(c.instructions, 2);
    }
}

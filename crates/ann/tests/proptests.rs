//! Property-based tests for the learning substrate.

use ann::{Dataset, Mlp, Normalizer, Scratch, SigmoidLut, Topology, TrainParams, Trainer};
use proptest::prelude::*;

fn small_topology() -> impl Strategy<Value = Topology> {
    (
        1usize..6,
        proptest::collection::vec(1usize..9, 0..3),
        1usize..5,
    )
        .prop_map(|(inputs, hidden, outputs)| {
            let mut layers = vec![inputs];
            layers.extend(hidden);
            layers.push(outputs);
            Topology::new(layers).expect("nonzero layers")
        })
}

proptest! {
    /// Normalize/denormalize round-trips for values inside the range.
    #[test]
    fn normalizer_round_trips(
        lo in -100.0f32..100.0,
        width in 0.001f32..200.0,
        t in 0.0f32..1.0,
    ) {
        let hi = lo + width;
        let norm = Normalizer::new(vec![(lo, hi)]);
        let original = lo + t * width;
        let mut v = [original];
        norm.normalize(&mut v);
        prop_assert!((0.0..=1.0).contains(&v[0]));
        norm.denormalize(&mut v);
        // Relative tolerance: f32 normalize/denormalize loses a few ulps.
        let tol = (width * 1e-5).max(1e-5);
        prop_assert!((v[0] - original).abs() <= tol, "{} vs {}", v[0], original);
    }

    /// The sigmoid LUT never strays far from the exact sigmoid and stays
    /// within [0, 1].
    #[test]
    fn sigmoid_lut_bounded_error(x in -50.0f32..50.0) {
        let lut = SigmoidLut::default();
        let y = lut.eval(x);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert!((y - ann::sigmoid(x)).abs() < 5e-3);
    }

    /// Feed-forward output size always equals the output layer size, and
    /// sigmoid outputs stay in (0, 1).
    #[test]
    fn forward_shape_and_range(topology in small_topology(), seed in 0u64..1000) {
        let mlp = Mlp::seeded(topology.clone(), seed);
        let inputs: Vec<f32> = (0..topology.inputs()).map(|i| (i as f32 * 0.37) % 1.0).collect();
        let out = mlp.feed_forward(&inputs);
        prop_assert_eq!(out.len(), topology.outputs());
        prop_assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    /// Weight counts equal the sum over layer transitions, and seeded
    /// construction is deterministic.
    #[test]
    fn topology_weight_count_consistent(topology in small_topology()) {
        let by_hand: usize = topology
            .layers()
            .windows(2)
            .map(|w| (w[0] + 1) * w[1])
            .sum();
        prop_assert_eq!(topology.weight_count(), by_hand);
        let a = Mlp::seeded(topology.clone(), 7);
        let b = Mlp::seeded(topology, 7);
        prop_assert_eq!(a, b);
    }

    /// Dataset split is an exact partition at any fraction and seed.
    #[test]
    fn dataset_split_partitions(
        n in 1usize..60,
        fraction in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let mut d = Dataset::new(1, 1);
        for i in 0..n {
            d.push(&[i as f32], &[2.0 * i as f32]).unwrap();
        }
        let (a, b) = d.split(fraction, seed);
        prop_assert_eq!(a.len() + b.len(), n);
        let mut seen: Vec<i64> = a
            .iter()
            .chain(b.iter())
            .map(|(i, _)| i[0] as i64)
            .collect();
        seen.sort_unstable();
        let expected: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(seen, expected);
    }

    /// `train` (fresh scratch per call) and `train_with` (reused,
    /// pre-dirtied scratch — the search-worker pattern) produce
    /// bit-identical networks and reports, and repeated training is
    /// deterministic.
    #[test]
    fn train_and_train_with_are_bit_identical(
        topology in small_topology(),
        seed in 0u64..300,
        epochs in 1usize..8,
    ) {
        let mut data = Dataset::new(topology.inputs(), topology.outputs());
        for k in 0..10usize {
            let input: Vec<f32> = (0..topology.inputs())
                .map(|i| ((k * 17 + i * 3) % 31) as f32 / 31.0)
                .collect();
            let output: Vec<f32> = (0..topology.outputs())
                .map(|i| ((k * 5 + i * 11) % 23) as f32 / 23.0)
                .collect();
            data.push(&input, &output).unwrap();
        }
        let trainer = Trainer::new(TrainParams { epochs, ..TrainParams::default() });

        let mut a = Mlp::seeded(topology.clone(), seed);
        let report_a = trainer.train(&mut a, &data);

        // Dirty the scratch on an unrelated topology first, as a reused
        // worker scratch would be.
        let mut scratch = Scratch::for_topology(&Topology::new(vec![3, 2, 2]).unwrap());
        let mut warmup = Mlp::seeded(Topology::new(vec![3, 2, 2]).unwrap(), 1);
        trainer.train_with(&mut warmup, &{
            let mut d = Dataset::new(3, 2);
            d.push(&[0.1, 0.2, 0.3], &[0.4, 0.5]).unwrap();
            d
        }, &mut scratch);

        let mut b = Mlp::seeded(topology, seed);
        let report_b = trainer.train_with(&mut b, &data, &mut scratch);

        prop_assert_eq!(a, b);
        prop_assert_eq!(report_a.initial_mse.to_bits(), report_b.initial_mse.to_bits());
        prop_assert_eq!(report_a.final_mse.to_bits(), report_b.final_mse.to_bits());
    }

    /// LUT forward pass stays close to the exact forward pass for any
    /// seeded network.
    #[test]
    fn lut_forward_tracks_exact(topology in small_topology(), seed in 0u64..100) {
        let mlp = Mlp::seeded(topology.clone(), seed);
        let lut = SigmoidLut::default();
        let inputs: Vec<f32> = (0..topology.inputs()).map(|i| (i as f32 * 0.21) % 1.0).collect();
        let exact = mlp.feed_forward(&inputs);
        let quant = mlp.feed_forward_lut(&inputs, &lut);
        for (e, q) in exact.iter().zip(&quant) {
            prop_assert!((e - q).abs() < 2e-2, "{e} vs {q}");
        }
    }
}

//! Fixed-point Qm.n quantization and integer MLP inference — the software
//! model of the NPU's fixed-point datapath.
//!
//! The paper's hardware NPU computes in fixed point, not f32 (§7: "the
//! number representation is fixed point"). This module provides the value
//! grid: [`QFormat`] is a Qm.n format in the convention of the static
//! precision analysis (`crates/ir`'s `precision.rs`: `int_bits` counts the
//! sign bit, `frac_bits` the fractional resolution), [`FixedSigmoidLut`] is
//! the sigmoid unit indexed by integer arithmetic only, and
//! [`QuantizedMlp`] runs a whole network in integer codes: weights and
//! activations stored as `i16` codes on a declared-width grid (int4 →
//! int16), products accumulated exactly in `i64`, and each neuron's sum
//! rescaled and **saturated** onto the datapath accumulator format before
//! the sigmoid — the same clamp-don't-wrap semantics the modeled hardware
//! in `crates/npu` uses.
//!
//! The region-level wiring (boundary formats from the per-region
//! `PrecisionReport`, normalization, the Q7.23 sobel datapath) lives in
//! `crates/npu`'s `quant` module; this module is topology-only.

use crate::{sigmoid, Mlp, Topology};

/// Maximum total bits (`int + frac`) a [`QFormat`] may declare. Codes are
/// held in `i64` and quantization goes through f64 multiplies; 47 bits
/// keeps every representable code exactly expressible in an f64 mantissa.
pub const MAX_TOTAL_BITS: u8 = 47;

/// A signed Qm.n fixed-point format: `int_bits` = 1 sign bit + integer
/// magnitude bits (the precision-analysis convention), `frac_bits` =
/// fractional bits. A value `x` is stored as the integer code
/// `round(x * 2^frac_bits)`, saturated to the `int_bits + frac_bits`-bit
/// two's-complement range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QFormat {
    int_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Creates a format with the given widths.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= int_bits` and `int_bits + frac_bits <=`
    /// [`MAX_TOTAL_BITS`].
    pub fn new(int_bits: u8, frac_bits: u8) -> QFormat {
        assert!(int_bits >= 1, "a signed format needs the sign bit");
        assert!(
            int_bits as u16 + frac_bits as u16 <= MAX_TOTAL_BITS as u16,
            "Q{int_bits}.{frac_bits} exceeds {MAX_TOTAL_BITS} total bits"
        );
        QFormat {
            int_bits,
            frac_bits,
        }
    }

    /// The narrowest format of `total_bits` total width whose integer part
    /// covers `[lo, hi]`, remaining bits spent on fraction — how per-layer
    /// weight and activation formats are sized for a storage width.
    /// Integer bits follow the precision-analysis convention (sign + one
    /// bit per binary magnitude digit); a degenerate or zero range gets
    /// the minimal 1-bit integer part.
    ///
    /// # Panics
    ///
    /// Panics if `lo`/`hi` are not finite or `total_bits` is 0 or exceeds
    /// [`MAX_TOTAL_BITS`].
    pub fn for_range(lo: f32, hi: f32, total_bits: u8) -> QFormat {
        assert!(lo.is_finite() && hi.is_finite(), "unbounded range");
        assert!(
            (1..=MAX_TOTAL_BITS).contains(&total_bits),
            "bad total width {total_bits}"
        );
        let m = lo.abs().max(hi.abs());
        // ⌊log₂ m⌋ for normal m; tiny/zero magnitudes need no integer bits.
        let int_bits = if m >= 1.0 {
            let e = ((m.to_bits() >> 23) & 0xff) as i32 - 127;
            1 + (e + 1).min(i32::from(MAX_TOTAL_BITS) - 1) as u8
        } else {
            1
        };
        let int_bits = int_bits.min(total_bits.max(1));
        QFormat::new(int_bits, total_bits - int_bits)
    }

    /// Sign + integer-magnitude bits.
    pub fn int_bits(&self) -> u8 {
        self.int_bits
    }

    /// Fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Total storage width in bits.
    pub fn total_bits(&self) -> u8 {
        self.int_bits + self.frac_bits
    }

    /// The value of one least-significant code step, `2^-frac_bits`.
    pub fn step(&self) -> f64 {
        (-f64::from(self.frac_bits)).exp2()
    }

    /// Largest representable code, `2^(total-1) - 1`.
    pub fn max_code(&self) -> i64 {
        (1i64 << (self.total_bits() - 1)) - 1
    }

    /// Smallest representable code, `-2^(total-1)`.
    pub fn min_code(&self) -> i64 {
        -(1i64 << (self.total_bits() - 1))
    }

    /// Quantizes `x` to the nearest code, **saturating** (not wrapping) at
    /// the format's range — the clamp semantics of the modeled hardware.
    /// NaN saturates to 0.
    pub fn quantize(&self, x: f32) -> i64 {
        let scaled = f64::from(x) * f64::from(self.frac_bits).exp2();
        if scaled.is_nan() {
            return 0;
        }
        (scaled.round() as i64).clamp(self.min_code(), self.max_code())
    }

    /// The f32 value of a code.
    pub fn dequantize(&self, code: i64) -> f32 {
        (code as f64 * self.step()) as f32
    }

    /// Quantize-dequantize round trip: `x` snapped onto this grid.
    pub fn snap(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }
}

/// Rescales a code from `from` fractional bits to `to`, rounding to
/// nearest (ties toward +∞ — the adder-then-truncate rounding a datapath
/// barrel shifter implements).
fn rescale(code: i64, from: u8, to: u8) -> i64 {
    if to >= from {
        code << (to - from)
    } else {
        let s = from - to;
        (code + (1i64 << (s - 1))) >> s
    }
}

/// The NPU's sigmoid unit in fixed point: a table of activation codes
/// indexed from the datapath accumulator code with integer arithmetic
/// only. Mirrors [`SigmoidLut`](crate::SigmoidLut) (same entry count,
/// same `[-bound, bound]` window, nearest-entry lookup with clamping) but
/// never leaves the integer domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedSigmoidLut {
    /// Activation codes (in the output format) per table entry.
    table: Vec<i64>,
    /// Accumulator-format code of the clamp bound.
    bound_code: i64,
}

impl FixedSigmoidLut {
    /// Builds the table: entry `i` holds `sigmoid(x_i)` quantized to
    /// `out_fmt`, where the `x_i` sample points match the f32 LUT's.
    /// `in_fmt` is the datapath accumulator format the unit is indexed by.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2`, `bound` is not strictly positive, or the
    /// index arithmetic could overflow (`bound_code * entries` must fit
    /// comfortably in `i64`).
    pub fn new(entries: usize, bound: f32, in_fmt: QFormat, out_fmt: QFormat) -> FixedSigmoidLut {
        assert!(entries >= 2, "a sigmoid LUT needs at least two entries");
        assert!(bound > 0.0, "LUT bound must be positive");
        let table = (0..entries)
            .map(|i| {
                let x = -bound + 2.0 * bound * (i as f32) / ((entries - 1) as f32);
                out_fmt.quantize(sigmoid(x))
            })
            .collect();
        let bound_code = in_fmt.quantize(bound);
        assert!(
            bound_code > 0 && bound_code.checked_mul(2 * entries as i64).is_some(),
            "LUT bound degenerate or too wide for integer indexing"
        );
        FixedSigmoidLut { table, bound_code }
    }

    /// Nearest-entry lookup from an accumulator code (in the `in_fmt` the
    /// table was built with), clamped at the bounds. Integer-only:
    /// `idx = round((code + B) * (n-1) / 2B)` with `B` the bound code.
    pub fn eval(&self, code: i64) -> i64 {
        let n = self.table.len();
        if code <= -self.bound_code {
            return self.table[0];
        }
        if code >= self.bound_code {
            return self.table[n - 1];
        }
        let num = (code + self.bound_code) * (n as i64 - 1);
        let den = 2 * self.bound_code;
        let idx = (num + den / 2) / den;
        self.table[idx as usize]
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

/// Observations from one quantized forward pass, for soundness checks:
/// whether any accumulator had to saturate onto the datapath grid, and the
/// largest pre-saturation magnitude seen (in value terms).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuantTrace {
    /// Accumulators clamped by datapath saturation.
    pub saturated: usize,
    /// Largest `|sum|` before saturation, dequantized.
    pub max_acc_abs: f32,
}

/// Reusable integer activation buffers for [`QuantizedMlp::forward_with`].
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    a: Vec<i64>,
    b: Vec<i64>,
}

impl QuantScratch {
    /// Creates empty buffers; they size themselves on first use.
    pub fn new() -> QuantScratch {
        QuantScratch::default()
    }
}

/// An MLP quantized onto a fixed-point grid: the software model of the
/// NPU's integer datapath at a chosen storage width (int4 → int16).
///
/// * weights and biases: per-layer Qm.n formats sized from each layer's
///   actual coefficient range at `weight_bits` total width, stored as
///   `i16` codes;
/// * activations: sigmoid outputs in `[0, 1]` on a `Q1.(w-1)`-style grid
///   at the same storage width;
/// * accumulation: exact in `i64` at `frac(w) + frac(a)` fractional bits,
///   then rescaled (round-to-nearest) and **saturated** onto the datapath
///   accumulator format before the fixed-point sigmoid LUT.
///
/// The f32 network is the oracle: `forward` on the same normalized inputs
/// approximates [`Mlp::feed_forward`], with error set by the storage width
/// and the LUT — the quantity the error-vs-bitwidth experiment sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<usize>,
    /// Weight codes, all layer matrices concatenated, rows laid out like
    /// [`Mlp`] (`n_in` weights then the bias).
    weights: Vec<i16>,
    /// Per-layer weight formats.
    weight_fmts: Vec<QFormat>,
    /// Activation format (also the network input/output format).
    act_fmt: QFormat,
    /// Datapath accumulator format (saturation grid).
    acc_fmt: QFormat,
    lut: FixedSigmoidLut,
    weight_bits: u8,
}

impl QuantizedMlp {
    /// Quantizes `mlp` at `weight_bits` total storage width (4..=16) with
    /// the given datapath accumulator format, using the NPU's 2048-entry
    /// `[-8, 8]` sigmoid window.
    ///
    /// # Panics
    ///
    /// Panics if `weight_bits` is outside `4..=16`.
    pub fn quantize(mlp: &Mlp, weight_bits: u8, acc_fmt: QFormat) -> QuantizedMlp {
        assert!(
            (4..=16).contains(&weight_bits),
            "storage width {weight_bits} outside int4..int16"
        );
        let layers = mlp.topology().layers().to_vec();
        // Sigmoid outputs live in [0, 1]: sign + 1 integer bit, the rest
        // fraction.
        let act_fmt = QFormat::for_range(0.0, 1.0, weight_bits);
        let mut weights = Vec::new();
        let mut weight_fmts = Vec::new();
        for matrix in mlp.weight_matrices() {
            let (lo, hi) = matrix
                .iter()
                .fold((0.0f32, 0.0f32), |(lo, hi), &w| (lo.min(w), hi.max(w)));
            let fmt = QFormat::for_range(lo, hi, weight_bits);
            weight_fmts.push(fmt);
            weights.extend(matrix.iter().map(|&w| fmt.quantize(w) as i16));
        }
        let lut = FixedSigmoidLut::new(2048, 8.0, acc_fmt, act_fmt);
        QuantizedMlp {
            layers,
            weights,
            weight_fmts,
            act_fmt,
            acc_fmt,
            lut,
            weight_bits,
        }
    }

    /// The storage width this network was quantized at.
    pub fn weight_bits(&self) -> u8 {
        self.weight_bits
    }

    /// The activation (network I/O) format.
    pub fn act_format(&self) -> QFormat {
        self.act_fmt
    }

    /// The datapath accumulator format.
    pub fn acc_format(&self) -> QFormat {
        self.acc_fmt
    }

    /// Layer sizes, input layer first.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Fixed-point forward pass on normalized (`[0, 1]`-domain) inputs,
    /// reusing `scratch`; outputs are dequantized activation-grid values.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` mismatches the input layer.
    pub fn forward_with(
        &self,
        input: &[f32],
        scratch: &mut QuantScratch,
        output: &mut Vec<f32>,
    ) -> QuantTrace {
        assert_eq!(input.len(), self.layers[0], "input vector size mismatch");
        let mut trace = QuantTrace::default();
        let fa = self.act_fmt.frac_bits();
        scratch.a.clear();
        scratch
            .a
            .extend(input.iter().map(|&x| self.act_fmt.quantize(x)));
        let mut matrix_off = 0usize;
        for (l, &fmt) in self.weight_fmts.iter().enumerate() {
            let n_in = self.layers[l];
            let n_out = self.layers[l + 1];
            let fw = fmt.frac_bits();
            let matrix = &self.weights[matrix_off..matrix_off + (n_in + 1) * n_out];
            matrix_off += matrix.len();
            scratch.b.clear();
            for row in matrix.chunks_exact(n_in + 1) {
                let (bias, ws) = row.split_last().expect("row holds bias");
                // Bias (frac fw) aligned to the product grid (frac fw+fa);
                // products accumulate exactly in i64.
                let mut acc = i64::from(*bias) << fa;
                for (&w, &x) in ws.iter().zip(scratch.a.iter()) {
                    acc += i64::from(w) * x;
                }
                let sum = rescale(acc, fw + fa, self.acc_fmt.frac_bits());
                let sat = sum.clamp(self.acc_fmt.min_code(), self.acc_fmt.max_code());
                if sat != sum {
                    trace.saturated += 1;
                }
                trace.max_acc_abs = trace
                    .max_acc_abs
                    .max(self.acc_fmt.dequantize(sum.abs()).abs());
                scratch.b.push(self.lut.eval(sat));
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        output.clear();
        output.extend(scratch.a.iter().map(|&c| self.act_fmt.dequantize(c)));
        trace
    }

    /// Allocating convenience wrapper around
    /// [`forward_with`](Self::forward_with).
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut scratch = QuantScratch::new();
        let mut out = Vec::new();
        self.forward_with(input, &mut scratch, &mut out);
        out
    }

    /// The topology this network was quantized from.
    pub fn topology(&self) -> Topology {
        Topology::new(self.layers.clone()).expect("layers came from a valid topology")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mlp;

    #[test]
    fn quantize_round_trips_within_half_step() {
        let f = QFormat::new(3, 12);
        for i in -400..400 {
            let x = i as f32 / 100.0; // [-4, 4) covers the ±4 range
            let back = f.snap(x);
            if x.abs() < 3.999 {
                assert!(
                    (f64::from(back) - f64::from(x)).abs() <= f.step() / 2.0 + 1e-12,
                    "{x} -> {back}"
                );
            }
        }
    }

    #[test]
    fn quantize_saturates_not_wraps() {
        let f = QFormat::new(2, 6); // range [-2, 2)
        assert_eq!(f.quantize(100.0), f.max_code());
        assert_eq!(f.quantize(-100.0), f.min_code());
        assert!(f.dequantize(f.max_code()) > 1.9);
        assert!(f.dequantize(f.min_code()) <= -2.0 + 1e-6);
        assert_eq!(f.quantize(f32::NAN), 0);
    }

    #[test]
    fn for_range_covers_the_range() {
        for &(lo, hi, bits) in &[
            (0.0f32, 1.0f32, 8u8),
            (-3.7, 2.2, 8),
            (-0.25, 0.25, 16),
            (0.0, 100.0, 16),
            (-1.0, 1.0, 4),
        ] {
            let f = QFormat::for_range(lo, hi, bits);
            assert_eq!(f.total_bits(), bits, "({lo}, {hi}, {bits})");
            for &x in &[lo, hi, 0.0, (lo + hi) / 2.0] {
                let back = f.snap(x);
                assert!(
                    (f64::from(back) - f64::from(x)).abs() <= f.step() * 1.01,
                    "Q{}.{} misses {x} -> {back}",
                    f.int_bits(),
                    f.frac_bits()
                );
            }
        }
    }

    #[test]
    fn sobel_datapath_q7_23_is_constructible() {
        // The precision analysis proves Q7.23 for sobel; the quantized
        // path must accept it unchanged.
        let f = QFormat::new(7, 23);
        assert_eq!(f.total_bits(), 30);
        assert_eq!(f.snap(1.0), 1.0);
        assert!((f64::from(f.snap(0.123_456_7)) - 0.123_456_7).abs() <= f.step());
    }

    #[test]
    fn fixed_lut_tracks_f32_lut() {
        let acc = QFormat::new(7, 23);
        let act = QFormat::for_range(0.0, 1.0, 16);
        let fixed = FixedSigmoidLut::new(2048, 8.0, acc, act);
        let f32_lut = crate::SigmoidLut::new(2048, 8.0);
        for i in -1000..=1000 {
            let x = i as f32 / 100.0; // [-10, 10], past the clamp
            let q = fixed.eval(acc.quantize(x));
            let got = act.dequantize(q);
            let want = f32_lut.eval(x);
            // One activation step plus one LUT input step of slack: the
            // integer index can differ by one entry at bucket boundaries.
            let tol = act.step() as f32 + 8.0 / 2047.0;
            assert!((got - want).abs() <= tol, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn rescale_rounds_to_nearest() {
        assert_eq!(rescale(7, 2, 0), 2); // 1.75 -> 2
        assert_eq!(rescale(5, 2, 0), 1); // 1.25 -> 1
        assert_eq!(rescale(6, 2, 0), 2); // 1.5 -> 2 (ties toward +inf)
        assert_eq!(rescale(-6, 2, 0), -1); // -1.5 -> -1 (ties toward +inf)
        assert_eq!(rescale(3, 0, 2), 12); // widening is exact
    }

    fn probe_inputs(n_in: usize, n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|k| {
                (0..n_in)
                    .map(|i| ((k * 31 + i * 7) % 97) as f32 / 97.0)
                    .collect()
            })
            .collect()
    }

    fn rms_error(mlp: &Mlp, q: &QuantizedMlp, inputs: &[Vec<f32>]) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let mut scratch = QuantScratch::new();
        let mut out = Vec::new();
        for input in inputs {
            let oracle = mlp.feed_forward(input);
            q.forward_with(input, &mut scratch, &mut out);
            for (&a, &b) in oracle.iter().zip(out.iter()) {
                total += f64::from(a - b) * f64::from(a - b);
                count += 1;
            }
        }
        (total / count as f64).sqrt()
    }

    #[test]
    fn int16_tracks_the_f32_oracle_closely() {
        let t = Topology::new(vec![9, 8, 1]).unwrap();
        let mlp = Mlp::seeded(t.clone(), 7);
        let q = QuantizedMlp::quantize(&mlp, 16, QFormat::new(7, 23));
        let rms = rms_error(&mlp, &q, &probe_inputs(9, 64));
        // int16 storage + Q7.23 datapath: error is LUT-dominated (the f32
        // oracle uses exact sigmoid; the LUT step is ~2e-3).
        assert!(rms < 0.01, "int16 rms {rms}");
    }

    #[test]
    fn error_shrinks_with_width() {
        let t = Topology::new(vec![6, 8, 4, 1]).unwrap();
        let mlp = Mlp::seeded(t.clone(), 3);
        let inputs = probe_inputs(6, 64);
        let acc = QFormat::new(7, 23);
        let rms4 = rms_error(&mlp, &QuantizedMlp::quantize(&mlp, 4, acc), &inputs);
        let rms8 = rms_error(&mlp, &QuantizedMlp::quantize(&mlp, 8, acc), &inputs);
        let rms16 = rms_error(&mlp, &QuantizedMlp::quantize(&mlp, 16, acc), &inputs);
        assert!(
            rms16 <= rms8 && rms8 <= rms4 * 1.05,
            "widths not improving: {rms4} {rms8} {rms16}"
        );
        assert!(rms4 > rms16, "int4 should be strictly worse than int16");
    }

    #[test]
    fn saturation_is_observed_not_silent() {
        // A tiny datapath (Q2.4: range [-2, 2)) must saturate on a network
        // whose sums exceed it, and the trace must say so.
        let t = Topology::new(vec![4, 3, 1]).unwrap();
        let mut mlp = Mlp::seeded(t.clone(), 1);
        for m in mlp.weight_matrices_mut() {
            for w in m.iter_mut() {
                *w = 3.0; // force sums way past ±2
            }
        }
        let q = QuantizedMlp::quantize(&mlp, 8, QFormat::new(2, 4));
        let mut scratch = QuantScratch::new();
        let mut out = Vec::new();
        let trace = q.forward_with(&[1.0, 1.0, 1.0, 1.0], &mut scratch, &mut out);
        assert!(trace.saturated > 0, "expected saturation: {trace:?}");
        assert!(trace.max_acc_abs > 2.0, "pre-sat magnitude: {trace:?}");
        // Output still sane: saturated sums feed the clamped LUT.
        assert!(out[0] >= 0.0 && out[0] <= 1.0);
    }
}

//! Sigmoid activation, exact and as the lookup table the hardware NPU uses.

/// The logistic sigmoid `1 / (1 + e^{-x})`.
///
/// Every neuron in the paper's NPU applies this to its weighted sum
/// (Section 6.1: `y = sigmoid(sum(x_i * w_i))`).
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid expressed in terms of its *output* `y`:
/// `y * (1 - y)`. Used by backpropagation.
#[inline]
pub fn sigmoid_derivative(y: f32) -> f32 {
    y * (1.0 - y)
}

/// A quantized sigmoid lookup table.
///
/// The digital NPU evaluates the sigmoid with a LUT (Table 2 lists a
/// 2048-entry sigmoid unit per processing engine). The table covers the
/// input range `[-bound, bound]` and clamps outside it, which introduces
/// the same small quantization error a hardware LUT would.
///
/// # Example
///
/// ```
/// let lut = ann::SigmoidLut::new(2048, 8.0);
/// assert!((lut.eval(0.0) - 0.5).abs() < 1e-2);
/// assert!(lut.eval(100.0) > 0.99);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SigmoidLut {
    table: Vec<f32>,
    bound: f32,
    /// `(entries - 1) / (2 * bound)`, hoisted out of [`eval`](Self::eval)
    /// so the hot lookup path is one fma-shaped multiply instead of a
    /// divide. For the configurations the NPU uses (`2 * bound` a power of
    /// two, `entries - 1` exactly representable) the product rounds
    /// identically to the original divide-then-scale expression, so LUT
    /// outputs are bit-for-bit unchanged.
    inv_step: f32,
}

impl SigmoidLut {
    /// Builds a LUT with `entries` sample points over `[-bound, bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `bound` is not strictly positive.
    pub fn new(entries: usize, bound: f32) -> Self {
        assert!(entries >= 2, "a sigmoid LUT needs at least two entries");
        assert!(bound > 0.0, "LUT bound must be positive");
        let table = (0..entries)
            .map(|i| {
                let x = -bound + 2.0 * bound * (i as f32) / ((entries - 1) as f32);
                sigmoid(x)
            })
            .collect();
        let inv_step = (entries - 1) as f32 / (2.0 * bound);
        SigmoidLut {
            table,
            bound,
            inv_step,
        }
    }

    /// Number of entries in the table.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Evaluates the quantized sigmoid (nearest-entry lookup, clamped).
    pub fn eval(&self, x: f32) -> f32 {
        let n = self.table.len();
        if x <= -self.bound {
            return self.table[0];
        }
        if x >= self.bound {
            return self.table[n - 1];
        }
        let pos = (x + self.bound) * self.inv_step;
        self.table[pos.round() as usize]
    }

    /// Worst-case quantization step between adjacent table inputs.
    pub fn input_step(&self) -> f32 {
        2.0 * self.bound / (self.table.len() - 1) as f32
    }
}

impl Default for SigmoidLut {
    /// The NPU's hardware configuration: 2048 entries over `[-8, 8]`.
    fn default() -> Self {
        SigmoidLut::new(2048, 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_saturation() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(20.0) > 0.999_999);
        assert!(sigmoid(-20.0) < 1e-6);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let mut prev = sigmoid(-10.0);
        for i in -99..=100 {
            let y = sigmoid(i as f32 / 10.0);
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let h = 1e-3;
            let numeric = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            let analytic = sigmoid_derivative(sigmoid(x));
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "x={x}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn lut_tracks_exact_sigmoid() {
        let lut = SigmoidLut::default();
        for i in -80..=80 {
            let x = i as f32 / 10.0;
            assert!(
                (lut.eval(x) - sigmoid(x)).abs() < 2e-3,
                "LUT diverges at {x}"
            );
        }
    }

    #[test]
    fn lut_clamps_outside_bound() {
        let lut = SigmoidLut::new(16, 4.0);
        assert_eq!(lut.eval(1e6), lut.eval(4.0));
        assert_eq!(lut.eval(-1e6), lut.eval(-4.0));
    }

    #[test]
    #[should_panic(expected = "at least two entries")]
    fn lut_rejects_tiny_tables() {
        let _ = SigmoidLut::new(1, 8.0);
    }

    /// The hoisted `inv_step` multiply must reproduce the original
    /// divide-then-scale index arithmetic bit-for-bit for every LUT
    /// configuration the repo instantiates (bounds 8.0 and 4.0, both with
    /// `2 * bound` a power of two).
    #[test]
    fn hoisted_inv_step_is_bit_identical_to_divide() {
        for (entries, bound) in [(2048usize, 8.0f32), (16, 4.0), (256, 8.0)] {
            let lut = SigmoidLut::new(entries, bound);
            let n = entries;
            // Dense sweep across and beyond the clamped range.
            for i in -4000i32..=4000 {
                let x = i as f32 * bound / 2000.0;
                let old = if x <= -bound {
                    lut.table[0]
                } else if x >= bound {
                    lut.table[n - 1]
                } else {
                    let pos = (x + bound) / (2.0 * bound) * ((n - 1) as f32);
                    lut.table[pos.round() as usize]
                };
                let new = lut.eval(x);
                assert_eq!(
                    old.to_bits(),
                    new.to_bits(),
                    "LUT({entries}, {bound}) diverges at x = {x}"
                );
            }
        }
    }
}

//! Batched (matrix-matrix) forward, MSE, and minibatch-backprop kernels.
//!
//! [`Scratch`] (PR 4) made the per-sample kernels allocation-free, but they
//! still walk the weight matrices once per sample. [`BatchScratch`] processes
//! up to [`LANES`] samples per weight-matrix walk: activations are stored
//! *lane-major* (`[layer][neuron][lane]`, one contiguous `[f32; LANES]` block
//! per neuron), so the inner loops are fixed-width lane arrays the stable
//! compiler autovectorizes — no nightly `std::simd`.
//!
//! **Bit-exactness contract** (extends the one in [`crate::Scratch`]): every
//! lane performs the *identical scalar operation sequence* as the scalar
//! kernels — each neuron's sum starts from the bias and accumulates inputs in
//! index order, per lane, with no horizontal reassociation. A sample's
//! forward activations and MSE contribution are therefore bit-identical to
//! [`Scratch::forward`] / [`mse_with`](crate::mse_with) regardless of batch
//! size or remainder-tail position; the proptests below pin this. The scalar
//! `Scratch` stays in the tree as the reference oracle.
//!
//! Minibatch backprop ([`BatchScratch::accumulate_block`] +
//! [`BatchScratch::apply_update`]) is *gradient-equivalent*, not
//! weight-trajectory-identical, to per-sample SGD: it accumulates each
//! weight's gradient over the minibatch **in sample order** (lane order
//! within a block, block order across the batch), so the accumulated
//! gradient is bit-identical to an in-order scalar accumulation at fixed
//! weights; the momentum update `v = µ·v − lr·G; w += v` is then applied
//! once per minibatch.

use crate::activation::SigmoidLut;
use crate::{sigmoid, sigmoid_derivative, Dataset, Mlp, Topology};

/// Samples processed per weight-matrix walk. Sixteen f32 lanes give the MAC
/// loop four independent SSE2 (or two AVX2) accumulator chains — measured
/// faster than 8 lanes on the reference workload because the extra chains
/// hide the FP-add latency. The remainder tail runs the same code with idle
/// lanes masked out at the boundaries (loads zeroed, stores/reductions
/// skipped).
pub const LANES: usize = 16;

/// Flat, reusable lane-major buffers for batched evaluation and minibatch
/// training. Binds lazily to a topology like [`Scratch`](crate::Scratch).
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Layer sizes this scratch is currently bound to (empty = unbound).
    layers: Vec<usize>,
    /// Lane-major activations: neuron `j` of layer `l` occupies
    /// `acts[(act_off[l] + j) * LANES ..][..LANES]`.
    acts: Vec<f32>,
    /// Neuron offsets per layer (multiply by `LANES` for buffer offsets).
    act_off: Vec<usize>,
    /// Lane-major `dE/dnet` per computing layer.
    deltas: Vec<f32>,
    /// Neuron offsets per computing layer (0 = first hidden).
    delta_off: Vec<usize>,
    /// Accumulated minibatch gradient, one entry per weight, laid out
    /// exactly like the concatenated weight matrices.
    grads: Vec<f32>,
    /// Momentum state, same layout as `grads`.
    velocity: Vec<f32>,
    /// `grads`/`velocity` offsets per weight matrix.
    vel_off: Vec<usize>,
}

impl BatchScratch {
    /// Creates an unbound scratch; it sizes itself on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Creates a scratch pre-sized for `topology`.
    pub fn for_topology(topology: &Topology) -> Self {
        let mut s = BatchScratch::new();
        s.bind(topology);
        s
    }

    /// (Re)binds the buffers to `topology`, zeroing the gradient and
    /// momentum state (mirrors [`Scratch::bind`](crate::Scratch::bind)).
    pub fn bind(&mut self, topology: &Topology) {
        if self.layers != topology.layers() {
            self.layers.clear();
            self.layers.extend_from_slice(topology.layers());
            self.act_off.clear();
            self.act_off.push(0);
            for &n in &self.layers {
                self.act_off.push(self.act_off.last().unwrap() + n);
            }
            self.delta_off.clear();
            self.delta_off.push(0);
            for &n in &self.layers[1..] {
                self.delta_off.push(self.delta_off.last().unwrap() + n);
            }
            self.vel_off.clear();
            self.vel_off.push(0);
            for w in self.layers.windows(2) {
                self.vel_off
                    .push(self.vel_off.last().unwrap() + (w[0] + 1) * w[1]);
            }
            self.acts.resize(self.act_off.last().unwrap() * LANES, 0.0);
            self.deltas
                .resize(self.delta_off.last().unwrap() * LANES, 0.0);
            self.grads.resize(*self.vel_off.last().unwrap(), 0.0);
            self.velocity.resize(*self.vel_off.last().unwrap(), 0.0);
        }
        self.grads.fill(0.0);
        self.velocity.fill(0.0);
    }

    fn ensure_bound(&mut self, mlp: &Mlp) {
        if self.layers != mlp.topology().layers() {
            self.bind(mlp.topology());
        }
    }

    /// Loads up to [`LANES`] sample inputs into the lane-major input layer,
    /// zeroing idle lanes (their garbage would otherwise flow through the
    /// activations; it is never read back, but zeroing keeps every lane's
    /// arithmetic finite and the buffers deterministic).
    fn load_inputs(&mut self, inputs: &[&[f32]]) {
        let n_in = self.layers[0];
        let block = &mut self.acts[..n_in * LANES];
        if inputs.len() < LANES {
            // Partial tail: idle lanes would otherwise carry garbage from
            // the previous block; they are never read back, but zeroing
            // keeps every lane's arithmetic finite and deterministic.
            block.fill(0.0);
        }
        for (lane, input) in inputs.iter().enumerate() {
            debug_assert_eq!(input.len(), n_in);
            for (j, &x) in input.iter().enumerate() {
                block[j * LANES + lane] = x;
            }
        }
    }

    /// The batched layer walk: one pass over each weight matrix computes
    /// all lanes. Per lane the arithmetic is exactly the scalar kernel's:
    /// `sum = bias; sum += w_i * x_i` in index order, then `act(sum)`.
    fn forward_loaded(&mut self, mlp: &Mlp, act: impl Fn(f32) -> f32 + Copy) {
        for (l, matrix) in mlp.weight_matrices().iter().enumerate() {
            let n_in = self.layers[l];
            let n_out = self.layers[l + 1];
            let (prev_all, next_all) = self.acts.split_at_mut(self.act_off[l + 1] * LANES);
            let prev = &prev_all[self.act_off[l] * LANES..];
            let next = &mut next_all[..n_out * LANES];
            for (row, out) in matrix
                .chunks_exact(n_in + 1)
                .zip(next.chunks_exact_mut(LANES))
            {
                let (bias, ws) = row.split_last().expect("row holds bias");
                let mut sum = [*bias; LANES];
                for (x_blk, &w) in prev.chunks_exact(LANES).zip(ws.iter()) {
                    for (s, &xv) in sum.iter_mut().zip(x_blk) {
                        *s += w * xv;
                    }
                }
                for (o, &s) in out.iter_mut().zip(sum.iter()) {
                    *o = act(s);
                }
            }
        }
    }

    /// Forward-evaluates one block of up to [`LANES`] samples with the
    /// exact sigmoid, writing sample-major outputs (`inputs.len() × n_out`)
    /// into `outputs`. Each sample's outputs are bit-identical to
    /// [`Scratch::forward`](crate::Scratch::forward).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` holds more than [`LANES`] samples, an input has
    /// the wrong width, or `outputs` is shorter than
    /// `inputs.len() * n_out`.
    pub fn forward_block(&mut self, mlp: &Mlp, inputs: &[&[f32]], outputs: &mut [f32]) {
        self.forward_block_with(mlp, inputs, outputs, sigmoid);
    }

    /// [`forward_block`](Self::forward_block) with the NPU's sigmoid LUT:
    /// per-sample bit-identical to [`Mlp::feed_forward_lut`].
    pub fn forward_block_lut(
        &mut self,
        mlp: &Mlp,
        inputs: &[&[f32]],
        outputs: &mut [f32],
        lut: &SigmoidLut,
    ) {
        self.forward_block_with(mlp, inputs, outputs, |x| lut.eval(x));
    }

    fn forward_block_with(
        &mut self,
        mlp: &Mlp,
        inputs: &[&[f32]],
        outputs: &mut [f32],
        act: impl Fn(f32) -> f32 + Copy,
    ) {
        assert!(inputs.len() <= LANES, "block larger than LANES");
        self.ensure_bound(mlp);
        for input in inputs {
            assert_eq!(input.len(), self.layers[0], "input vector size mismatch");
        }
        let n_out = *self.layers.last().unwrap();
        assert!(
            outputs.len() >= inputs.len() * n_out,
            "output buffer too small"
        );
        self.load_inputs(inputs);
        self.forward_loaded(mlp, act);
        let out_block = &self.acts[self.act_off[self.layers.len() - 1] * LANES..];
        for lane in 0..inputs.len() {
            for k in 0..n_out {
                outputs[lane * n_out + k] = out_block[k * LANES + lane];
            }
        }
    }

    /// Zeroes the accumulated gradient to start a new minibatch.
    pub fn begin_batch(&mut self, mlp: &Mlp) {
        self.ensure_bound(mlp);
        self.grads.fill(0.0);
    }

    /// Forward+backward over one block of up to [`LANES`] samples at fixed
    /// weights, adding each weight's per-sample gradients to the minibatch
    /// accumulator in lane (= sample) order.
    ///
    /// # Panics
    ///
    /// Panics if the block is larger than [`LANES`] or a sample's shape
    /// mismatches the network.
    pub fn accumulate_block(&mut self, mlp: &Mlp, inputs: &[&[f32]], targets: &[&[f32]]) {
        assert!(inputs.len() <= LANES, "block larger than LANES");
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        self.ensure_bound(mlp);
        let n_layers = self.layers.len();
        for input in inputs {
            assert_eq!(input.len(), self.layers[0], "input vector size mismatch");
        }
        for target in targets {
            assert_eq!(
                target.len(),
                self.layers[n_layers - 1],
                "target vector size mismatch"
            );
        }
        let n = inputs.len();
        self.load_inputs(inputs);
        self.forward_loaded(mlp, sigmoid);

        // Output layer delta per lane: (y - t) * y * (1 - y). Idle lanes
        // keep whatever they compute; they are excluded from accumulation.
        let out_acts = &self.acts[self.act_off[n_layers - 1] * LANES..];
        let out_deltas = &mut self.deltas[self.delta_off[n_layers - 2] * LANES..];
        for (k, (d_blk, y_blk)) in out_deltas
            .chunks_exact_mut(LANES)
            .zip(out_acts.chunks_exact(LANES))
            .enumerate()
        {
            for (lane, target) in targets.iter().enumerate() {
                let y = y_blk[lane];
                d_blk[lane] = (y - target[k]) * sigmoid_derivative(y);
            }
        }

        // Hidden layers, walking backwards; per lane the accumulation over
        // the next layer stays in neuron (k) order, like the scalar kernel.
        for l in (1..n_layers - 1).rev() {
            let n_here = self.layers[l];
            let n_next = self.layers[l + 1];
            let matrix = &mlp.weight_matrices()[l];
            let acts_here = &self.acts[self.act_off[l] * LANES..self.act_off[l + 1] * LANES];
            let (cur_all, next_all) = self.deltas.split_at_mut(self.delta_off[l] * LANES);
            let cur = &mut cur_all[self.delta_off[l - 1] * LANES..];
            let next_delta = &next_all[..n_next * LANES];
            for (j, d_blk) in cur.chunks_exact_mut(LANES).enumerate().take(n_here) {
                let mut sum = [0.0f32; LANES];
                for (row, nd_blk) in matrix
                    .chunks_exact(n_here + 1)
                    .zip(next_delta.chunks_exact(LANES))
                {
                    let w = row[j];
                    for (s, &nd) in sum.iter_mut().zip(nd_blk) {
                        *s += w * nd;
                    }
                }
                for (lane, (d, &s)) in d_blk.iter_mut().zip(sum.iter()).enumerate() {
                    *d = s * sigmoid_derivative(acts_here[j * LANES + lane]);
                }
            }
        }

        // Gradient accumulation, restricted to live lanes and summed in
        // lane (= sample) order so the minibatch total is bit-identical to
        // an in-order scalar accumulation.
        for l in 0..n_layers - 1 {
            let n_in = self.layers[l];
            let acts_here = &self.acts[self.act_off[l] * LANES..self.act_off[l + 1] * LANES];
            let deltas_here =
                &self.deltas[self.delta_off[l] * LANES..self.delta_off[l + 1] * LANES];
            let grads = &mut self.grads[self.vel_off[l]..self.vel_off[l + 1]];
            for (grow, d_blk) in grads
                .chunks_exact_mut(n_in + 1)
                .zip(deltas_here.chunks_exact(LANES))
            {
                let (gb, gs) = grow.split_last_mut().expect("row holds bias");
                for (g, a_blk) in gs.iter_mut().zip(acts_here.chunks_exact(LANES)) {
                    for lane in 0..n {
                        *g += d_blk[lane] * a_blk[lane];
                    }
                }
                for &d in d_blk.iter().take(n) {
                    *gb += d;
                }
            }
        }
    }

    /// Applies the accumulated minibatch gradient with momentum —
    /// `v = µ·v − lr·G; w += v`, weight-then-bias per row exactly like the
    /// per-sample kernel — and clears the accumulator. `G` is the gradient
    /// *sum* over the minibatch (not the mean); callers scale `lr` if they
    /// want mean semantics.
    pub fn apply_update(&mut self, mlp: &mut Mlp, lr: f32, mu: f32) {
        self.ensure_bound(mlp);
        for (l, matrix) in mlp.weight_matrices_mut().iter_mut().enumerate() {
            let vel = &mut self.velocity[self.vel_off[l]..self.vel_off[l + 1]];
            let grads = &self.grads[self.vel_off[l]..self.vel_off[l + 1]];
            for ((w, v), &g) in matrix.iter_mut().zip(vel.iter_mut()).zip(grads) {
                *v = mu * *v - lr * g;
                *w += *v;
            }
        }
        self.grads.fill(0.0);
    }
}

/// Mean squared error of `mlp` over `data` via the batched forward kernel.
/// Bit-identical to [`mse_with`](crate::mse_with): the squared-error total
/// is accumulated in f64 in sample order, outputs in index order within a
/// sample, and each sample's forward pass is bit-exact per the lane
/// contract. Returns 0 for an empty dataset.
pub fn mse_batch_with(mlp: &Mlp, data: &Dataset, batch: &mut BatchScratch) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    batch.ensure_bound(mlp);
    assert_eq!(
        data.n_inputs(),
        mlp.topology().inputs(),
        "dataset input dims mismatch network"
    );
    let n_layers = batch.layers.len();
    let n_out = batch.layers[n_layers - 1];
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut inputs: [&[f32]; LANES] = [&[]; LANES];
    let mut base = 0usize;
    while base < data.len() {
        let n = LANES.min(data.len() - base);
        for (lane, slot) in inputs.iter_mut().enumerate().take(n) {
            *slot = data.input(base + lane);
        }
        batch.load_inputs(&inputs[..n]);
        batch.forward_loaded(mlp, sigmoid);
        let out_block = &batch.acts[batch.act_off[n_layers - 1] * LANES..];
        for lane in 0..n {
            let target = data.output(base + lane);
            for (k, &t) in target.iter().enumerate().take(n_out) {
                let y = out_block[k * LANES + lane];
                let e = (y - t) as f64;
                total += e * e;
                count += 1;
            }
        }
        base += n;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mse_with, Scratch};
    use proptest::prelude::*;

    fn small_topology() -> impl Strategy<Value = Topology> {
        (
            1usize..6,
            proptest::collection::vec(1usize..9, 0..3),
            1usize..5,
        )
            .prop_map(|(inputs, hidden, outputs)| {
                let mut layers = vec![inputs];
                layers.extend(hidden);
                layers.push(outputs);
                Topology::new(layers).expect("nonzero layers")
            })
    }

    fn dataset_for(topology: &Topology, n: usize, salt: u64) -> Dataset {
        let mut d = Dataset::new(topology.inputs(), topology.outputs());
        for k in 0..n {
            let input: Vec<f32> = (0..topology.inputs())
                .map(|i| ((k as u64 * 31 + i as u64 * 7 + salt) % 97) as f32 / 97.0)
                .collect();
            let output: Vec<f32> = (0..topology.outputs())
                .map(|i| ((k as u64 * 13 + i as u64 * 5 + salt) % 89) as f32 / 89.0)
                .collect();
            d.push(&input, &output).unwrap();
        }
        d
    }

    /// In-order scalar gradient accumulation at fixed weights: the
    /// reference the batched minibatch kernel must match bit-for-bit.
    fn scalar_batch_grads(
        mlp: &Mlp,
        data: &Dataset,
        range: std::ops::Range<usize>,
    ) -> Vec<Vec<f32>> {
        let mut grads: Vec<Vec<f32>> = mlp
            .weight_matrices()
            .iter()
            .map(|m| vec![0.0; m.len()])
            .collect();
        for idx in range {
            let input = data.input(idx);
            let target = data.output(idx);
            let acts = mlp.activations(input);
            let n_layers = acts.len();
            let mut deltas: Vec<Vec<f32>> = Vec::with_capacity(n_layers - 1);
            let out = &acts[n_layers - 1];
            deltas.push(
                out.iter()
                    .zip(target)
                    .map(|(&y, &t)| (y - t) * sigmoid_derivative(y))
                    .collect(),
            );
            for l in (1..n_layers - 1).rev() {
                let next_delta = deltas.last().unwrap();
                let n_here = acts[l].len();
                let n_next = acts[l + 1].len();
                let mut delta = vec![0.0f32; n_here];
                for (j, d) in delta.iter_mut().enumerate() {
                    let mut sum = 0.0;
                    #[allow(clippy::needless_range_loop)]
                    for k in 0..n_next {
                        sum += mlp.weight(l, k, j) * next_delta[k];
                    }
                    *d = sum * sigmoid_derivative(acts[l][j]);
                }
                deltas.push(delta);
            }
            deltas.reverse();
            for l in 0..n_layers - 1 {
                let n_in = acts[l].len();
                for (neuron, &d) in deltas[l].iter().enumerate() {
                    let row = neuron * (n_in + 1);
                    for (src, &a) in acts[l].iter().enumerate() {
                        grads[l][row + src] += d * a;
                    }
                    grads[l][row + n_in] += d;
                }
            }
        }
        grads
    }

    #[test]
    fn batched_forward_matches_scalar_bitwise() {
        let t = Topology::new(vec![9, 8, 1]).unwrap();
        let mlp = Mlp::seeded(t.clone(), 7);
        let data = dataset_for(&t, 21, 3); // 2 full blocks + tail of 5
        let mut batch = BatchScratch::new();
        let mut scratch = Scratch::new();
        let inputs: Vec<&[f32]> = (0..data.len()).map(|i| data.input(i)).collect();
        let mut out = vec![0.0f32; LANES];
        for chunk in inputs.chunks(LANES) {
            batch.forward_block(&mlp, chunk, &mut out);
            for (lane, input) in chunk.iter().enumerate() {
                let reference = scratch.forward(&mlp, input).to_vec();
                assert_eq!(&out[lane..lane + 1], &reference[..]);
            }
        }
    }

    #[test]
    fn batched_lut_forward_matches_feed_forward_lut() {
        let t = Topology::new(vec![6, 8, 4, 1]).unwrap();
        let mlp = Mlp::seeded(t.clone(), 11);
        let lut = SigmoidLut::default();
        let data = dataset_for(&t, 13, 5);
        let mut batch = BatchScratch::new();
        let inputs: Vec<&[f32]> = (0..data.len()).map(|i| data.input(i)).collect();
        for chunk in inputs.chunks(LANES) {
            let mut out = vec![0.0f32; chunk.len()];
            batch.forward_block_lut(&mlp, chunk, &mut out, &lut);
            for (lane, input) in chunk.iter().enumerate() {
                let reference = mlp.feed_forward_lut(input, &lut);
                assert_eq!(out[lane], reference[0]);
            }
        }
    }

    proptest! {
        /// Batched forward is bit-exact per sample against the scalar
        /// oracle for every batch size, including remainder tails.
        #[test]
        fn batched_forward_is_bit_exact(
            topology in small_topology(),
            seed in 0u64..500,
            n_samples in 1usize..20,
        ) {
            let mlp = Mlp::seeded(topology.clone(), seed);
            let data = dataset_for(&topology, n_samples, seed);
            let mut batch = BatchScratch::new();
            let mut scratch = Scratch::for_topology(&topology);
            let n_out = topology.outputs();
            let inputs: Vec<&[f32]> = (0..data.len()).map(|i| data.input(i)).collect();
            let mut out = vec![0.0f32; LANES * n_out];
            for chunk in inputs.chunks(LANES) {
                batch.forward_block(&mlp, chunk, &mut out);
                for (lane, input) in chunk.iter().enumerate() {
                    let reference = scratch.forward(&mlp, input);
                    prop_assert_eq!(&out[lane * n_out..(lane + 1) * n_out], reference);
                }
            }
        }

        /// Batched MSE is bit-exact against the scalar `mse_with` for
        /// every dataset size (tails included).
        #[test]
        fn batched_mse_is_bit_exact(
            topology in small_topology(),
            seed in 0u64..500,
            n_samples in 1usize..28,
        ) {
            let mlp = Mlp::seeded(topology.clone(), seed);
            let data = dataset_for(&topology, n_samples, seed);
            let mut batch = BatchScratch::new();
            let mut scratch = Scratch::new();
            let a = mse_with(&mlp, &data, &mut scratch);
            let b = mse_batch_with(&mlp, &data, &mut batch);
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        /// The accumulated minibatch gradient is bit-exact against an
        /// in-order scalar accumulation at fixed weights, over random
        /// topologies, seeds, and batch shapes.
        #[test]
        fn batched_gradient_accumulation_is_bit_exact(
            topology in small_topology(),
            seed in 0u64..500,
            n_samples in 1usize..20,
        ) {
            let mlp = Mlp::seeded(topology.clone(), seed);
            let data = dataset_for(&topology, n_samples, seed);
            let mut batch = BatchScratch::for_topology(&topology);
            batch.begin_batch(&mlp);
            let idx: Vec<usize> = (0..data.len()).collect();
            for chunk in idx.chunks(LANES) {
                let ins: Vec<&[f32]> = chunk.iter().map(|&i| data.input(i)).collect();
                let tgts: Vec<&[f32]> = chunk.iter().map(|&i| data.output(i)).collect();
                batch.accumulate_block(&mlp, &ins, &tgts);
            }
            let reference = scalar_batch_grads(&mlp, &data, 0..data.len());
            let mut off = 0;
            for m in reference {
                for (i, g) in m.iter().enumerate() {
                    prop_assert_eq!(batch.grads[off + i].to_bits(), g.to_bits());
                }
                off += m.len();
            }
        }

        /// A batch scratch reused across topologies (the worker-thread
        /// pattern) never contaminates results.
        #[test]
        fn batch_scratch_reuse_across_topologies_is_clean(
            t1 in small_topology(),
            t2 in small_topology(),
            seed in 0u64..200,
        ) {
            let d1 = dataset_for(&t1, 9, seed);
            let d2 = dataset_for(&t2, 9, seed.wrapping_add(1));
            let m1 = Mlp::seeded(t1.clone(), seed);
            let m2 = Mlp::seeded(t2.clone(), seed);
            let mut shared = BatchScratch::new();
            let _ = mse_batch_with(&m1, &d1, &mut shared);
            let via_shared = mse_batch_with(&m2, &d2, &mut shared);
            let mut fresh = BatchScratch::new();
            let via_fresh = mse_batch_with(&m2, &d2, &mut fresh);
            prop_assert_eq!(via_shared.to_bits(), via_fresh.to_bits());
        }
    }

    /// Momentum across minibatches: two apply_update calls must equal the
    /// closed-form two-step momentum recurrence on the accumulated grads.
    #[test]
    fn apply_update_carries_momentum() {
        let t = Topology::new(vec![2, 2, 1]).unwrap();
        let mlp0 = Mlp::seeded(t.clone(), 1);
        let data = dataset_for(&t, 6, 9);
        let (lr, mu) = (0.05f32, 0.9f32);

        let mut batched = mlp0.clone();
        let mut batch = BatchScratch::for_topology(&t);
        // Batch 1: samples 0..3; batch 2: samples 3..6.
        for range in [0..3usize, 3..6] {
            batch.begin_batch(&batched);
            let ins: Vec<&[f32]> = range.clone().map(|i| data.input(i)).collect();
            let tgts: Vec<&[f32]> = range.clone().map(|i| data.output(i)).collect();
            batch.accumulate_block(&batched, &ins, &tgts);
            batch.apply_update(&mut batched, lr, mu);
        }

        // Reference: same recurrence with scalar-accumulated gradients.
        let mut reference = mlp0.clone();
        let mut velocity: Vec<Vec<f32>> = reference
            .weight_matrices()
            .iter()
            .map(|m| vec![0.0; m.len()])
            .collect();
        for range in [0..3usize, 3..6] {
            let grads = scalar_batch_grads(&reference, &data, range);
            for (l, g) in grads.iter().enumerate() {
                for (i, &gi) in g.iter().enumerate() {
                    velocity[l][i] = mu * velocity[l][i] - lr * gi;
                }
            }
            for (l, v) in velocity.iter().enumerate() {
                let matrix = &mut reference.weight_matrices_mut()[l];
                for (w, &vi) in matrix.iter_mut().zip(v) {
                    *w += vi;
                }
            }
        }
        assert_eq!(batched, reference);
    }
}

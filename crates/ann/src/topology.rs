//! Neural network topology descriptors.

use crate::AnnError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The layer structure of a multilayer perceptron.
///
/// Layer sizes include the input layer, zero or more hidden layers, and the
/// output layer — e.g. the paper writes the `sobel` network as `9 -> 8 -> 1`.
///
/// # Example
///
/// ```
/// let t = ann::Topology::new(vec![9, 8, 1])?;
/// assert_eq!(t.inputs(), 9);
/// assert_eq!(t.outputs(), 1);
/// assert_eq!(t.hidden_layers(), 1);
/// assert_eq!(t.to_string(), "9 -> 8 -> 1");
/// # Ok::<(), ann::AnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    layers: Vec<usize>,
}

impl Topology {
    /// Creates a topology from the full list of layer sizes.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::InvalidTopology`] if fewer than two layers are
    /// given or any layer is empty.
    pub fn new(layers: Vec<usize>) -> Result<Self, AnnError> {
        if layers.len() < 2 {
            return Err(AnnError::InvalidTopology(
                "need at least input and output layers".into(),
            ));
        }
        if layers.contains(&0) {
            return Err(AnnError::InvalidTopology("zero-sized layer".into()));
        }
        Ok(Topology { layers })
    }

    /// All layer sizes, input first.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Size of the input layer.
    pub fn inputs(&self) -> usize {
        self.layers[0]
    }

    /// Size of the output layer.
    pub fn outputs(&self) -> usize {
        *self.layers.last().expect("topology has >= 2 layers")
    }

    /// Number of hidden layers.
    pub fn hidden_layers(&self) -> usize {
        self.layers.len() - 2
    }

    /// Total number of neurons that actually compute (hidden + output).
    pub fn computing_neurons(&self) -> usize {
        self.layers[1..].iter().sum()
    }

    /// Total number of synaptic weights, **including one bias per neuron**.
    ///
    /// This is the amount of configuration state `enq.c` must ship to the
    /// NPU and the number of multiply-accumulate operations one evaluation
    /// performs.
    pub fn weight_count(&self) -> usize {
        self.layers.windows(2).map(|w| (w[0] + 1) * w[1]).sum()
    }

    /// Number of multiply-add operations per evaluation (same as
    /// [`weight_count`](Self::weight_count) since biases are folded into the
    /// accumulation).
    pub fn macs_per_eval(&self) -> usize {
        self.weight_count()
    }

    /// Number of sigmoid evaluations per network evaluation.
    pub fn sigmoids_per_eval(&self) -> usize {
        self.computing_neurons()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for n in &self.layers {
            if !first {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_topologies() {
        assert!(Topology::new(vec![3]).is_err());
        assert!(Topology::new(vec![]).is_err());
        assert!(Topology::new(vec![3, 0, 1]).is_err());
    }

    #[test]
    fn weight_count_counts_biases() {
        // 2 -> 8 -> 2: (2+1)*8 + (8+1)*2 = 24 + 18 = 42.
        let t = Topology::new(vec![2, 8, 2]).unwrap();
        assert_eq!(t.weight_count(), 42);
        assert_eq!(t.macs_per_eval(), 42);
        assert_eq!(t.sigmoids_per_eval(), 10);
    }

    #[test]
    fn jmeint_paper_topology_counts() {
        // 18 -> 32 -> 8 -> 2 (paper Table 1).
        let t = Topology::new(vec![18, 32, 8, 2]).unwrap();
        assert_eq!(t.inputs(), 18);
        assert_eq!(t.outputs(), 2);
        assert_eq!(t.hidden_layers(), 2);
        assert_eq!(t.weight_count(), 19 * 32 + 33 * 8 + 9 * 2);
    }

    #[test]
    fn display_uses_arrows() {
        let t = Topology::new(vec![64, 16, 64]).unwrap();
        assert_eq!(t.to_string(), "64 -> 16 -> 64");
    }
}

//! Min/max normalization of region inputs and outputs.

use serde::{Deserialize, Serialize};

/// Per-dimension linear scaling between application values and the `[0, 1]`
/// range the sigmoid network operates in.
///
/// The observation phase "measures the minimum and maximum value for each
/// input and output; the NPU normalizes values using these ranges during
/// execution" (paper Section 4.1). The NPU's *scaling unit* applies exactly
/// this transform in hardware (Section 6.1).
///
/// Degenerate dimensions (min == max) normalize to `0.5` and denormalize
/// back to the constant, so constant outputs survive the round trip.
///
/// # Example
///
/// ```
/// let norm = ann::Normalizer::new(vec![(-1.0, 3.0)]);
/// let mut v = [1.0f32];
/// norm.normalize(&mut v);
/// assert_eq!(v[0], 0.5);
/// norm.denormalize(&mut v);
/// assert_eq!(v[0], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    ranges: Vec<(f32, f32)>,
}

impl Normalizer {
    /// Creates a normalizer from per-dimension `(min, max)` ranges.
    pub fn new(ranges: Vec<(f32, f32)>) -> Self {
        Normalizer { ranges }
    }

    /// An identity normalizer (`[0, 1]` in every dimension).
    pub fn identity(dims: usize) -> Self {
        Normalizer {
            ranges: vec![(0.0, 1.0); dims],
        }
    }

    /// Number of dimensions this normalizer covers.
    pub fn dims(&self) -> usize {
        self.ranges.len()
    }

    /// The `(min, max)` ranges, one per dimension.
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.ranges
    }

    /// Maps application values into `[0, 1]` in place (clamping outside the
    /// observed range, as saturating hardware scaling would).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.dims()`.
    pub fn normalize(&self, values: &mut [f32]) {
        assert_eq!(values.len(), self.dims(), "normalizer dimension mismatch");
        for (v, &(lo, hi)) in values.iter_mut().zip(&self.ranges) {
            *v = if hi > lo {
                ((*v - lo) / (hi - lo)).clamp(0.0, 1.0)
            } else {
                0.5
            };
        }
    }

    /// Normalizes a single dimension's value (the scaling unit processes
    /// one value per bus transfer).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn normalize_one(&self, dim: usize, value: f32) -> f32 {
        let (lo, hi) = self.ranges[dim];
        if hi > lo {
            ((value - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.5
        }
    }

    /// Denormalizes a single dimension's value.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn denormalize_one(&self, dim: usize, value: f32) -> f32 {
        let (lo, hi) = self.ranges[dim];
        if hi > lo {
            lo + value * (hi - lo)
        } else {
            lo
        }
    }

    /// Maps `[0, 1]` network values back to application range in place.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.dims()`.
    pub fn denormalize(&self, values: &mut [f32]) {
        assert_eq!(values.len(), self.dims(), "normalizer dimension mismatch");
        for (v, &(lo, hi)) in values.iter_mut().zip(&self.ranges) {
            *v = if hi > lo { lo + *v * (hi - lo) } else { lo };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_inside_range() {
        let n = Normalizer::new(vec![(0.0, 10.0), (-5.0, 5.0)]);
        let mut v = [2.5f32, 0.0];
        let orig = v;
        n.normalize(&mut v);
        assert!((v[0] - 0.25).abs() < 1e-6);
        assert!((v[1] - 0.5).abs() < 1e-6);
        n.denormalize(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn clamps_out_of_range_inputs() {
        let n = Normalizer::new(vec![(0.0, 1.0)]);
        let mut v = [42.0f32];
        n.normalize(&mut v);
        assert_eq!(v[0], 1.0);
        let mut v = [-42.0f32];
        n.normalize(&mut v);
        assert_eq!(v[0], 0.0);
    }

    #[test]
    fn degenerate_range_round_trips_to_constant() {
        let n = Normalizer::new(vec![(3.0, 3.0)]);
        let mut v = [3.0f32];
        n.normalize(&mut v);
        assert_eq!(v[0], 0.5);
        n.denormalize(&mut v);
        assert_eq!(v[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn normalize_panics_on_wrong_len() {
        Normalizer::identity(2).normalize(&mut [0.0]);
    }
}

//! The multilayer perceptron itself.

use crate::{sigmoid, SigmoidLut, Topology};
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fully-connected sigmoid multilayer perceptron.
///
/// Every computing neuron (hidden and output) performs a weighted sum of its
/// inputs plus a bias, then applies the sigmoid — the exact dataflow the
/// paper's NPU implements (Section 6.1). All values are expected to be
/// normalized to `[0, 1]`; see [`crate::Normalizer`].
///
/// Weights for layer `l` are stored row-major per neuron:
/// `[w_0, w_1, ..., w_{n_in-1}, bias]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    topology: Topology,
    /// One weight matrix per layer transition, each of shape
    /// `layers[l+1] x (layers[l] + 1)`.
    weights: Vec<Vec<f32>>,
}

impl Mlp {
    /// Creates a network with all weights zero (useful for deserialization
    /// targets and tests).
    pub fn zeroed(topology: Topology) -> Self {
        let weights = topology
            .layers()
            .windows(2)
            .map(|w| vec![0.0; (w[0] + 1) * w[1]])
            .collect();
        Mlp { topology, weights }
    }

    /// Creates a network with small random initial weights from a seed.
    ///
    /// Initialization draws uniformly from `[-r, r]` with
    /// `r = 1 / sqrt(fan_in)`, the classic heuristic that keeps initial
    /// weighted sums in the sigmoid's linear region.
    pub fn seeded(topology: Topology, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::zeroed(topology);
        for l in 0..mlp.weights.len() {
            let fan_in = mlp.topology.layers()[l] as f32;
            let r = 1.0 / fan_in.sqrt();
            for w in &mut mlp.weights[l] {
                *w = rng.gen_range(-r..=r);
            }
        }
        mlp
    }

    /// Creates a network from explicit weight matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes do not match the topology.
    pub fn from_weights(topology: Topology, weights: Vec<Vec<f32>>) -> Self {
        let expected: Vec<usize> = topology
            .layers()
            .windows(2)
            .map(|w| (w[0] + 1) * w[1])
            .collect();
        let actual: Vec<usize> = weights.iter().map(Vec::len).collect();
        assert_eq!(expected, actual, "weight matrix shapes mismatch topology");
        Mlp { topology, weights }
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The weight (or bias, when `src == fan_in`) feeding neuron `neuron`
    /// of computing layer `layer` (0 = first hidden layer).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn weight(&self, layer: usize, neuron: usize, src: usize) -> f32 {
        let n_in = self.topology.layers()[layer];
        self.weights[layer][neuron * (n_in + 1) + src]
    }

    /// Mutable access used by the naive reference kernels in the
    /// scratch-buffer bit-exactness tests.
    #[cfg(test)]
    pub(crate) fn weight_mut(&mut self, layer: usize, neuron: usize, src: usize) -> &mut f32 {
        let n_in = self.topology.layers()[layer];
        &mut self.weights[layer][neuron * (n_in + 1) + src]
    }

    /// Raw weight matrices (layer transitions in order).
    pub fn weight_matrices(&self) -> &[Vec<f32>] {
        &self.weights
    }

    /// Mutable raw weight matrices, used by the scratch-buffer trainer for
    /// row-slice updates (shapes must not change).
    pub(crate) fn weight_matrices_mut(&mut self) -> &mut [Vec<f32>] {
        &mut self.weights
    }

    /// Evaluates the network on a normalized input vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer size.
    pub fn feed_forward(&self, input: &[f32]) -> Vec<f32> {
        self.feed_forward_with(input, sigmoid)
    }

    /// Evaluates the network using a hardware-style quantized sigmoid LUT.
    ///
    /// This is the arithmetic the digital NPU performs; tests compare it
    /// against [`feed_forward`](Self::feed_forward) to bound quantization
    /// error.
    pub fn feed_forward_lut(&self, input: &[f32], lut: &SigmoidLut) -> Vec<f32> {
        self.feed_forward_with(input, |x| lut.eval(x))
    }

    fn feed_forward_with(&self, input: &[f32], act: impl Fn(f32) -> f32) -> Vec<f32> {
        assert_eq!(
            input.len(),
            self.topology.inputs(),
            "input vector size mismatch"
        );
        let mut current = input.to_vec();
        for (l, matrix) in self.weights.iter().enumerate() {
            let n_in = self.topology.layers()[l];
            let n_out = self.topology.layers()[l + 1];
            let mut next = Vec::with_capacity(n_out);
            for neuron in 0..n_out {
                let row = &matrix[neuron * (n_in + 1)..(neuron + 1) * (n_in + 1)];
                let mut sum = row[n_in]; // bias
                for (w, x) in row[..n_in].iter().zip(&current) {
                    sum += w * x;
                }
                next.push(act(sum));
            }
            current = next;
        }
        current
    }

    /// Evaluates the network and returns the activations of **every** layer
    /// (input layer first). Used by backpropagation.
    pub fn activations(&self, input: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(
            input.len(),
            self.topology.inputs(),
            "input vector size mismatch"
        );
        let mut acts = Vec::with_capacity(self.topology.layers().len());
        acts.push(input.to_vec());
        for (l, matrix) in self.weights.iter().enumerate() {
            let n_in = self.topology.layers()[l];
            let n_out = self.topology.layers()[l + 1];
            let prev = &acts[l];
            let mut next = Vec::with_capacity(n_out);
            for neuron in 0..n_out {
                let row = &matrix[neuron * (n_in + 1)..(neuron + 1) * (n_in + 1)];
                let mut sum = row[n_in];
                for (w, x) in row[..n_in].iter().zip(prev) {
                    sum += w * x;
                }
                next.push(sigmoid(sum));
            }
            acts.push(next);
        }
        acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mlp {
        // 2 -> 2 -> 1 with hand-picked weights.
        let t = Topology::new(vec![2, 2, 1]).unwrap();
        Mlp::from_weights(
            t,
            vec![
                // hidden: neuron0 = s(1*a + 0*b + 0), neuron1 = s(0*a + 1*b + 0)
                vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0],
                // output = s(h0 + h1 - 1)
                vec![1.0, 1.0, -1.0],
            ],
        )
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mlp = tiny();
        let out = mlp.feed_forward(&[0.0, 0.0]);
        // hidden = (0.5, 0.5); output = sigmoid(0.5 + 0.5 - 1) = 0.5
        assert!((out[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn activations_include_all_layers() {
        let mlp = tiny();
        let acts = mlp.activations(&[1.0, 0.0]);
        assert_eq!(acts.len(), 3);
        assert_eq!(acts[0], vec![1.0, 0.0]);
        assert_eq!(acts[2].len(), 1);
        // Last activation equals feed_forward output.
        assert_eq!(acts[2], mlp.feed_forward(&[1.0, 0.0]));
    }

    #[test]
    fn lut_forward_close_to_exact() {
        let t = Topology::new(vec![3, 8, 2]).unwrap();
        let mlp = Mlp::seeded(t, 7);
        let lut = SigmoidLut::default();
        let input = [0.2, 0.9, 0.4];
        let exact = mlp.feed_forward(&input);
        let quant = mlp.feed_forward_lut(&input, &lut);
        for (a, b) in exact.iter().zip(&quant) {
            assert!((a - b).abs() < 5e-3);
        }
    }

    #[test]
    fn seeded_is_deterministic() {
        let t = Topology::new(vec![4, 8, 1]).unwrap();
        let a = Mlp::seeded(t.clone(), 99);
        let b = Mlp::seeded(t, 99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input vector size mismatch")]
    fn forward_rejects_wrong_input_size() {
        tiny().feed_forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "shapes mismatch")]
    fn from_weights_validates_shapes() {
        let t = Topology::new(vec![2, 1]).unwrap();
        let _ = Mlp::from_weights(t, vec![vec![0.0; 5]]);
    }
}

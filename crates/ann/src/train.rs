//! Backpropagation training (paper Section 4.2).

use crate::{sigmoid_derivative, Dataset, Mlp};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for backpropagation.
///
/// The paper fixes a small learning rate ("larger steps can cause
/// oscillation in the training and prevent convergence") and a fixed epoch
/// count chosen to balance generalization against accuracy. The OCR of the
/// paper drops the exact digits; defaults here are 0.01 and 500 and both are
/// plain fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    /// Gradient-descent step size.
    pub learning_rate: f32,
    /// Classical momentum coefficient (0 disables momentum; FANN-style
    /// backpropagation uses momentum to speed convergence at small
    /// learning rates).
    pub momentum: f32,
    /// Complete passes over the training data.
    pub epochs: usize,
    /// Seed for per-epoch sample shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            learning_rate: 0.01,
            momentum: 0.9,
            epochs: 500,
            shuffle_seed: 0x5eed,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared error over the training set before any update.
    pub initial_mse: f64,
    /// Mean squared error over the training set after the final epoch.
    pub final_mse: f64,
    /// Epochs actually executed.
    pub epochs_run: usize,
}

/// Stochastic-gradient-descent backpropagation trainer.
///
/// # Example
///
/// ```
/// use ann::{Dataset, Mlp, Topology, TrainParams, Trainer};
///
/// let mut data = Dataset::new(1, 1);
/// for i in 0..50 {
///     let x = i as f32 / 49.0;
///     data.push(&[x], &[1.0 - x]).unwrap();
/// }
/// let mut mlp = Mlp::seeded(Topology::new(vec![1, 2, 1]).unwrap(), 3);
/// let report = Trainer::new(TrainParams::default()).train(&mut mlp, &data);
/// assert!(report.final_mse <= report.initial_mse);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    params: TrainParams,
}

impl Trainer {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(params: TrainParams) -> Self {
        Trainer { params }
    }

    /// The trainer's hyperparameters.
    pub fn params(&self) -> &TrainParams {
        &self.params
    }

    /// Trains `mlp` in place on `data`, returning a summary.
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimensions do not match the network topology.
    pub fn train(&self, mlp: &mut Mlp, data: &Dataset) -> TrainReport {
        assert_eq!(
            data.n_inputs(),
            mlp.topology().inputs(),
            "dataset input dims mismatch network"
        );
        assert_eq!(
            data.n_outputs(),
            mlp.topology().outputs(),
            "dataset output dims mismatch network"
        );
        let initial_mse = mse(mlp, data);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.shuffle_seed);
        // Momentum (velocity) state, one entry per weight matrix.
        let mut velocity: Vec<Vec<f32>> = mlp
            .weight_matrices()
            .iter()
            .map(|m| vec![0.0; m.len()])
            .collect();
        // The MSE learning curve costs a full-dataset evaluation per
        // sample, so it is taken (at ~8 points) only when debug tracing
        // is on; the training loop itself is unchanged otherwise.
        let curve = telemetry::enabled(telemetry::Level::Debug);
        let stride = (self.params.epochs / 8).max(1);
        for epoch in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                self.backprop_one(mlp, data.input(i), data.output(i), &mut velocity);
            }
            if curve && (epoch + 1) % stride == 0 {
                let sample = mse(mlp, data);
                telemetry::emit(telemetry::Level::Debug, "ann::train", || {
                    telemetry::EventKind::TrainEpoch {
                        epoch: (epoch + 1) as u64,
                        mse: sample,
                    }
                });
            }
        }
        TrainReport {
            initial_mse,
            final_mse: mse(mlp, data),
            epochs_run: self.params.epochs,
        }
    }

    /// One stochastic gradient step for a single sample.
    fn backprop_one(
        &self,
        mlp: &mut Mlp,
        input: &[f32],
        target: &[f32],
        velocity: &mut [Vec<f32>],
    ) {
        let acts = mlp.activations(input);
        let n_layers = acts.len();
        // delta[l] holds dE/dnet for computing layer l (0 = first hidden).
        let mut deltas: Vec<Vec<f32>> = Vec::with_capacity(n_layers - 1);

        // Output layer delta: (y - t) * y * (1 - y).
        let out = &acts[n_layers - 1];
        let out_delta: Vec<f32> = out
            .iter()
            .zip(target)
            .map(|(&y, &t)| (y - t) * sigmoid_derivative(y))
            .collect();
        deltas.push(out_delta);

        // Hidden layers, walking backwards.
        for l in (1..n_layers - 1).rev() {
            let next_delta = deltas.last().expect("output delta pushed first");
            let n_here = acts[l].len();
            let n_next = acts[l + 1].len();
            let mut delta = vec![0.0f32; n_here];
            for (j, d) in delta.iter_mut().enumerate() {
                let mut sum = 0.0;
                #[allow(clippy::needless_range_loop)] // k indexes two structures
                for k in 0..n_next {
                    // Weight from neuron j of layer l into neuron k of l+1.
                    sum += mlp.weight(l, k, j) * next_delta[k];
                }
                *d = sum * sigmoid_derivative(acts[l][j]);
            }
            deltas.push(delta);
        }
        deltas.reverse(); // now deltas[l-1] corresponds to computing layer l-1

        // Apply updates with momentum:
        //   v = momentum * v - lr * delta * activation; w += v.
        let lr = self.params.learning_rate;
        let mu = self.params.momentum;
        for l in 0..n_layers - 1 {
            let n_in = acts[l].len();
            for (neuron, &d) in deltas[l].iter().enumerate() {
                let row = neuron * (n_in + 1);
                for (src, &a) in acts[l].iter().enumerate() {
                    let v = &mut velocity[l][row + src];
                    *v = mu * *v - lr * d * a;
                    *mlp.weight_mut(l, neuron, src) += *v;
                }
                let v = &mut velocity[l][row + n_in];
                *v = mu * *v - lr * d;
                *mlp.weight_mut(l, neuron, n_in) += *v; // bias
            }
        }
    }
}

/// Mean squared error of `mlp` over `data` (averaged over samples and
/// output dimensions). Returns 0 for an empty dataset.
pub fn mse(mlp: &Mlp, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (input, target) in data.iter() {
        let out = mlp.feed_forward(input);
        for (&y, &t) in out.iter().zip(target) {
            let e = (y - t) as f64;
            total += e * e;
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(2, 1);
        for (a, b, y) in [
            (0.0, 0.0, 0.0),
            (0.0, 1.0, 1.0),
            (1.0, 0.0, 1.0),
            (1.0, 1.0, 0.0),
        ] {
            d.push(&[a, b], &[y]).unwrap();
        }
        d
    }

    #[test]
    fn learns_xor() {
        let mut mlp = Mlp::seeded(Topology::new(vec![2, 4, 1]).unwrap(), 11);
        let params = TrainParams {
            learning_rate: 0.5, // XOR on 4 samples needs a big step to converge fast
            momentum: 0.0,
            epochs: 4000,
            shuffle_seed: 1,
        };
        let report = Trainer::new(params).train(&mut mlp, &xor_data());
        assert!(report.final_mse < 0.02, "XOR did not converge: {report:?}");
        assert!(mlp.feed_forward(&[0.0, 1.0])[0] > 0.8);
        assert!(mlp.feed_forward(&[1.0, 1.0])[0] < 0.2);
    }

    #[test]
    fn training_reduces_mse_on_smooth_function() {
        let mut data = Dataset::new(1, 1);
        for i in 0..100 {
            let x = i as f32 / 99.0;
            data.push(&[x], &[0.5 + 0.4 * (3.0 * x).sin()]).unwrap();
        }
        let mut mlp = Mlp::seeded(Topology::new(vec![1, 8, 1]).unwrap(), 5);
        let report = Trainer::new(TrainParams {
            epochs: 300,
            learning_rate: 0.2,
            momentum: 0.0,
            shuffle_seed: 2,
        })
        .train(&mut mlp, &data);
        assert!(report.final_mse < report.initial_mse * 0.5);
    }

    #[test]
    fn training_is_deterministic() {
        let data = xor_data();
        let t = Topology::new(vec![2, 4, 1]).unwrap();
        let params = TrainParams {
            epochs: 50,
            ..TrainParams::default()
        };
        let mut a = Mlp::seeded(t.clone(), 1);
        let mut b = Mlp::seeded(t, 1);
        Trainer::new(params).train(&mut a, &data);
        Trainer::new(params).train(&mut b, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn mse_of_empty_dataset_is_zero() {
        let mlp = Mlp::zeroed(Topology::new(vec![2, 1]).unwrap());
        assert_eq!(mse(&mlp, &Dataset::new(2, 1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "dataset input dims mismatch")]
    fn train_rejects_mismatched_data() {
        let mut mlp = Mlp::zeroed(Topology::new(vec![3, 1]).unwrap());
        let mut d = Dataset::new(2, 1);
        d.push(&[0.0, 0.0], &[0.0]).unwrap();
        Trainer::new(TrainParams::default()).train(&mut mlp, &d);
    }
}

//! Backpropagation training (paper Section 4.2).

use crate::{mse_batch_with, BatchScratch, Dataset, Mlp, Scratch, LANES};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters for backpropagation.
///
/// The paper fixes a small learning rate ("larger steps can cause
/// oscillation in the training and prevent convergence") and a fixed epoch
/// count chosen to balance generalization against accuracy. The OCR of the
/// paper drops the exact digits; defaults here are 0.01 and 500 and both are
/// plain fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainParams {
    /// Gradient-descent step size.
    pub learning_rate: f32,
    /// Classical momentum coefficient (0 disables momentum; FANN-style
    /// backpropagation uses momentum to speed convergence at small
    /// learning rates).
    pub momentum: f32,
    /// Complete passes over the training data.
    pub epochs: usize,
    /// Seed for per-epoch sample shuffling.
    pub shuffle_seed: u64,
    /// Samples per weight update. `0` or `1` selects classic per-sample
    /// SGD, bit-identical to releases that predate this field. Values
    /// `>= 2` accumulate gradients over each shuffled chunk with the
    /// batched SIMD kernel ([`BatchScratch`]) and apply one
    /// momentum-SGD update per chunk (the update uses the gradient
    /// *sum*, FANN-style, so `learning_rate` keeps its per-sample
    /// meaning at batch size 1).
    pub batch_size: usize,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            learning_rate: 0.01,
            momentum: 0.9,
            epochs: 500,
            shuffle_seed: 0x5eed,
            batch_size: 1,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared error over the training set before any update.
    pub initial_mse: f64,
    /// Mean squared error over the training set after the final epoch.
    pub final_mse: f64,
    /// Epochs actually executed.
    pub epochs_run: usize,
}

/// Stochastic-gradient-descent backpropagation trainer.
///
/// # Example
///
/// ```
/// use ann::{Dataset, Mlp, Topology, TrainParams, Trainer};
///
/// let mut data = Dataset::new(1, 1);
/// for i in 0..50 {
///     let x = i as f32 / 49.0;
///     data.push(&[x], &[1.0 - x]).unwrap();
/// }
/// let mut mlp = Mlp::seeded(Topology::new(vec![1, 2, 1]).unwrap(), 3);
/// let report = Trainer::new(TrainParams::default()).train(&mut mlp, &data);
/// assert!(report.final_mse <= report.initial_mse);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    params: TrainParams,
}

impl Trainer {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(params: TrainParams) -> Self {
        Trainer { params }
    }

    /// The trainer's hyperparameters.
    pub fn params(&self) -> &TrainParams {
        &self.params
    }

    /// Trains `mlp` in place on `data`, returning a summary.
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimensions do not match the network topology.
    pub fn train(&self, mlp: &mut Mlp, data: &Dataset) -> TrainReport {
        let mut scratch = Scratch::for_topology(mlp.topology());
        self.train_with(mlp, data, &mut scratch)
    }

    /// Like [`train`](Self::train), but reusing caller-owned scratch
    /// buffers — the topology-search workers hold one [`Scratch`] per
    /// thread and reuse it across all their candidates, so the steady-state
    /// training loop performs no heap allocation. Results are bit-identical
    /// to [`train`](Self::train).
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimensions do not match the network topology.
    pub fn train_with(&self, mlp: &mut Mlp, data: &Dataset, scratch: &mut Scratch) -> TrainReport {
        let mut batch = BatchScratch::for_topology(mlp.topology());
        self.train_with_scratches(mlp, data, scratch, &mut batch)
    }

    /// Like [`train_with`](Self::train_with), but also reusing a
    /// caller-owned [`BatchScratch`]. All full-dataset MSE evaluations
    /// (initial, final, and the debug learning curve) run through the
    /// batched SIMD kernel, which is bit-exact with the scalar path; the
    /// per-epoch update loop is per-sample SGD unless
    /// [`TrainParams::batch_size`] selects minibatch accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimensions do not match the network topology.
    pub fn train_with_scratches(
        &self,
        mlp: &mut Mlp,
        data: &Dataset,
        scratch: &mut Scratch,
        batch: &mut BatchScratch,
    ) -> TrainReport {
        assert_eq!(
            data.n_inputs(),
            mlp.topology().inputs(),
            "dataset input dims mismatch network"
        );
        assert_eq!(
            data.n_outputs(),
            mlp.topology().outputs(),
            "dataset output dims mismatch network"
        );
        // Binding zeroes the velocity (momentum) state, exactly like the
        // fresh velocity vectors the pre-scratch trainer allocated.
        scratch.bind(mlp.topology());
        batch.bind(mlp.topology());
        let initial_mse = mse_batch_with(mlp, data, batch);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.params.shuffle_seed);
        let lr = self.params.learning_rate;
        let mu = self.params.momentum;
        let minibatch = self.params.batch_size.max(1);
        // The MSE learning curve costs a full-dataset evaluation per
        // sample, so it is taken (at ~8 points) only when debug tracing
        // is on; the training loop itself is unchanged otherwise.
        let curve = telemetry::enabled(telemetry::Level::Debug);
        let stride = (self.params.epochs / 8).max(1);
        for epoch in 0..self.params.epochs {
            let epoch_start = std::time::Instant::now();
            order.shuffle(&mut rng);
            if minibatch <= 1 {
                for &i in &order {
                    scratch.backprop_one_bound(mlp, data.input(i), data.output(i), lr, mu);
                }
            } else {
                for chunk in order.chunks(minibatch) {
                    batch.begin_batch(mlp);
                    for block in chunk.chunks(LANES) {
                        let mut inputs: [&[f32]; LANES] = [&[]; LANES];
                        let mut targets: [&[f32]; LANES] = [&[]; LANES];
                        for (lane, &i) in block.iter().enumerate() {
                            inputs[lane] = data.input(i);
                            targets[lane] = data.output(i);
                        }
                        batch.accumulate_block(
                            mlp,
                            &inputs[..block.len()],
                            &targets[..block.len()],
                        );
                    }
                    batch.apply_update(mlp, lr, mu);
                }
            }
            // Wall-clock epoch time goes to the global sample registry
            // (sweep-level report only): one lock per epoch, negligible
            // next to a full-dataset backprop pass.
            let elapsed = epoch_start.elapsed();
            telemetry::record_sample("ann.train.epoch_us", elapsed.as_micros() as f64);
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 && !data.is_empty() {
                telemetry::record_sample("ann.train.samples_per_s", data.len() as f64 / secs);
            }
            if curve && (epoch + 1) % stride == 0 {
                let sample = mse_batch_with(mlp, data, batch);
                telemetry::emit(telemetry::Level::Debug, "ann::train", || {
                    telemetry::EventKind::TrainEpoch {
                        epoch: (epoch + 1) as u64,
                        mse: sample,
                    }
                });
            }
        }
        TrainReport {
            initial_mse,
            final_mse: mse_batch_with(mlp, data, batch),
            epochs_run: self.params.epochs,
        }
    }

    /// One fused forward+backward SGD step on a single sample, using the
    /// trainer's hyperparameters and `scratch`'s momentum state. Exposed
    /// for microbenchmarks and incremental-training experiments; the kernel
    /// [`Trainer::train_with`] runs per sample.
    pub fn step(&self, mlp: &mut Mlp, input: &[f32], target: &[f32], scratch: &mut Scratch) {
        scratch.backprop_one(
            mlp,
            input,
            target,
            self.params.learning_rate,
            self.params.momentum,
        );
    }
}

/// Mean squared error of `mlp` over `data` (averaged over samples and
/// output dimensions). Returns 0 for an empty dataset.
///
/// Allocates one [`BatchScratch`] per call; hot paths evaluating many
/// networks should hold their own scratch and call [`mse_batch_with`]
/// (or [`crate::mse_with`] for the scalar oracle — the two are
/// bit-exact).
pub fn mse(mlp: &Mlp, data: &Dataset) -> f64 {
    let mut batch = BatchScratch::for_topology(mlp.topology());
    mse_batch_with(mlp, data, &mut batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(2, 1);
        for (a, b, y) in [
            (0.0, 0.0, 0.0),
            (0.0, 1.0, 1.0),
            (1.0, 0.0, 1.0),
            (1.0, 1.0, 0.0),
        ] {
            d.push(&[a, b], &[y]).unwrap();
        }
        d
    }

    #[test]
    fn learns_xor() {
        let mut mlp = Mlp::seeded(Topology::new(vec![2, 4, 1]).unwrap(), 11);
        let params = TrainParams {
            learning_rate: 0.5, // XOR on 4 samples needs a big step to converge fast
            momentum: 0.0,
            epochs: 4000,
            shuffle_seed: 1,
            batch_size: 1,
        };
        let report = Trainer::new(params).train(&mut mlp, &xor_data());
        assert!(report.final_mse < 0.02, "XOR did not converge: {report:?}");
        assert!(mlp.feed_forward(&[0.0, 1.0])[0] > 0.8);
        assert!(mlp.feed_forward(&[1.0, 1.0])[0] < 0.2);
    }

    #[test]
    fn training_reduces_mse_on_smooth_function() {
        let mut data = Dataset::new(1, 1);
        for i in 0..100 {
            let x = i as f32 / 99.0;
            data.push(&[x], &[0.5 + 0.4 * (3.0 * x).sin()]).unwrap();
        }
        let mut mlp = Mlp::seeded(Topology::new(vec![1, 8, 1]).unwrap(), 5);
        let report = Trainer::new(TrainParams {
            epochs: 300,
            learning_rate: 0.2,
            momentum: 0.0,
            shuffle_seed: 2,
            batch_size: 1,
        })
        .train(&mut mlp, &data);
        assert!(report.final_mse < report.initial_mse * 0.5);
    }

    #[test]
    fn training_is_deterministic() {
        let data = xor_data();
        let t = Topology::new(vec![2, 4, 1]).unwrap();
        let params = TrainParams {
            epochs: 50,
            ..TrainParams::default()
        };
        let mut a = Mlp::seeded(t.clone(), 1);
        let mut b = Mlp::seeded(t, 1);
        Trainer::new(params).train(&mut a, &data);
        Trainer::new(params).train(&mut b, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn minibatch_training_reduces_mse() {
        let mut data = Dataset::new(1, 1);
        for i in 0..100 {
            let x = i as f32 / 99.0;
            data.push(&[x], &[0.5 + 0.4 * (3.0 * x).sin()]).unwrap();
        }
        // Batch sizes straddling the LANES width exercise full blocks,
        // partial tails, and multi-block chunks.
        for batch_size in [2, LANES - 1, LANES, LANES + 3] {
            let mut mlp = Mlp::seeded(Topology::new(vec![1, 8, 1]).unwrap(), 5);
            let report = Trainer::new(TrainParams {
                epochs: 300,
                learning_rate: 0.2,
                momentum: 0.9,
                shuffle_seed: 2,
                batch_size,
            })
            .train(&mut mlp, &data);
            assert!(
                report.final_mse < report.initial_mse * 0.5,
                "batch_size {batch_size} failed to learn: {report:?}"
            );
        }
    }

    #[test]
    fn batch_size_zero_and_one_are_identical() {
        let data = xor_data();
        let t = Topology::new(vec![2, 4, 1]).unwrap();
        let mut a = Mlp::seeded(t.clone(), 1);
        let mut b = Mlp::seeded(t, 1);
        let base = TrainParams {
            epochs: 50,
            ..TrainParams::default()
        };
        Trainer::new(TrainParams {
            batch_size: 0,
            ..base
        })
        .train(&mut a, &data);
        Trainer::new(TrainParams {
            batch_size: 1,
            ..base
        })
        .train(&mut b, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn mse_of_empty_dataset_is_zero() {
        let mlp = Mlp::zeroed(Topology::new(vec![2, 1]).unwrap());
        assert_eq!(mse(&mlp, &Dataset::new(2, 1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "dataset input dims mismatch")]
    fn train_rejects_mismatched_data() {
        let mut mlp = Mlp::zeroed(Topology::new(vec![3, 1]).unwrap());
        let mut d = Dataset::new(2, 1);
        d.push(&[0.0, 0.0], &[0.0]).unwrap();
        Trainer::new(TrainParams::default()).train(&mut mlp, &d);
    }
}

//! Cross-validated topology search (paper Section 4.2).

use crate::batch::{mse_batch_with, BatchScratch};
use crate::scratch::Scratch;
use crate::{AnnError, Dataset, Mlp, Topology, TrainParams, Trainer};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Configuration of the topology search space and selection policy.
///
/// The paper restricts the search "to neural networks with at most two
/// hidden layers" with "the number of neurons per hidden layer \[limited\]
/// to powers of two up to 32", yielding 30 candidate topologies (5 single
/// hidden layer + 25 two hidden layers). Both limits are user options, as in
/// the paper ("compilation options and can be specified by the user").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Maximum number of hidden layers (paper default: 2).
    pub max_hidden_layers: usize,
    /// Largest allowed hidden-layer size; candidates use powers of two from
    /// 2 up to this value (paper default: 32).
    pub max_hidden_neurons: usize,
    /// Fraction of observed data used for training; the rest tests
    /// generalization (paper: 0.7).
    pub train_fraction: f64,
    /// Root seed for every random choice the search makes: the train/test
    /// split, each candidate's weight initialization, and each candidate's
    /// per-epoch shuffle order. Child seeds are derived per consumer with
    /// [`crate::seed::mix`], keyed by the candidate's *topology* (not its
    /// position in the candidate list), so results are independent of
    /// enumeration order, hardware filtering, and thread count.
    pub seed: u64,
    /// Backpropagation hyperparameters applied to every candidate.
    pub train: TrainParams,
    /// Candidates whose test MSE is within this multiplicative slack of the
    /// best are considered accuracy ties, broken by lowest NPU latency
    /// ("prioritizing accuracy").
    pub accuracy_slack: f64,
    /// Absolute MSE window that also counts as a tie (see
    /// `accuracy_slack`); keeps topology choice latency-driven when every
    /// candidate is already near-perfect. Default 0.
    pub accuracy_abs_slack: f64,
    /// Optional per-candidate training compute budget in floating-point
    /// operations. When set, each candidate's epoch count is
    /// `budget / (samples × weights × 4)` clamped to `[30, train.epochs]`,
    /// so large candidates train fewer epochs instead of dominating
    /// compilation time. `None` trains every candidate for `train.epochs`.
    pub epoch_flops_budget: Option<u64>,
    /// Number of worker threads for parallel candidate training ("the
    /// candidate topologies can be trained in parallel"). 0 means one
    /// thread per available CPU.
    pub threads: usize,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            max_hidden_layers: 2,
            max_hidden_neurons: 32,
            train_fraction: 0.7,
            seed: 0xdead_beef,
            train: TrainParams::default(),
            accuracy_slack: 1.05,
            accuracy_abs_slack: 0.0,
            epoch_flops_budget: None,
            threads: 0,
        }
    }
}

/// One evaluated candidate from the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyCandidate {
    /// The candidate's layer structure.
    pub topology: Topology,
    /// Mean squared error on the held-out test split.
    pub test_mse: f64,
    /// Mean squared error on the training split.
    pub train_mse: f64,
    /// Estimated NPU evaluation latency in cycles (from the caller's cost
    /// model).
    pub npu_latency: u64,
}

/// The outcome of a full topology search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The selected network's candidate record.
    pub best: TopologyCandidate,
    /// The trained network for the selected topology.
    pub mlp: Mlp,
    /// Every candidate evaluated, sorted by test MSE ascending.
    pub all_candidates: Vec<TopologyCandidate>,
}

impl SearchOutcome {
    /// Exports the search's summary into `registry` under `prefix`
    /// (e.g. `ann.search`): the candidate count, the selected network's
    /// errors and latency, and per-candidate MSE/latency histograms.
    pub fn export_metrics(&self, registry: &mut telemetry::MetricsRegistry, prefix: &str) {
        registry.add(
            &format!("{prefix}.candidates"),
            self.all_candidates.len() as u64,
        );
        registry.set_gauge(&format!("{prefix}.best_test_mse"), self.best.test_mse);
        registry.set_gauge(&format!("{prefix}.best_train_mse"), self.best.train_mse);
        registry.set_gauge(
            &format!("{prefix}.best_npu_latency"),
            self.best.npu_latency as f64,
        );
        for candidate in &self.all_candidates {
            registry.observe(&format!("{prefix}.test_mse"), candidate.test_mse);
            registry.observe(
                &format!("{prefix}.npu_latency"),
                candidate.npu_latency as f64,
            );
        }
    }
}

/// Salt for the train/test split seed (see [`SearchParams::seed`]).
const SPLIT_SALT: u64 = 1;
/// Salt for per-candidate weight-initialization seeds.
const INIT_SALT: u64 = 2;
/// Salt for per-candidate epoch-shuffle seeds.
const SHUFFLE_SALT: u64 = 3;

/// Enumerates, trains, and ranks candidate topologies.
#[derive(Debug, Clone)]
pub struct TopologySearch {
    params: SearchParams,
}

impl TopologySearch {
    /// Creates a search with the given parameters.
    pub fn new(params: SearchParams) -> Self {
        TopologySearch { params }
    }

    /// The search parameters.
    pub fn params(&self) -> &SearchParams {
        &self.params
    }

    /// The hidden-layer sizes the search considers (powers of two).
    pub fn hidden_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut s = 2usize;
        while s <= self.params.max_hidden_neurons {
            sizes.push(s);
            s *= 2;
        }
        sizes
    }

    /// Enumerates every candidate topology for a region with the given
    /// input/output counts.
    pub fn candidate_topologies(&self, n_inputs: usize, n_outputs: usize) -> Vec<Topology> {
        let sizes = self.hidden_sizes();
        let mut out = Vec::new();
        if self.params.max_hidden_layers == 0 {
            out.push(Topology::new(vec![n_inputs, n_outputs]).expect("nonzero layers"));
            return out;
        }
        for &h1 in &sizes {
            out.push(Topology::new(vec![n_inputs, h1, n_outputs]).expect("nonzero layers"));
        }
        if self.params.max_hidden_layers >= 2 {
            for &h1 in &sizes {
                for &h2 in &sizes {
                    out.push(
                        Topology::new(vec![n_inputs, h1, h2, n_outputs]).expect("nonzero layers"),
                    );
                }
            }
        }
        out
    }

    /// Runs the full search: split the data 70/30, train every candidate on
    /// the training split, score on the test split, and select the most
    /// accurate candidate (ties within `accuracy_slack` broken by lowest
    /// `npu_latency`).
    ///
    /// `npu_latency` is a caller-supplied cost model (the NPU crate provides
    /// one); keeping it a callback avoids a dependency cycle and lets tests
    /// use synthetic costs. Returning `None` excludes a candidate — e.g.
    /// when it does not fit the target NPU's structures — before any
    /// training effort is spent on it.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::EmptyDataset`] if `data` is empty, and
    /// [`AnnError::InvalidTopology`] if the cost model excludes every
    /// candidate.
    pub fn run(
        &self,
        data: &Dataset,
        npu_latency: &(dyn Fn(&Topology) -> Option<u64> + Sync),
    ) -> Result<SearchOutcome, AnnError> {
        let candidates = self.candidate_topologies(data.n_inputs(), data.n_outputs());
        self.run_with_candidates(data, candidates, npu_latency)
    }

    /// Like [`run`](Self::run) but over an explicit candidate list (e.g.
    /// a single known-good topology, skipping enumeration).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_candidates(
        &self,
        data: &Dataset,
        candidates: Vec<Topology>,
        npu_latency: &(dyn Fn(&Topology) -> Option<u64> + Sync),
    ) -> Result<SearchOutcome, AnnError> {
        if data.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        let (train_set, test_set) = data.split(
            self.params.train_fraction,
            crate::seed::mix(self.params.seed, SPLIT_SALT),
        );
        // With very small datasets the 30% split can round to zero samples;
        // fall back to testing on the training data.
        let test_ref = if test_set.is_empty() {
            &train_set
        } else {
            &test_set
        };

        // Exclude candidates the target hardware cannot host before
        // spending any training time on them.
        let topologies: Vec<(Topology, u64)> = candidates
            .into_iter()
            .filter_map(|t| npu_latency(&t).map(|lat| (t, lat)))
            .collect();
        if topologies.is_empty() {
            return Err(AnnError::InvalidTopology(
                "no candidate topology fits the target npu".into(),
            ));
        }
        let results: Mutex<Vec<(TopologyCandidate, Mlp)>> =
            Mutex::new(Vec::with_capacity(topologies.len()));
        let next: Mutex<usize> = Mutex::new(0);

        let n_threads = if self.params.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(topologies.len().max(1))
        } else {
            self.params.threads
        };

        crossbeam::scope(|scope| {
            for _ in 0..n_threads {
                // One scalar scratch and one batch scratch per worker,
                // reused across every candidate it trains: the
                // steady-state training loop never allocates, and all
                // full-dataset MSE evaluations ride the SIMD kernel
                // (bit-exact with the scalar path).
                scope.spawn(|_| {
                    let mut scratch = Scratch::new();
                    let mut batch = BatchScratch::new();
                    loop {
                        let idx = {
                            let mut guard = next.lock();
                            let idx = *guard;
                            if idx >= topologies.len() {
                                return;
                            }
                            *guard += 1;
                            idx
                        };
                        let (topology, latency) = topologies[idx].clone();
                        // Seeds are keyed by topology content, not list index,
                        // so the outcome is identical whatever subset of
                        // candidates the hardware filter admits and however
                        // work is distributed over threads.
                        let topo_label = topology.to_string();
                        let init_seed = crate::seed::mix_str(
                            crate::seed::mix(self.params.seed, INIT_SALT),
                            &topo_label,
                        );
                        let mut mlp = Mlp::seeded(topology.clone(), init_seed);
                        let mut train_params = self.params.train;
                        train_params.shuffle_seed = crate::seed::mix_str(
                            crate::seed::mix(self.params.seed, SHUFFLE_SALT),
                            &topo_label,
                        );
                        if let Some(budget) = self.params.epoch_flops_budget {
                            let per_epoch =
                                (train_set.len() * topology.weight_count() * 4).max(1) as u64;
                            train_params.epochs = ((budget / per_epoch) as usize)
                                .clamp(30, self.params.train.epochs.max(30));
                        }
                        let report = Trainer::new(train_params).train_with_scratches(
                            &mut mlp,
                            &train_set,
                            &mut scratch,
                            &mut batch,
                        );
                        let candidate = TopologyCandidate {
                            npu_latency: latency,
                            test_mse: mse_batch_with(&mlp, test_ref, &mut batch),
                            train_mse: report.final_mse,
                            topology,
                        };
                        if telemetry::enabled(telemetry::Level::Debug) {
                            telemetry::emit(telemetry::Level::Debug, "ann::search", || {
                                telemetry::EventKind::CandidateTrained {
                                    topology: candidate.topology.to_string(),
                                    test_mse: candidate.test_mse,
                                    train_mse: candidate.train_mse,
                                    epochs: report.epochs_run as u64,
                                    npu_latency: candidate.npu_latency,
                                }
                            });
                        }
                        results.lock().push((candidate, mlp));
                    }
                });
            }
        })
        .expect("search worker panicked");

        let mut scored = results.into_inner();
        scored.sort_by(|a, b| {
            a.0.test_mse
                .total_cmp(&b.0.test_mse)
                .then(a.0.npu_latency.cmp(&b.0.npu_latency))
        });
        let best_mse = scored[0].0.test_mse;
        // A candidate ties with the best when its MSE is within the
        // relative slack *or* within the absolute window — the absolute
        // term lets already-tiny MSEs (where relative differences are
        // noise) resolve toward cheaper topologies without letting
        // hard-to-learn regions trade away real accuracy.
        let threshold = best_mse
            + (best_mse * (self.params.accuracy_slack - 1.0)).max(self.params.accuracy_abs_slack);
        let (best_idx, _) = scored
            .iter()
            .enumerate()
            .filter(|(_, (c, _))| c.test_mse <= threshold)
            .min_by_key(|(_, (c, _))| c.npu_latency)
            .expect("at least one candidate");
        let (best, mlp) = scored[best_idx].clone();
        let all_candidates = scored.into_iter().map(|(c, _)| c).collect();
        Ok(SearchOutcome {
            best,
            mlp,
            all_candidates,
        })
    }
}

impl Default for TopologySearch {
    fn default() -> Self {
        TopologySearch::new(SearchParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_search_space_has_30_topologies() {
        let search = TopologySearch::default();
        assert_eq!(search.hidden_sizes(), vec![2, 4, 8, 16, 32]);
        assert_eq!(search.candidate_topologies(9, 1).len(), 30);
    }

    #[test]
    fn restricted_search_space() {
        let params = SearchParams {
            max_hidden_layers: 1,
            max_hidden_neurons: 8,
            ..SearchParams::default()
        };
        let search = TopologySearch::new(params);
        assert_eq!(search.candidate_topologies(4, 2).len(), 3); // 2, 4, 8
    }

    #[test]
    fn zero_hidden_layers_gives_direct_topology() {
        let params = SearchParams {
            max_hidden_layers: 0,
            ..SearchParams::default()
        };
        let tops = TopologySearch::new(params).candidate_topologies(3, 2);
        assert_eq!(tops, vec![Topology::new(vec![3, 2]).unwrap()]);
    }

    #[test]
    fn search_rejects_empty_data() {
        let search = TopologySearch::default();
        let err = search.run(&Dataset::new(1, 1), &|_| Some(1)).unwrap_err();
        assert_eq!(err, AnnError::EmptyDataset);
    }

    fn linear_data() -> Dataset {
        let mut d = Dataset::new(1, 1);
        for i in 0..120 {
            let x = i as f32 / 119.0;
            d.push(&[x], &[0.2 + 0.6 * x]).unwrap();
        }
        d
    }

    fn fast_params() -> SearchParams {
        SearchParams {
            max_hidden_layers: 1,
            max_hidden_neurons: 4,
            train: TrainParams {
                epochs: 60,
                learning_rate: 0.3,
                ..TrainParams::default()
            },
            ..SearchParams::default()
        }
    }

    #[test]
    fn search_learns_a_simple_function() {
        let outcome = TopologySearch::new(fast_params())
            .run(&linear_data(), &|t| Some(t.weight_count() as u64))
            .unwrap();
        assert!(outcome.best.test_mse < 0.01, "{:?}", outcome.best);
        assert_eq!(outcome.all_candidates.len(), 2);
        let y = outcome.mlp.feed_forward(&[0.5]);
        assert!((y[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn ties_break_toward_lower_latency() {
        // With generous slack, the cheaper topology must win even if it is
        // marginally less accurate.
        let params = SearchParams {
            accuracy_slack: 1e9,
            ..fast_params()
        };
        let outcome = TopologySearch::new(params)
            .run(&linear_data(), &|t| Some(t.weight_count() as u64))
            .unwrap();
        let min_latency = outcome
            .all_candidates
            .iter()
            .map(|c| c.npu_latency)
            .min()
            .unwrap();
        assert_eq!(outcome.best.npu_latency, min_latency);
    }

    #[test]
    fn seeding_is_independent_of_candidate_filtering() {
        // The same topology must train to the same network whether or not
        // other candidates were filtered out before it (seeds are keyed by
        // topology content, not list position).
        let data = linear_data();
        let all = TopologySearch::new(fast_params())
            .run(&data, &|t| Some(t.weight_count() as u64))
            .unwrap();
        let only_h4 = TopologySearch::new(fast_params())
            .run(&data, &|t| {
                (t.layers() == [1, 4, 1]).then(|| t.weight_count() as u64)
            })
            .unwrap();
        let h4_in_all = all
            .all_candidates
            .iter()
            .find(|c| c.topology.layers() == [1, 4, 1])
            .expect("1-4-1 candidate trained");
        assert_eq!(h4_in_all.test_mse, only_h4.best.test_mse);
        assert_eq!(h4_in_all.train_mse, only_h4.best.train_mse);
    }

    #[test]
    fn distinct_root_seeds_change_the_outcome_deterministically() {
        let data = linear_data();
        let a = TopologySearch::new(SearchParams {
            seed: 1,
            ..fast_params()
        })
        .run(&data, &|_| Some(1))
        .unwrap();
        let a2 = TopologySearch::new(SearchParams {
            seed: 1,
            ..fast_params()
        })
        .run(&data, &|_| Some(1))
        .unwrap();
        let b = TopologySearch::new(SearchParams {
            seed: 2,
            ..fast_params()
        })
        .run(&data, &|_| Some(1))
        .unwrap();
        assert_eq!(a.mlp, a2.mlp);
        assert_ne!(a.mlp, b.mlp, "root seed must reach weight init");
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let data = linear_data();
        let mut single = fast_params();
        single.threads = 1;
        let mut multi = fast_params();
        multi.threads = 4;
        let a = TopologySearch::new(single)
            .run(&data, &|_| Some(1))
            .unwrap();
        let b = TopologySearch::new(multi).run(&data, &|_| Some(1)).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.mlp, b.mlp);
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced by the `ann` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnnError {
    /// A topology had fewer than two layers or a zero-sized layer.
    InvalidTopology(String),
    /// A sample's dimensionality does not match the dataset or network.
    DimensionMismatch {
        /// Number of values expected.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// An operation that requires data was given an empty dataset.
    EmptyDataset,
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::InvalidTopology(why) => write!(f, "invalid topology: {why}"),
            AnnError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            AnnError::EmptyDataset => write!(f, "dataset contains no samples"),
        }
    }
}

impl Error for AnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = AnnError::DimensionMismatch {
            expected: 3,
            actual: 5,
        };
        assert_eq!(err.to_string(), "dimension mismatch: expected 3, got 5");
        assert!(AnnError::EmptyDataset.to_string().starts_with("dataset"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnnError>();
    }
}

//! Observed input–output pairs collected from a candidate code region.

use crate::AnnError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A set of input–output samples with fixed dimensionality.
///
/// The Parrot transformation's code-observation phase produces one of these
/// per candidate region: every execution of the instrumented function logs
/// its inputs and outputs (paper Section 4.1).
///
/// # Example
///
/// ```
/// let mut data = ann::Dataset::new(2, 1);
/// data.push(&[0.0, 1.0], &[1.0])?;
/// data.push(&[2.0, 3.0], &[5.0])?;
/// assert_eq!(data.len(), 2);
/// let (train, test) = data.split(0.5, 7);
/// assert_eq!(train.len() + test.len(), 2);
/// # Ok::<(), ann::AnnError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    n_inputs: usize,
    n_outputs: usize,
    inputs: Vec<f32>,
    outputs: Vec<f32>,
}

impl Dataset {
    /// Creates an empty dataset for samples with the given dimensions.
    pub fn new(n_inputs: usize, n_outputs: usize) -> Self {
        Dataset {
            n_inputs,
            n_outputs,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Input dimensionality of every sample.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Output dimensionality of every sample.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len().checked_div(self.n_inputs).unwrap_or(0)
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Appends one sample.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when the slice lengths do not
    /// match the dataset's dimensions.
    pub fn push(&mut self, input: &[f32], output: &[f32]) -> Result<(), AnnError> {
        if input.len() != self.n_inputs {
            return Err(AnnError::DimensionMismatch {
                expected: self.n_inputs,
                actual: input.len(),
            });
        }
        if output.len() != self.n_outputs {
            return Err(AnnError::DimensionMismatch {
                expected: self.n_outputs,
                actual: output.len(),
            });
        }
        self.inputs.extend_from_slice(input);
        self.outputs.extend_from_slice(output);
        Ok(())
    }

    /// The `i`-th input vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn input(&self, i: usize) -> &[f32] {
        &self.inputs[i * self.n_inputs..(i + 1) * self.n_inputs]
    }

    /// The `i`-th output vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn output(&self, i: usize) -> &[f32] {
        &self.outputs[i * self.n_outputs..(i + 1) * self.n_outputs]
    }

    /// Iterates over `(input, output)` sample pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], &[f32])> {
        (0..self.len()).map(move |i| (self.input(i), self.output(i)))
    }

    /// Splits the samples into two datasets, the first receiving
    /// `fraction` of them, after a deterministic seeded shuffle.
    ///
    /// The paper's compiler uses a 70 % / 30 % train/test split for
    /// cross-validated topology selection (Section 4.2).
    pub fn split(&self, fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let cut = ((self.len() as f64) * fraction).round() as usize;
        let cut = cut.min(self.len());
        let mut first = Dataset::new(self.n_inputs, self.n_outputs);
        let mut second = Dataset::new(self.n_inputs, self.n_outputs);
        for (rank, &i) in order.iter().enumerate() {
            let target = if rank < cut { &mut first } else { &mut second };
            target
                .push(self.input(i), self.output(i))
                .expect("same dimensions");
        }
        (first, second)
    }

    /// Returns a copy truncated to at most `max_samples` samples (keeping a
    /// deterministic pseudo-random subset). Used to cap training cost on
    /// very large observation logs.
    pub fn subsample(&self, max_samples: usize, seed: u64) -> Dataset {
        if self.len() <= max_samples {
            return self.clone();
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut out = Dataset::new(self.n_inputs, self.n_outputs);
        for &i in order.iter().take(max_samples) {
            out.push(self.input(i), self.output(i)).expect("same dims");
        }
        out
    }

    /// Per-dimension `(min, max)` over inputs. Empty dataset yields `None`.
    pub fn input_ranges(&self) -> Option<Vec<(f32, f32)>> {
        Self::ranges(&self.inputs, self.n_inputs)
    }

    /// Per-dimension `(min, max)` over outputs. Empty dataset yields `None`.
    pub fn output_ranges(&self) -> Option<Vec<(f32, f32)>> {
        Self::ranges(&self.outputs, self.n_outputs)
    }

    fn ranges(flat: &[f32], dims: usize) -> Option<Vec<(f32, f32)>> {
        if flat.is_empty() || dims == 0 {
            return None;
        }
        let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); dims];
        for chunk in flat.chunks_exact(dims) {
            for (r, &v) in ranges.iter_mut().zip(chunk) {
                r.0 = r.0.min(v);
                r.1 = r.1.max(v);
            }
        }
        Some(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Dataset {
        let mut d = Dataset::new(2, 1);
        for i in 0..10 {
            let x = i as f32;
            d.push(&[x, -x], &[2.0 * x]).unwrap();
        }
        d
    }

    #[test]
    fn push_rejects_wrong_dims() {
        let mut d = Dataset::new(2, 1);
        assert!(matches!(
            d.push(&[1.0], &[0.0]),
            Err(AnnError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
        assert!(d.push(&[1.0, 2.0], &[]).is_err());
        assert!(d.is_empty());
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = sample_data();
        let (train, test) = d.split(0.7, 123);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Every original output value appears exactly once across the parts.
        let mut seen: Vec<f32> = train.iter().chain(test.iter()).map(|(_, o)| o[0]).collect();
        seen.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..10).map(|i| 2.0 * i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = sample_data();
        let (a, _) = d.split(0.5, 9);
        let (b, _) = d.split(0.5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_track_min_max() {
        let d = sample_data();
        let inr = d.input_ranges().unwrap();
        assert_eq!(inr[0], (0.0, 9.0));
        assert_eq!(inr[1], (-9.0, 0.0));
        let outr = d.output_ranges().unwrap();
        assert_eq!(outr[0], (0.0, 18.0));
    }

    #[test]
    fn subsample_caps_len() {
        let d = sample_data();
        assert_eq!(d.subsample(3, 1).len(), 3);
        assert_eq!(d.subsample(100, 1).len(), 10);
    }

    #[test]
    fn empty_dataset_has_no_ranges() {
        let d = Dataset::new(3, 2);
        assert!(d.input_ranges().is_none());
        assert!(d.output_ranges().is_none());
    }
}

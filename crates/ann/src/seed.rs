//! Deterministic seed derivation.
//!
//! Every random choice in training and topology search must trace back to
//! one explicit root seed so that a run is reproducible bit-for-bit
//! regardless of thread count or candidate filtering order. Derivation
//! uses SplitMix64 finalization — cheap, well-mixed, and stable across
//! platforms — over the root seed and a salt identifying the consumer.

/// SplitMix64 finalizer: a bijective avalanche over one 64-bit word.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a child seed from `root` and a numeric `salt`.
///
/// Distinct salts give statistically independent streams; the same
/// `(root, salt)` pair always yields the same seed.
pub fn mix(root: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(root) ^ splitmix64(salt.wrapping_add(0x243f_6a88_85a3_08d3)))
}

/// Derives a child seed from `root` and a string label (e.g. a topology's
/// display form or a pipeline stage name).
pub fn mix_str(root: u64, label: &str) -> u64 {
    // FNV-1a over the label bytes, then mixed with the root.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(root, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_salt_sensitive() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
        assert_ne!(mix(0, 0), 0);
    }

    #[test]
    fn mix_str_distinguishes_labels() {
        assert_eq!(mix_str(7, "1-4-1"), mix_str(7, "1-4-1"));
        assert_ne!(mix_str(7, "1-4-1"), mix_str(7, "1-8-1"));
        assert_ne!(mix_str(7, "split"), mix_str(7, "shuffle"));
    }
}

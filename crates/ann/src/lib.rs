//! Multilayer-perceptron learning substrate for the Parrot transformation.
//!
//! This crate implements the learning half of *Neural Acceleration for
//! General-Purpose Approximate Programs* (MICRO 2012): sigmoid multilayer
//! perceptrons, plain backpropagation training, min/max input-output
//! normalization, and the cross-validated topology search the paper's
//! compiler uses to pick a network that mimics a candidate code region.
//!
//! The paper links against the FANN C library for its software-only
//! comparison (Figure 9); [`SoftwareNnCost`] provides the equivalent
//! operation-count model for that experiment.
//!
//! # Example
//!
//! ```
//! use ann::{Dataset, Mlp, Topology, Trainer, TrainParams};
//!
//! // Learn y = x^2 on [0, 1].
//! let mut data = Dataset::new(1, 1);
//! for i in 0..200 {
//!     let x = i as f32 / 199.0;
//!     data.push(&[x], &[x * x]).unwrap();
//! }
//! let topology = Topology::new(vec![1, 4, 1]).unwrap();
//! let mut mlp = Mlp::seeded(topology, 42);
//! let params = TrainParams { epochs: 600, learning_rate: 0.3, ..TrainParams::default() };
//! Trainer::new(params).train(&mut mlp, &data);
//! let out = mlp.feed_forward(&[0.5]);
//! assert!((out[0] - 0.25).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod batch;
mod dataset;
mod error;
mod mlp;
mod normalize;
mod quant;
mod scratch;
mod search;
pub mod seed;
mod software_cost;
mod topology;
mod train;

pub use activation::{sigmoid, sigmoid_derivative, SigmoidLut};
pub use batch::{mse_batch_with, BatchScratch, LANES};
pub use dataset::Dataset;
pub use error::AnnError;
pub use mlp::Mlp;
pub use normalize::Normalizer;
pub use quant::{FixedSigmoidLut, QFormat, QuantScratch, QuantTrace, QuantizedMlp, MAX_TOTAL_BITS};
pub use scratch::{mse_with, Scratch};
pub use search::{SearchOutcome, SearchParams, TopologyCandidate, TopologySearch};
pub use software_cost::SoftwareNnCost;
pub use topology::Topology;
pub use train::{mse, TrainParams, TrainReport, Trainer};

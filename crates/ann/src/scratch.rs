//! Reusable training scratch buffers: allocation-free forward and fused
//! forward+backward kernels.
//!
//! The topology search trains 30 candidate networks by per-sample SGD, so
//! the inner kernels run hundreds of millions of times per sweep. The naive
//! kernels ([`Mlp::activations`] and the original per-weight update loop)
//! allocate a `Vec<Vec<f32>>` per sample; [`Scratch`] owns flat activation,
//! delta, and velocity buffers sized once per topology and reused across
//! samples, epochs, and candidates.
//!
//! **Bit-exactness contract:** every kernel here performs the identical
//! floating-point operations in the identical order as the naive reference
//! (`sum` starts from the bias, inputs accumulate in index order, hidden
//! deltas accumulate over the next layer in neuron order, and velocity
//! updates apply `v = µ·v − lr·δ·a; w += v` weight-then-bias per row).
//! Trained weights must be byte-identical to the pre-scratch implementation
//! — the harness artifact cache and every golden test depend on it. The
//! `#[cfg(test)]` module below keeps the naive kernels alive as the
//! reference the proptests compare against.

use crate::{sigmoid, sigmoid_derivative, Mlp, SigmoidLut, Topology};

/// Flat, reusable buffers for forward evaluation and backpropagation.
///
/// A `Scratch` binds lazily to a topology on first use and rebinds (cheaply
/// when shapes match) whenever it is handed a network of a different shape,
/// so one instance per worker thread serves an entire topology search.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Layer sizes this scratch is currently bound to (empty = unbound).
    layers: Vec<usize>,
    /// All layers' activations, input layer first, concatenated.
    acts: Vec<f32>,
    /// `acts` offsets: layer `l` occupies `acts[act_off[l]..act_off[l+1]]`.
    act_off: Vec<usize>,
    /// Per-neuron `dE/dnet` for every computing layer, concatenated.
    deltas: Vec<f32>,
    /// `deltas` offsets per computing layer (0 = first hidden).
    delta_off: Vec<usize>,
    /// Momentum state, one entry per weight, concatenated per layer matrix.
    velocity: Vec<f32>,
    /// `velocity` offsets per weight matrix.
    vel_off: Vec<usize>,
}

impl Scratch {
    /// Creates an unbound scratch; it sizes itself on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Creates a scratch pre-sized for `topology`.
    pub fn for_topology(topology: &Topology) -> Self {
        let mut s = Scratch::new();
        s.bind(topology);
        s
    }

    /// (Re)binds the buffers to `topology`, zeroing the velocity state.
    /// A no-op shape-wise when already bound to the same layer sizes, but
    /// the velocity reset always happens — each training run starts from
    /// zero momentum, exactly like a freshly allocated velocity vector.
    pub fn bind(&mut self, topology: &Topology) {
        if self.layers != topology.layers() {
            self.layers.clear();
            self.layers.extend_from_slice(topology.layers());
            self.act_off.clear();
            self.act_off.push(0);
            for &n in &self.layers {
                self.act_off.push(self.act_off.last().unwrap() + n);
            }
            self.delta_off.clear();
            self.delta_off.push(0);
            for &n in &self.layers[1..] {
                self.delta_off.push(self.delta_off.last().unwrap() + n);
            }
            self.vel_off.clear();
            self.vel_off.push(0);
            for w in self.layers.windows(2) {
                self.vel_off
                    .push(self.vel_off.last().unwrap() + (w[0] + 1) * w[1]);
            }
            self.acts.resize(*self.act_off.last().unwrap(), 0.0);
            self.deltas.resize(*self.delta_off.last().unwrap(), 0.0);
            self.velocity.resize(*self.vel_off.last().unwrap(), 0.0);
        }
        self.velocity.fill(0.0);
    }

    /// Forward pass storing every layer's activations, returning the output
    /// layer. Performs the same arithmetic as [`Mlp::feed_forward`] /
    /// [`Mlp::activations`] with zero allocation.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the network's input layer.
    pub fn forward(&mut self, mlp: &Mlp, input: &[f32]) -> &[f32] {
        if self.layers != mlp.topology().layers() {
            self.bind(mlp.topology());
        }
        assert_eq!(input.len(), self.layers[0], "input vector size mismatch");
        self.forward_bound(mlp, input)
    }

    /// [`forward`](Self::forward) with the NPU's sigmoid LUT: the same
    /// arithmetic as [`Mlp::feed_forward_lut`] with zero allocation.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the network's input layer.
    pub fn forward_lut(&mut self, mlp: &Mlp, input: &[f32], lut: &SigmoidLut) -> &[f32] {
        if self.layers != mlp.topology().layers() {
            self.bind(mlp.topology());
        }
        assert_eq!(input.len(), self.layers[0], "input vector size mismatch");
        self.forward_bound_with(mlp, input, |x| lut.eval(x))
    }

    /// [`forward`](Self::forward) minus the per-call shape checks: callers
    /// (the training and MSE loops) validate once per dataset, not once
    /// per sample.
    fn forward_bound(&mut self, mlp: &Mlp, input: &[f32]) -> &[f32] {
        self.forward_bound_with(mlp, input, sigmoid)
    }

    fn forward_bound_with(&mut self, mlp: &Mlp, input: &[f32], act: impl Fn(f32) -> f32) -> &[f32] {
        debug_assert_eq!(self.layers, mlp.topology().layers());
        debug_assert_eq!(input.len(), self.layers[0]);
        self.acts[..input.len()].copy_from_slice(input);
        for (l, matrix) in mlp.weight_matrices().iter().enumerate() {
            let n_in = self.layers[l];
            let n_out = self.layers[l + 1];
            // The next layer's slot starts exactly where the current one
            // ends, so one split gives disjoint read/write views.
            let (prev_all, next_all) = self.acts.split_at_mut(self.act_off[l + 1]);
            let prev = &prev_all[self.act_off[l]..];
            let next = &mut next_all[..n_out];
            for (row, out) in matrix.chunks_exact(n_in + 1).zip(next.iter_mut()) {
                let (bias, ws) = row.split_last().expect("row holds bias");
                let mut sum = *bias;
                for (w, x) in ws.iter().zip(prev) {
                    sum += w * x;
                }
                *out = act(sum);
            }
        }
        &self.acts[self.act_off[self.layers.len() - 1]..]
    }

    /// One fused forward+backward SGD step with momentum for a single
    /// sample: the scratch's velocity state carries across calls.
    ///
    /// Row-slice weight updates replace the naive per-weight indexing; the
    /// arithmetic order is identical to the retained reference.
    pub(crate) fn backprop_one(
        &mut self,
        mlp: &mut Mlp,
        input: &[f32],
        target: &[f32],
        lr: f32,
        mu: f32,
    ) {
        if self.layers != mlp.topology().layers() {
            self.bind(mlp.topology());
        }
        assert_eq!(input.len(), self.layers[0], "input vector size mismatch");
        self.backprop_one_bound(mlp, input, target, lr, mu);
    }

    /// [`backprop_one`](Self::backprop_one) minus the per-call shape
    /// checks; [`crate::Trainer::train_with`] validates once up front.
    pub(crate) fn backprop_one_bound(
        &mut self,
        mlp: &mut Mlp,
        input: &[f32],
        target: &[f32],
        lr: f32,
        mu: f32,
    ) {
        self.forward_bound(mlp, input);
        let n_layers = self.layers.len();

        // Output layer delta: (y - t) * y * (1 - y).
        let out_acts = &self.acts[self.act_off[n_layers - 1]..];
        let out_deltas = &mut self.deltas[self.delta_off[n_layers - 2]..];
        for ((d, &y), &t) in out_deltas.iter_mut().zip(out_acts).zip(target) {
            *d = (y - t) * sigmoid_derivative(y);
        }

        // Hidden layers, walking backwards. Computing layer `l - 1` feeds
        // computing layer `l`; splitting `deltas` at the boundary yields
        // the current (write) and next (read) slices disjointly.
        for l in (1..n_layers - 1).rev() {
            let n_here = self.layers[l];
            let n_next = self.layers[l + 1];
            let matrix = &mlp.weight_matrices()[l];
            let acts_here = &self.acts[self.act_off[l]..self.act_off[l + 1]];
            let (cur_all, next_all) = self.deltas.split_at_mut(self.delta_off[l]);
            let cur = &mut cur_all[self.delta_off[l - 1]..];
            let next_delta = &next_all[..n_next];
            for (j, d) in cur.iter_mut().enumerate().take(n_here) {
                let mut sum = 0.0;
                // Row k holds the weights into neuron k of layer l + 1;
                // accumulation stays in k order.
                for (row, &nd) in matrix.chunks_exact(n_here + 1).zip(next_delta) {
                    sum += row[j] * nd;
                }
                *d = sum * sigmoid_derivative(acts_here[j]);
            }
        }

        // Apply updates with momentum, one contiguous row per neuron:
        //   v = momentum * v - lr * delta * activation; w += v.
        for (l, matrix) in mlp.weight_matrices_mut().iter_mut().enumerate() {
            let n_in = self.layers[l];
            let acts_here = &self.acts[self.act_off[l]..self.act_off[l + 1]];
            let deltas_here = &self.deltas[self.delta_off[l]..self.delta_off[l + 1]];
            let vel = &mut self.velocity[self.vel_off[l]..self.vel_off[l + 1]];
            let wrows = matrix.chunks_exact_mut(n_in + 1);
            let vrows = vel.chunks_exact_mut(n_in + 1);
            for ((wrow, vrow), &d) in wrows.zip(vrows).zip(deltas_here) {
                let (wb, ws) = wrow.split_last_mut().expect("row holds bias");
                let (vb, vs) = vrow.split_last_mut().expect("row holds bias");
                for ((v, w), &a) in vs.iter_mut().zip(ws.iter_mut()).zip(acts_here) {
                    *v = mu * *v - lr * d * a;
                    *w += *v;
                }
                *vb = mu * *vb - lr * d;
                *wb += *vb; // bias
            }
        }
    }
}

/// Mean squared error of `mlp` over `data` using `scratch` for the forward
/// passes (allocation-free; bit-identical to [`crate::mse`]).
pub fn mse_with(mlp: &Mlp, data: &crate::Dataset, scratch: &mut Scratch) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    // Validate once per dataset; the per-sample loop skips the checks.
    // NOTE: this must not call `bind` when already bound — `bind` zeroes
    // the momentum state, and the trainer samples MSE mid-training.
    if scratch.layers != mlp.topology().layers() {
        scratch.bind(mlp.topology());
    }
    assert_eq!(
        data.n_inputs(),
        mlp.topology().inputs(),
        "dataset input dims mismatch network"
    );
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (input, target) in data.iter() {
        let out = scratch.forward_bound(mlp, input);
        for (&y, &t) in out.iter().zip(target) {
            let e = (y - t) as f64;
            total += e * e;
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Topology};
    use proptest::prelude::*;

    /// The pre-scratch backpropagation step, kept verbatim as the bit-exact
    /// reference ([`Mlp::activations`] is the retained naive forward).
    fn naive_backprop_one(
        mlp: &mut Mlp,
        input: &[f32],
        target: &[f32],
        velocity: &mut [Vec<f32>],
        lr: f32,
        mu: f32,
    ) {
        let acts = mlp.activations(input);
        let n_layers = acts.len();
        let mut deltas: Vec<Vec<f32>> = Vec::with_capacity(n_layers - 1);

        let out = &acts[n_layers - 1];
        let out_delta: Vec<f32> = out
            .iter()
            .zip(target)
            .map(|(&y, &t)| (y - t) * sigmoid_derivative(y))
            .collect();
        deltas.push(out_delta);

        for l in (1..n_layers - 1).rev() {
            let next_delta = deltas.last().expect("output delta pushed first");
            let n_here = acts[l].len();
            let n_next = acts[l + 1].len();
            let mut delta = vec![0.0f32; n_here];
            for (j, d) in delta.iter_mut().enumerate() {
                let mut sum = 0.0;
                #[allow(clippy::needless_range_loop)]
                for k in 0..n_next {
                    sum += mlp.weight(l, k, j) * next_delta[k];
                }
                *d = sum * sigmoid_derivative(acts[l][j]);
            }
            deltas.push(delta);
        }
        deltas.reverse();

        for l in 0..n_layers - 1 {
            let n_in = acts[l].len();
            for (neuron, &d) in deltas[l].iter().enumerate() {
                let row = neuron * (n_in + 1);
                for (src, &a) in acts[l].iter().enumerate() {
                    let v = &mut velocity[l][row + src];
                    *v = mu * *v - lr * d * a;
                    *mlp.weight_mut(l, neuron, src) += *v;
                }
                let v = &mut velocity[l][row + n_in];
                *v = mu * *v - lr * d;
                *mlp.weight_mut(l, neuron, n_in) += *v;
            }
        }
    }

    /// The pre-scratch MSE, kept as the bit-exact reference.
    fn naive_mse(mlp: &Mlp, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (input, target) in data.iter() {
            let out = mlp.feed_forward(input);
            for (&y, &t) in out.iter().zip(target) {
                let e = (y - t) as f64;
                total += e * e;
                count += 1;
            }
        }
        total / count as f64
    }

    fn small_topology() -> impl Strategy<Value = Topology> {
        (
            1usize..6,
            proptest::collection::vec(1usize..9, 0..3),
            1usize..5,
        )
            .prop_map(|(inputs, hidden, outputs)| {
                let mut layers = vec![inputs];
                layers.extend(hidden);
                layers.push(outputs);
                Topology::new(layers).expect("nonzero layers")
            })
    }

    fn dataset_for(topology: &Topology, n: usize, salt: u64) -> Dataset {
        let mut d = Dataset::new(topology.inputs(), topology.outputs());
        for k in 0..n {
            let input: Vec<f32> = (0..topology.inputs())
                .map(|i| ((k as u64 * 31 + i as u64 * 7 + salt) % 97) as f32 / 97.0)
                .collect();
            let output: Vec<f32> = (0..topology.outputs())
                .map(|i| ((k as u64 * 13 + i as u64 * 5 + salt) % 89) as f32 / 89.0)
                .collect();
            d.push(&input, &output).unwrap();
        }
        d
    }

    #[test]
    fn forward_matches_feed_forward_bitwise() {
        let t = Topology::new(vec![9, 8, 4, 1]).unwrap();
        let mlp = Mlp::seeded(t.clone(), 3);
        let mut scratch = Scratch::new();
        for k in 0..20 {
            let input: Vec<f32> = (0..9).map(|i| ((k * 11 + i) % 13) as f32 / 13.0).collect();
            assert_eq!(scratch.forward(&mlp, &input), &mlp.feed_forward(&input)[..]);
        }
    }

    #[test]
    fn rebinding_to_a_new_topology_resizes() {
        let small = Topology::new(vec![2, 2, 1]).unwrap();
        let big = Topology::new(vec![9, 32, 32, 2]).unwrap();
        let mut scratch = Scratch::for_topology(&small);
        let mlp = Mlp::seeded(big.clone(), 1);
        let input: Vec<f32> = (0..9).map(|i| i as f32 / 9.0).collect();
        assert_eq!(scratch.forward(&mlp, &input), &mlp.feed_forward(&input)[..]);
        // And back down.
        let mlp2 = Mlp::seeded(small, 2);
        assert_eq!(
            scratch.forward(&mlp2, &[0.25, 0.75]),
            &mlp2.feed_forward(&[0.25, 0.75])[..]
        );
    }

    proptest! {
        /// Fused scratch backprop is bit-exact against the naive reference
        /// over random topologies, seeds, and datasets — including the
        /// momentum state carried across samples.
        #[test]
        fn scratch_backprop_is_bit_exact(
            topology in small_topology(),
            seed in 0u64..500,
            n_samples in 1usize..12,
        ) {
            let data = dataset_for(&topology, n_samples, seed);
            let mut naive = Mlp::seeded(topology.clone(), seed);
            let mut fused = naive.clone();
            let mut velocity: Vec<Vec<f32>> = naive
                .weight_matrices()
                .iter()
                .map(|m| vec![0.0; m.len()])
                .collect();
            let mut scratch = Scratch::for_topology(&topology);
            // Two passes over the data so momentum history matters.
            for _ in 0..2 {
                for (input, target) in data.iter() {
                    naive_backprop_one(&mut naive, input, target, &mut velocity, 0.01, 0.9);
                    scratch.backprop_one(&mut fused, input, target, 0.01, 0.9);
                }
            }
            prop_assert_eq!(naive, fused);
        }

        /// Scratch forward and MSE are bit-exact against the naive paths.
        #[test]
        fn scratch_forward_and_mse_are_bit_exact(
            topology in small_topology(),
            seed in 0u64..500,
        ) {
            let mlp = Mlp::seeded(topology.clone(), seed);
            let data = dataset_for(&topology, 8, seed);
            let mut scratch = Scratch::new();
            for (input, _) in data.iter() {
                let naive_out = mlp.feed_forward(input);
                prop_assert_eq!(scratch.forward(&mlp, input), &naive_out[..]);
                let acts = mlp.activations(input);
                prop_assert_eq!(&acts[acts.len() - 1][..], &naive_out[..]);
            }
            let a = naive_mse(&mlp, &data);
            let b = mse_with(&mlp, &data, &mut scratch);
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        /// A scratch reused across different topologies (the worker-thread
        /// pattern in the topology search) never contaminates results.
        #[test]
        fn scratch_reuse_across_topologies_is_clean(
            t1 in small_topology(),
            t2 in small_topology(),
            seed in 0u64..200,
        ) {
            let d1 = dataset_for(&t1, 5, seed);
            let d2 = dataset_for(&t2, 5, seed.wrapping_add(1));
            let mut shared = Scratch::new();

            let mut m1_shared = Mlp::seeded(t1.clone(), seed);
            let mut m2_shared = Mlp::seeded(t2.clone(), seed);
            shared.bind(&t1);
            for (i, t) in d1.iter() {
                shared.backprop_one(&mut m1_shared, i, t, 0.01, 0.9);
            }
            shared.bind(&t2);
            for (i, t) in d2.iter() {
                shared.backprop_one(&mut m2_shared, i, t, 0.01, 0.9);
            }

            let mut m2_fresh = Mlp::seeded(t2, seed);
            let mut fresh = Scratch::new();
            fresh.bind(m2_fresh.topology());
            for (i, t) in d2.iter() {
                fresh.backprop_one(&mut m2_fresh, i, t, 0.01, 0.9);
            }
            prop_assert_eq!(m2_shared, m2_fresh);
            // And the first network matches a naive run.
            let mut m1_naive = Mlp::seeded(t1, seed);
            let mut velocity: Vec<Vec<f32>> = m1_naive
                .weight_matrices()
                .iter()
                .map(|m| vec![0.0; m.len()])
                .collect();
            for (i, t) in d1.iter() {
                naive_backprop_one(&mut m1_naive, i, t, &mut velocity, 0.01, 0.9);
            }
            prop_assert_eq!(m1_shared, m1_naive);
        }
    }
}

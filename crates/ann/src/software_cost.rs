//! Operation-count model of evaluating the network *in software* on the CPU
//! (the paper's FANN comparison, Figure 9).

use crate::Topology;
use serde::{Deserialize, Serialize};

/// Per-evaluation operation counts for an all-software neural network
/// library running on the main core.
///
/// The paper reports that replacing `jmeint`'s 1,079 x86 instructions with
/// FANN calls costs "928 multiplies, 928 adds, and 42 sigmoids" plus
/// address computation, weight loads, and function-call overhead. This
/// model reproduces that structure: each multiply-add also needs a weight
/// load and address arithmetic, each layer incurs loop and call overhead.
///
/// # Example
///
/// ```
/// let t = ann::Topology::new(vec![9, 8, 1]).unwrap();
/// let cost = ann::SoftwareNnCost::for_topology(&t);
/// assert_eq!(cost.multiplies, t.weight_count() as u64);
/// assert!(cost.total_instructions() > 4 * cost.multiplies);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareNnCost {
    /// Floating-point multiplies (one per synaptic weight).
    pub multiplies: u64,
    /// Floating-point adds (accumulations).
    pub adds: u64,
    /// Sigmoid evaluations (each costing [`Self::SIGMOID_INSTRUCTIONS`]).
    pub sigmoids: u64,
    /// Weight/activation loads from memory.
    pub loads: u64,
    /// Integer address-computation instructions.
    pub address_arith: u64,
    /// Loop-control instructions (compare + branch per inner iteration).
    pub loop_overhead: u64,
    /// Per-layer/per-call function overhead instructions.
    pub call_overhead: u64,
}

impl SoftwareNnCost {
    /// Instructions charged per software sigmoid (exp call + divide),
    /// matching a `libm`-based implementation.
    pub const SIGMOID_INSTRUCTIONS: u64 = 20;
    /// Fixed instructions per library call boundary (FANN's `fann_run`
    /// prologue/epilogue and per-layer dispatch).
    pub const CALL_INSTRUCTIONS: u64 = 30;

    /// Derives the cost of one evaluation of `topology` in software.
    pub fn for_topology(topology: &Topology) -> Self {
        let macs = topology.weight_count() as u64;
        let neurons = topology.computing_neurons() as u64;
        let layers = (topology.layers().len() - 1) as u64;
        SoftwareNnCost {
            multiplies: macs,
            adds: macs,
            sigmoids: neurons,
            // Each MAC loads a weight; each neuron loads its input vector
            // once per weight (already counted) and stores one activation.
            loads: macs + neurons,
            // Address computation: index increment + scale per MAC.
            address_arith: 2 * macs,
            // Inner loop: compare + branch per MAC.
            loop_overhead: 2 * macs,
            call_overhead: Self::CALL_INSTRUCTIONS * (layers + 1),
        }
    }

    /// Total dynamic instructions for one software evaluation.
    pub fn total_instructions(&self) -> u64 {
        self.multiplies
            + self.adds
            + self.sigmoids * Self::SIGMOID_INSTRUCTIONS
            + self.loads
            + self.address_arith
            + self.loop_overhead
            + self.call_overhead
    }

    /// Floating-point instructions only (multiplies + adds + sigmoid flops).
    pub fn fp_instructions(&self) -> u64 {
        self.multiplies + self.adds + self.sigmoids * Self::SIGMOID_INSTRUCTIONS / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_network_size() {
        let small = SoftwareNnCost::for_topology(&Topology::new(vec![2, 2, 1]).unwrap());
        let large = SoftwareNnCost::for_topology(&Topology::new(vec![18, 32, 8, 2]).unwrap());
        assert!(large.total_instructions() > 10 * small.total_instructions());
    }

    #[test]
    fn jmeint_size_network_is_expensive() {
        // The paper's headline Figure 9 point: jmeint's network costs far
        // more in software than the original 1,079 instructions.
        let t = Topology::new(vec![18, 32, 8, 2]).unwrap();
        let cost = SoftwareNnCost::for_topology(&t);
        assert!(cost.total_instructions() > 1_079 * 3);
        assert_eq!(cost.sigmoids, 42);
    }

    #[test]
    fn multiplies_equal_weight_count() {
        let t = Topology::new(vec![64, 16, 64]).unwrap();
        assert_eq!(
            SoftwareNnCost::for_topology(&t).multiplies,
            t.weight_count() as u64
        );
    }
}

//! End-to-end tests over a real socket: an in-process daemon on an
//! ephemeral TCP port, a protocol client, and the full request →
//! batch → reply path.

use serve::engine::{Engine, EngineConfig};
use serve::fleet::{derive_fleet, request_inputs, FleetOptions};
use serve::proto::{write_frame, ErrorCode, InvokeMode, Reply, Request};
use serve::server::{Listen, RunStats, Server};
use serve::Client;
use std::thread::JoinHandle;

fn small_fleet() -> FleetOptions {
    FleetOptions {
        tenants: 2,
        seed: 11,
        layers: vec![4, 8, 2],
        ..FleetOptions::default()
    }
}

/// Starts an in-process daemon on an ephemeral port; returns its
/// address and the join handle delivering the final stats.
fn start_daemon(opts: &FleetOptions) -> (Listen, JoinHandle<RunStats>) {
    let engine = Engine::new(EngineConfig::default(), derive_fleet(opts));
    let serve_opts = serve::server::ServeOptions {
        listen: Listen::Tcp("127.0.0.1:0".to_string()),
        batch_window_us: 500,
        reap_period_us: 1_000,
    };
    let server = Server::bind(&serve_opts, engine).expect("bind ephemeral port");
    let addr = server.local();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shutdown(addr: &Listen) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    match c.call(&Request::Shutdown) {
        Ok(Reply::ShutdownAck) => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
}

#[test]
fn invocations_round_trip_bit_identically_over_the_socket() {
    let opts = small_fleet();
    let (addr, handle) = start_daemon(&opts);
    let reference = derive_fleet(&opts);

    let mut client = Client::connect(&addr).expect("connect");
    assert!(matches!(client.call(&Request::Ping), Ok(Reply::Pong)));

    // Pipeline a window of invocations across both tenants, then
    // collect and verify each reply against a local evaluate.
    let n = 12u64;
    for req in 0..n {
        let tenant = (req % 2) as usize;
        client
            .send(&Request::Invoke {
                tenant: format!("t{tenant}"),
                request_id: req,
                deadline_us: 0,
                mode: InvokeMode::Npu,
                inputs: request_inputs(opts.seed, tenant, req, 4),
            })
            .expect("send");
    }
    let mut seen = 0;
    for _ in 0..n {
        match client.recv().expect("recv") {
            Reply::Outputs {
                request_id,
                precise,
                outputs,
                ..
            } => {
                assert!(!precise);
                let tenant = (request_id % 2) as usize;
                let expected = reference[tenant]
                    .config
                    .evaluate(&request_inputs(opts.seed, tenant, request_id, 4));
                let expected_bits: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
                let got_bits: Vec<u32> = outputs.iter().map(|v| v.to_bits()).collect();
                assert_eq!(expected_bits, got_bits, "request {request_id}");
                seen += 1;
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!(seen, n);

    // The stats request returns the server's own accounting as JSON.
    match client.call(&Request::Stats).expect("stats") {
        Reply::Stats { json } => {
            let summary: telemetry::ServingSummary =
                serde::json::from_str(&json).expect("summary parses");
            assert_eq!(summary.completed, n);
            assert_eq!(summary.npu_served, n);
            assert_eq!(summary.protocol_errors, 0);
            assert!(summary.batches >= 1);
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }

    shutdown(&addr);
    let stats = handle.join().expect("join");
    assert_eq!(stats.summary.completed, n);
}

#[test]
fn validation_failures_answer_with_precise_error_codes() {
    let opts = small_fleet();
    let (addr, handle) = start_daemon(&opts);

    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .call(&Request::Invoke {
            tenant: "ghost".to_string(),
            request_id: 5,
            deadline_us: 0,
            mode: InvokeMode::Npu,
            inputs: vec![0.0; 4],
        })
        .expect("call");
    match reply {
        Reply::Error {
            request_id, code, ..
        } => {
            assert_eq!(request_id, 5);
            assert_eq!(code, ErrorCode::UnknownTenant);
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    let reply = client
        .call(&Request::Invoke {
            tenant: "t0".to_string(),
            request_id: 6,
            deadline_us: 0,
            mode: InvokeMode::Npu,
            inputs: vec![0.0; 3],
        })
        .expect("call");
    assert!(matches!(
        reply,
        Reply::Error {
            request_id: 6,
            code: ErrorCode::BadDimensions,
            ..
        }
    ));

    shutdown(&addr);
    handle.join().expect("join");
}

#[test]
fn malformed_frames_get_an_error_reply_and_count_as_protocol_errors() {
    let opts = small_fleet();
    let (addr, handle) = start_daemon(&opts);

    // A well-framed payload that is not a valid message (bad version).
    let mut client = Client::connect(&addr).expect("connect");
    write_frame(client.stream_mut(), &[0xff, 0xff, 0x01]).expect("write garbage");
    match client.recv().expect("recv error reply") {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("unexpected reply: {other:?}"),
    }
    // The server drops the connection after a malformed frame.
    assert!(client.recv().is_err(), "connection must be closed");

    // A healthy connection still works, and the stats show exactly one
    // protocol error.
    let mut healthy = Client::connect(&addr).expect("connect healthy");
    assert!(matches!(healthy.call(&Request::Ping), Ok(Reply::Pong)));
    match healthy.call(&Request::Stats).expect("stats") {
        Reply::Stats { json } => {
            let summary: telemetry::ServingSummary =
                serde::json::from_str(&json).expect("summary parses");
            assert_eq!(summary.protocol_errors, 1);
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }

    shutdown(&addr);
    let stats = handle.join().expect("join");
    assert_eq!(stats.summary.protocol_errors, 1);
}

#[test]
fn unix_socket_round_trips_too() {
    let opts = small_fleet();
    let path = std::env::temp_dir().join(format!("parrot-serve-test-{}.sock", std::process::id()));
    let engine = Engine::new(EngineConfig::default(), derive_fleet(&opts));
    let serve_opts = serve::server::ServeOptions {
        listen: Listen::Unix(path.clone()),
        batch_window_us: 500,
        reap_period_us: 1_000,
    };
    let server = Server::bind(&serve_opts, engine).expect("bind unix socket");
    let addr = server.local();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(&addr).expect("connect over unix");
    assert!(matches!(client.call(&Request::Ping), Ok(Reply::Pong)));
    match client
        .call(&Request::Invoke {
            tenant: "t1".to_string(),
            request_id: 1,
            deadline_us: 0,
            mode: InvokeMode::Precise,
            inputs: request_inputs(opts.seed, 1, 1, 4),
        })
        .expect("invoke")
    {
        Reply::Outputs { precise, .. } => assert!(precise, "explicit offload is precise"),
        other => panic!("unexpected reply: {other:?}"),
    }

    shutdown(&addr);
    handle.join().expect("join");
    assert!(!path.exists(), "socket file cleaned up on shutdown");
}

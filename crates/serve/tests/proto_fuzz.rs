//! Fuzz-style property tests for the wire protocol: decoding is total
//! (arbitrary bytes never panic) and encoding round-trips.

use proptest::collection::vec;
use proptest::prelude::*;
use serve::proto::{InvokeMode, Reply, Request, MAX_FRAME_LEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any byte soup either decodes or returns a ProtoError — a panic
    /// here would let one malformed client kill the daemon.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Reply::decode(&bytes);
    }

    /// Same property with a well-formed header prefix, so the fuzz
    /// reaches the per-kind body decoders instead of dying on the
    /// version check.
    #[test]
    fn decoding_bodies_with_valid_headers_never_panics(
        kind in any::<u8>(),
        body in vec(any::<u8>(), 0..128),
    ) {
        let mut buf = serve::proto::PROTO_VERSION.to_le_bytes().to_vec();
        buf.push(kind);
        buf.extend_from_slice(&body);
        let _ = Request::decode(&buf);
        let _ = Reply::decode(&buf);
    }

    /// Invoke requests survive encode → decode bit-for-bit, including
    /// non-finite floats.
    #[test]
    fn invoke_requests_round_trip(
        tenant_bytes in vec(97u8..123, 0..12),
        request_id in any::<u64>(),
        deadline_us in any::<u64>(),
        precise in any::<bool>(),
        input_bits in vec(any::<u32>(), 0..24),
    ) {
        let req = Request::Invoke {
            tenant: String::from_utf8(tenant_bytes).unwrap(),
            request_id,
            deadline_us,
            mode: if precise { InvokeMode::Precise } else { InvokeMode::Npu },
            inputs: input_bits.iter().map(|&b| f32::from_bits(b)).collect(),
        };
        let mut buf = Vec::new();
        req.encode(&mut buf);
        prop_assert!(buf.len() <= MAX_FRAME_LEN as usize);
        let back = Request::decode(&buf).expect("own encoding decodes");
        match (&req, &back) {
            (
                Request::Invoke { tenant: t1, request_id: r1, deadline_us: d1, mode: m1, inputs: i1 },
                Request::Invoke { tenant: t2, request_id: r2, deadline_us: d2, mode: m2, inputs: i2 },
            ) => {
                prop_assert_eq!(t1, t2);
                prop_assert_eq!(r1, r2);
                prop_assert_eq!(d1, d2);
                prop_assert_eq!(m1, m2);
                let b1: Vec<u32> = i1.iter().map(|v| v.to_bits()).collect();
                let b2: Vec<u32> = i2.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(b1, b2);
            }
            _ => prop_assert!(false, "decoded to a different kind"),
        }
    }

    /// Output replies survive encode → decode bit-for-bit.
    #[test]
    fn output_replies_round_trip(
        request_id in any::<u64>(),
        precise in any::<bool>(),
        queued_us in any::<u64>(),
        output_bits in vec(any::<u32>(), 0..24),
    ) {
        let reply = Reply::Outputs {
            request_id,
            precise,
            queued_us,
            outputs: output_bits.iter().map(|&b| f32::from_bits(b)).collect(),
        };
        let mut buf = Vec::new();
        reply.encode(&mut buf);
        let back = Reply::decode(&buf).expect("own encoding decodes");
        match (&reply, &back) {
            (
                Reply::Outputs { request_id: r1, precise: p1, queued_us: q1, outputs: o1 },
                Reply::Outputs { request_id: r2, precise: p2, queued_us: q2, outputs: o2 },
            ) => {
                prop_assert_eq!(r1, r2);
                prop_assert_eq!(p1, p2);
                prop_assert_eq!(q1, q2);
                let b1: Vec<u32> = o1.iter().map(|v| v.to_bits()).collect();
                let b2: Vec<u32> = o2.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(b1, b2);
            }
            _ => prop_assert!(false, "decoded to a different kind"),
        }
    }

    /// Truncating a valid frame at any point yields an error, not junk.
    #[test]
    fn truncations_of_valid_encodings_error_cleanly(
        input_bits in vec(any::<u32>(), 1..16),
        cut_fraction in 0.0f64..1.0,
    ) {
        let req = Request::Invoke {
            tenant: "tenant".to_string(),
            request_id: 1,
            deadline_us: 2,
            mode: InvokeMode::Npu,
            inputs: input_bits.iter().map(|&b| f32::from_bits(b)).collect(),
        };
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let cut = ((buf.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(Request::decode(&buf[..cut]).is_err());
    }
}

//! Deterministic behaviour tests for the batching engine.
//!
//! The engine is clocked by caller-supplied microsecond timestamps, so
//! every backpressure, timeout, degradation, and fairness scenario here
//! is exactly reproducible — no sleeps, no real sockets, no races.

use serve::engine::{drain, Completion, CompletionKind, Engine, EngineConfig, SubmitOutcome};
use serve::fleet::{derive_fleet, request_inputs, FleetOptions};
use serve::proto::InvokeMode;

fn small_fleet(tenants: usize) -> FleetOptions {
    FleetOptions {
        tenants,
        seed: 7,
        layers: vec![4, 8, 2],
        ..FleetOptions::default()
    }
}

fn engine_with(cfg: EngineConfig, opts: &FleetOptions) -> Engine {
    Engine::new(cfg, derive_fleet(opts))
}

fn inputs_for(opts: &FleetOptions, tenant: usize, request: u64) -> Vec<f32> {
    request_inputs(opts.seed, tenant, request, opts.layers[0])
}

fn submit_npu(engine: &mut Engine, opts: &FleetOptions, tenant: usize, req: u64, now: u64) {
    let outcome = engine.submit(
        &format!("t{tenant}"),
        req,
        0,
        InvokeMode::Npu,
        inputs_for(opts, tenant, req),
        now,
    );
    assert!(
        matches!(outcome, SubmitOutcome::Enqueued { .. }),
        "expected enqueue, got {outcome:?}"
    );
}

#[test]
fn bounded_queue_rejects_with_the_configured_retry_hint_and_never_exceeds_cap() {
    let opts = small_fleet(1);
    let cfg = EngineConfig {
        queue_cap: 4,
        retry_after_us: 777,
        ..EngineConfig::default()
    };
    let mut engine = engine_with(cfg, &opts);

    for req in 0..4 {
        submit_npu(&mut engine, &opts, 0, req, 0);
    }
    assert_eq!(engine.queue_len("t0"), Some(4));

    // Every submit past the cap is rejected with the configured hint
    // and must not grow the queue.
    for req in 4..20 {
        let outcome = engine.submit("t0", req, 0, InvokeMode::Npu, inputs_for(&opts, 0, req), 0);
        assert_eq!(
            outcome,
            SubmitOutcome::Rejected {
                retry_after_us: 777
            }
        );
        assert_eq!(engine.queue_len("t0"), Some(4), "cap must hold");
    }

    // Serving frees capacity; the next submit is accepted again.
    let mut completions = Vec::new();
    assert!(engine.flush(10, &mut completions));
    assert_eq!(completions.len(), 4);
    submit_npu(&mut engine, &opts, 0, 99, 11);

    let summary = engine.summary(1_000);
    assert_eq!(summary.rejected, 16);
    assert_eq!(summary.completed, 4);
}

#[test]
fn past_deadline_requests_get_a_distinct_timeout_completion() {
    let opts = small_fleet(1);
    let mut engine = engine_with(EngineConfig::default(), &opts);

    // Three requests with deadlines 100, 200, 300 µs after t=0.
    for (req, deadline) in [(0u64, 100u64), (1, 200), (2, 300)] {
        let outcome = engine.submit(
            "t0",
            req,
            deadline,
            InvokeMode::Npu,
            inputs_for(&opts, 0, req),
            0,
        );
        assert!(matches!(outcome, SubmitOutcome::Enqueued { .. }));
    }

    let mut completions = Vec::new();
    engine.expire(99, &mut completions);
    assert!(completions.is_empty(), "nothing due before the deadline");

    // At t=200 the first two deadlines (<= now) have passed.
    engine.expire(200, &mut completions);
    let timed_out: Vec<u64> = completions
        .iter()
        .map(|c| {
            assert_eq!(c.kind, CompletionKind::TimedOut, "must be the timeout kind");
            c.request_id
        })
        .collect();
    assert_eq!(timed_out, vec![0, 1]);

    // The survivor is served normally and is never double-reported.
    completions.clear();
    drain(&mut engine, 250, &mut completions);
    assert_eq!(completions.len(), 1);
    assert_eq!(completions[0].request_id, 2);
    assert!(matches!(completions[0].kind, CompletionKind::Done { .. }));

    let summary = engine.summary(1_000);
    assert_eq!(summary.timed_out, 2);
    assert_eq!(summary.completed, 1);
}

#[test]
fn flush_times_out_expired_work_instead_of_serving_it() {
    let opts = small_fleet(1);
    let mut engine = engine_with(EngineConfig::default(), &opts);
    let outcome = engine.submit("t0", 0, 50, InvokeMode::Npu, inputs_for(&opts, 0, 0), 0);
    assert!(matches!(outcome, SubmitOutcome::Enqueued { .. }));

    // The flush happens after the deadline: the request must become a
    // timeout, not a served invocation.
    let mut completions = Vec::new();
    engine.flush(100, &mut completions);
    assert_eq!(completions.len(), 1);
    assert_eq!(completions[0].kind, CompletionKind::TimedOut);
}

#[test]
fn npu_path_is_bit_identical_to_direct_evaluate() {
    let opts = small_fleet(2);
    let mut engine = engine_with(EngineConfig::default(), &opts);
    let reference = derive_fleet(&opts);

    for req in 0..16 {
        submit_npu(&mut engine, &opts, (req % 2) as usize, req, 0);
    }
    let mut completions = Vec::new();
    drain(&mut engine, 10, &mut completions);
    assert_eq!(completions.len(), 16);

    for c in &completions {
        let CompletionKind::Done {
            outputs, precise, ..
        } = &c.kind
        else {
            panic!("unexpected completion {c:?}");
        };
        assert!(!precise, "unlimited budget must stay on the NPU path");
        let tenant_idx: usize = c.tenant[1..].parse().unwrap();
        let expected =
            reference[tenant_idx]
                .config
                .evaluate(&inputs_for(&opts, tenant_idx, c.request_id));
        let expected_bits: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = outputs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(expected_bits, got_bits, "request {}", c.request_id);
    }
}

#[test]
fn drained_budget_degrades_one_tenant_while_others_keep_npu_service() {
    // t0 starts with a zero budget (drained immediately); t1 unlimited.
    let mut opts = small_fleet(2);
    opts.error_budget = 0.0;
    let mut fleet = derive_fleet(&opts);
    fleet[1].budget = parrot::ErrorBudget::unlimited();
    let mut engine = Engine::new(EngineConfig::default(), fleet);
    let reference = derive_fleet(&opts);

    assert_eq!(engine.budget_drained("t0"), Some(true));
    assert_eq!(engine.budget_drained("t1"), Some(false));

    for req in 0..8 {
        submit_npu(&mut engine, &opts, (req % 2) as usize, req, 0);
    }
    let mut completions = Vec::new();
    drain(&mut engine, 10, &mut completions);
    assert_eq!(completions.len(), 8);

    for c in &completions {
        let CompletionKind::Done {
            outputs, precise, ..
        } = &c.kind
        else {
            panic!("unexpected completion {c:?}");
        };
        let tenant_idx: usize = c.tenant[1..].parse().unwrap();
        let inputs = inputs_for(&opts, tenant_idx, c.request_id);
        if tenant_idx == 0 {
            // Degraded: observably the precise path, with the precise
            // region's results.
            assert!(*precise, "drained tenant must fall back to precise");
            let expected = reference[0]
                .region
                .as_ref()
                .unwrap()
                .evaluate(&inputs)
                .unwrap();
            assert_eq!(expected, *outputs);
        } else {
            assert!(!precise, "other tenants keep NPU service");
            let expected = reference[1].config.evaluate(&inputs);
            let expected_bits: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u32> = outputs.iter().map(|v| v.to_bits()).collect();
            assert_eq!(expected_bits, got_bits);
        }
    }

    let summary = engine.summary(1_000);
    assert_eq!(summary.tenants["t0"].precise_served, 4);
    assert_eq!(summary.tenants["t0"].npu_served, 0);
    assert_eq!(summary.tenants["t1"].npu_served, 4);
    assert_eq!(summary.tenants["t1"].precise_served, 0);
}

#[test]
fn sampled_audits_drain_the_budget_and_trigger_degradation() {
    // Audit every NPU invocation against the (very different) linear
    // region with a tiny budget: the first flush serves NPU and drains
    // the budget, the second must be degraded.
    let mut opts = small_fleet(1);
    opts.error_budget = 1e-12;
    opts.sample_period = 1;
    let mut engine = engine_with(EngineConfig::default(), &opts);
    assert_eq!(engine.budget_drained("t0"), Some(false));

    submit_npu(&mut engine, &opts, 0, 0, 0);
    let mut completions = Vec::new();
    drain(&mut engine, 1, &mut completions);
    assert!(matches!(
        completions[0].kind,
        CompletionKind::Done { precise: false, .. }
    ));
    assert_eq!(
        engine.budget_drained("t0"),
        Some(true),
        "audit charged the budget"
    );

    submit_npu(&mut engine, &opts, 0, 1, 2);
    completions.clear();
    drain(&mut engine, 3, &mut completions);
    assert!(matches!(
        completions[0].kind,
        CompletionKind::Done { precise: true, .. }
    ));
}

#[test]
fn deficit_round_robin_converges_to_the_weight_ratio() {
    // Weights 1:3, both tenants saturated with equal offered load.
    let mut opts = small_fleet(2);
    opts.weights = vec![1, 3];
    let cfg = EngineConfig {
        queue_cap: 512,
        max_batch: 8,
        quantum: 1,
        ..EngineConfig::default()
    };
    let mut engine = engine_with(cfg, &opts);

    for req in 0..200 {
        submit_npu(&mut engine, &opts, 0, req, 0);
        submit_npu(&mut engine, &opts, 1, 1000 + req, 0);
    }
    // 2×25 flush visits; both queues stay non-empty throughout, so the
    // credit stream is exactly weight × quantum per visit.
    let mut completions = Vec::new();
    for _ in 0..50 {
        assert!(engine.flush(10, &mut completions));
    }

    let summary = engine.summary(1_000);
    let t0 = summary.tenants["t0"].completed;
    let t1 = summary.tenants["t1"].completed;
    assert_eq!(t0 + t1, completions.len() as u64);
    assert_eq!(
        t1,
        3 * t0,
        "weight-3 tenant must get exactly 3x the service while saturated"
    );
    assert!(
        summary.fairness_index > 0.999,
        "weighted-fair shares should score ~1.0, got {}",
        summary.fairness_index
    );
}

#[test]
fn context_switches_cost_the_config_save_restore_word_stream() {
    let opts = small_fleet(2);
    let mut engine = engine_with(EngineConfig::default(), &opts);
    let enc_len: u64 = engine.config_of("t0").unwrap().encoded_len() as u64;
    // Same topology on both tenants, so both configs encode to the
    // same word count.
    assert_eq!(
        engine.config_of("t1").unwrap().encoded_len() as u64,
        enc_len
    );

    let mut completions = Vec::new();
    // First flush (t0): cold NPU, restore only.
    submit_npu(&mut engine, &opts, 0, 0, 0);
    engine.flush(1, &mut completions);
    let s = engine.summary(10);
    assert_eq!(s.context_switches, 1);
    assert_eq!(s.context_switch_cycles, enc_len);

    // t0 again: config already loaded — no switch.
    submit_npu(&mut engine, &opts, 0, 1, 2);
    engine.flush(3, &mut completions);
    assert_eq!(engine.summary(10).context_switches, 1);

    // t1: save t0 + restore t1.
    submit_npu(&mut engine, &opts, 1, 2, 4);
    engine.flush(5, &mut completions);
    let s = engine.summary(10);
    assert_eq!(s.context_switches, 2);
    assert_eq!(s.context_switch_cycles, enc_len + 2 * enc_len);
}

#[test]
fn submit_validation_is_precise_about_the_failure() {
    let opts = small_fleet(1);
    let mut engine = engine_with(EngineConfig::default(), &opts);

    assert_eq!(
        engine.submit("nope", 0, 0, InvokeMode::Npu, vec![0.0; 4], 0),
        SubmitOutcome::UnknownTenant
    );
    assert_eq!(
        engine.submit("t0", 0, 0, InvokeMode::Npu, vec![0.0; 3], 0),
        SubmitOutcome::BadDimensions {
            expected: 4,
            got: 3
        }
    );

    let mut no_region = small_fleet(1);
    no_region.with_region = false;
    let mut engine = engine_with(EngineConfig::default(), &no_region);
    assert_eq!(
        engine.submit("t0", 0, 0, InvokeMode::Precise, vec![0.0; 4], 0),
        SubmitOutcome::NoPrecisePath
    );
    // Without a region the tenant cannot degrade either — NPU requests
    // still get NPU service even on a drained budget.
    let mut drained = small_fleet(1);
    drained.with_region = false;
    drained.error_budget = 0.0;
    let mut engine = engine_with(EngineConfig::default(), &drained);
    submit_npu(&mut engine, &drained, 0, 0, 0);
    let mut completions = Vec::new();
    drain(&mut engine, 1, &mut completions);
    assert!(matches!(
        completions[0].kind,
        CompletionKind::Done { precise: false, .. }
    ));
}

#[test]
fn explicit_precise_offload_runs_the_region_code() {
    let opts = small_fleet(1);
    let mut engine = engine_with(EngineConfig::default(), &opts);
    let reference = derive_fleet(&opts);
    let inputs = inputs_for(&opts, 0, 0);
    let outcome = engine.submit("t0", 0, 0, InvokeMode::Precise, inputs.clone(), 0);
    assert!(matches!(outcome, SubmitOutcome::Enqueued { .. }));

    let mut completions = Vec::new();
    drain(&mut engine, 1, &mut completions);
    let CompletionKind::Done {
        outputs, precise, ..
    } = &completions[0].kind
    else {
        panic!("unexpected completion");
    };
    assert!(precise);
    let expected = reference[0]
        .region
        .as_ref()
        .unwrap()
        .evaluate(&inputs)
        .unwrap();
    assert_eq!(&expected, outputs);
}

#[test]
fn identical_submission_sequences_complete_identically() {
    // Same submissions + same virtual clock = byte-identical completion
    // streams, the property the whole engine design exists for.
    let opts = small_fleet(3);
    let run = || -> Vec<Completion> {
        let mut engine = engine_with(EngineConfig::default(), &opts);
        let mut completions = Vec::new();
        for req in 0..40 {
            let tenant = (req % 3) as usize;
            let mode = if req % 7 == 0 {
                InvokeMode::Precise
            } else {
                InvokeMode::Npu
            };
            let _ = engine.submit(
                &format!("t{tenant}"),
                req,
                if req % 5 == 0 { 3 } else { 0 },
                mode,
                inputs_for(&opts, tenant, req),
                req, // µs: one submit per microsecond
            );
            if req % 10 == 9 {
                engine.flush(req + 1, &mut completions);
            }
        }
        drain(&mut engine, 100, &mut completions);
        completions
    };
    assert_eq!(run(), run());
}

//! Flag parsing shared by `parrot-serve` and `parrot-serve-bench`.
//!
//! Both binaries must derive the *same* tenant fleet from the same
//! flags (see [`crate::fleet`]), so the fleet flags are parsed by one
//! function used on both sides.

use crate::fleet::FleetOptions;

/// Prints a usage-style error and exits.
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Takes the next argument value or dies with `what needs a value`.
pub fn take_value(args: &mut impl Iterator<Item = String>, what: &str) -> String {
    args.next()
        .unwrap_or_else(|| die(&format!("{what} needs a value")))
}

/// Parses the next argument as `T` or dies.
pub fn take_parsed<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, what: &str) -> T {
    let v = take_value(args, what);
    v.parse()
        .unwrap_or_else(|_| die(&format!("{what}: cannot parse {v:?}")))
}

/// Parses a comma-separated list of numbers (`8,16,4`).
pub fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Vec<T> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("{what}: cannot parse element {p:?}")))
        })
        .collect()
}

/// Consumes one fleet-shaping flag if `arg` is one, updating `opts`.
/// Returns `false` when the flag is not fleet-related (the caller
/// handles it). Keeping this shared is what guarantees the daemon and
/// the bench derive bitwise-identical fleets from identical flags.
pub fn fleet_flag(
    arg: &str,
    args: &mut impl Iterator<Item = String>,
    opts: &mut FleetOptions,
) -> bool {
    match arg {
        "--tenants" => opts.tenants = take_parsed(args, "--tenants"),
        "--seed" => opts.seed = take_parsed(args, "--seed"),
        "--topo" => opts.layers = parse_list(&take_value(args, "--topo"), "--topo"),
        "--weights" => opts.weights = parse_list(&take_value(args, "--weights"), "--weights"),
        "--budget" => opts.error_budget = take_parsed(args, "--budget"),
        "--sample-period" => opts.sample_period = take_parsed(args, "--sample-period"),
        "--no-region" => opts.with_region = false,
        _ => return false,
    }
    true
}

/// The fleet-flag half of a usage message.
pub const FLEET_USAGE: &str = "\
  --tenants N          number of tenants (default 4)
  --seed S             fleet seed (default 42)
  --topo A,B,C         MLP layer sizes (default 8,16,4)
  --weights W1,W2,...  DRR weights, cycled over tenants (default all 1)
  --budget B           per-tenant quality budget, mean-abs error (default unlimited)
  --sample-period N    audit every Nth NPU invocation (default 0 = off)
  --no-region          tenants get no precise region (disables offload/degradation)";

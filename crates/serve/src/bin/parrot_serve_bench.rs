//! `parrot-serve-bench` — open/closed-loop load generator for
//! `parrot-serve`.
//!
//! Each simulated client runs as one dependency-free job on the harness
//! work-stealing executor (`harness::execute`), so client concurrency
//! reuses the same worker threads, spans, and stats plumbing as the
//! experiment sweeps. Clients derive the *same* deterministic tenant
//! fleet as the daemon from the same flags, which lets them verify
//! every NPU-path reply bit-for-bit against `NpuConfig::evaluate`
//! without configs ever crossing the wire.
//!
//! `--compare` measures a serial baseline (one client, window 1 — every
//! request pays the full round trip and a lone batch) before the
//! batch-friendly run, and reports the throughput ratio. Results land
//! as a schema-v6 `RunReport` (default `results/serve_baseline.json`)
//! whose `serving` section is the daemon's own final accounting,
//! fetched through the protocol's `Stats` request.

use harness::{execute, Artifact, JobDag};
use npu::NpuConfig;
use serve::cli::{die, fleet_flag, take_parsed, take_value, FLEET_USAGE};
use serve::fleet::{derive_fleet, request_inputs, FleetOptions};
use serve::proto::{InvokeMode, Reply, Request};
use serve::server::Listen;
use serve::Client;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use telemetry::{Histogram, Level, PhaseTiming, RunReport, ServingSummary};

const USAGE: &str = "\
parrot-serve-bench [flags]

  --connect ADDR       daemon address (default tcp:127.0.0.1:7411)
  --mode closed|open   closed-loop (windowed) or open-loop (paced) load
                       (default closed)
  --clients N          concurrent clients (default 8)
  --window W           outstanding requests per closed-loop client (default 8)
  --requests N         requests per client (default 500)
  --rate R             open loop: total target requests/s (default 20000)
  --precise-every N    every Nth request asks for precise offload (0 = never)
  --deadline-us T      per-request deadline (0 = server default)
  --serial             shorthand for --clients 1 --window 1
  --compare            run a serial baseline first and report the speedup
  --serial-requests N  requests in the serial baseline (default 200)
  --no-verify          skip bit-identity checks against local evaluate
  --shutdown           send Shutdown to the daemon when done
  --out FILE           RunReport path (default results/serve_baseline.json)
  --log-level LEVEL    off|error|warn|info|debug|trace (default off)
FLEET";

fn usage() -> ! {
    eprintln!("{}", USAGE.replace("FLEET", FLEET_USAGE));
    std::process::exit(2);
}

/// Flat float layout a client job packs its stats into (the harness
/// artifact type for numeric payloads is `Outputs(Vec<f32>)`): seven
/// counters, then one latency sample per completed request.
const STAT_COMPLETED: usize = 0;
const STAT_NPU: usize = 1;
const STAT_PRECISE: usize = 2;
const STAT_REJECTED: usize = 3;
const STAT_TIMED_OUT: usize = 4;
const STAT_ERRORS: usize = 5;
const STAT_MISMATCHES: usize = 6;
const STAT_HEADER: usize = 7;

#[derive(Clone)]
struct LoadSpec {
    addr: Listen,
    fleet: FleetOptions,
    open: bool,
    window: usize,
    requests: u64,
    rate_per_client: f64,
    precise_every: u64,
    deadline_us: u64,
    verify: bool,
}

#[derive(Default)]
struct ClientStats {
    completed: u64,
    npu: u64,
    precise: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    mismatches: u64,
    latencies_us: Vec<f32>,
}

impl ClientStats {
    fn pack(self) -> Vec<f32> {
        let mut v = vec![0.0f32; STAT_HEADER];
        v[STAT_COMPLETED] = self.completed as f32;
        v[STAT_NPU] = self.npu as f32;
        v[STAT_PRECISE] = self.precise as f32;
        v[STAT_REJECTED] = self.rejected as f32;
        v[STAT_TIMED_OUT] = self.timed_out as f32;
        v[STAT_ERRORS] = self.errors as f32;
        v[STAT_MISMATCHES] = self.mismatches as f32;
        v.extend_from_slice(&self.latencies_us);
        v
    }
}

struct InFlight {
    tenant_idx: usize,
    inputs: Vec<f32>,
    sent: Instant,
    mode: InvokeMode,
}

/// One client's whole life: connect, pump `requests` invocations,
/// return packed stats. Deterministic request content; wall-clock
/// timing only affects latency samples.
fn run_client(client_id: usize, spec: &LoadSpec) -> Result<ClientStats, String> {
    let fleet = derive_fleet(&spec.fleet);
    let configs: Vec<(String, NpuConfig)> = fleet.into_iter().map(|t| (t.name, t.config)).collect();
    let n_in = configs[0].1.topology().inputs();
    let n_tenants = configs.len();

    let mut client =
        Client::connect(&spec.addr).map_err(|e| format!("client {client_id}: connect: {e}"))?;
    if spec.open {
        client
            .set_read_timeout(Some(Duration::from_micros(200)))
            .map_err(|e| format!("client {client_id}: timeout: {e}"))?;
    }

    let mut stats = ClientStats::default();
    let mut in_flight: HashMap<u64, InFlight> = HashMap::new();
    let mut next: u64 = 0;
    let start = Instant::now();
    let send_gap = if spec.rate_per_client > 0.0 {
        Duration::from_secs_f64(1.0 / spec.rate_per_client)
    } else {
        Duration::ZERO
    };

    let build_and_send = |client: &mut Client,
                          in_flight: &mut HashMap<u64, InFlight>,
                          i: u64|
     -> Result<(), String> {
        let tenant_idx = (client_id + i as usize) % n_tenants;
        let inputs = request_inputs(
            spec.fleet.seed,
            tenant_idx,
            (client_id as u64) << 32 | i,
            n_in,
        );
        let mode = if spec.precise_every > 0 && i.is_multiple_of(spec.precise_every) {
            InvokeMode::Precise
        } else {
            InvokeMode::Npu
        };
        let request_id = (client_id as u64) << 32 | i;
        client
            .send(&Request::Invoke {
                tenant: configs[tenant_idx].0.clone(),
                request_id,
                deadline_us: spec.deadline_us,
                mode,
                inputs: inputs.clone(),
            })
            .map_err(|e| format!("client {client_id}: send: {e}"))?;
        in_flight.insert(
            request_id,
            InFlight {
                tenant_idx,
                inputs,
                sent: Instant::now(),
                mode,
            },
        );
        Ok(())
    };

    // Reply handling shared by both loop shapes. Returns the ids of
    // requests that were rejected and should be resent (closed loop).
    let on_reply = |reply: Reply,
                    in_flight: &mut HashMap<u64, InFlight>,
                    stats: &mut ClientStats|
     -> Option<u64> {
        match reply {
            Reply::Outputs {
                request_id,
                precise,
                outputs,
                ..
            } => {
                let Some(fl) = in_flight.remove(&request_id) else {
                    stats.errors += 1;
                    return None;
                };
                stats.completed += 1;
                stats
                    .latencies_us
                    .push(fl.sent.elapsed().as_micros() as f32);
                if precise {
                    stats.precise += 1;
                } else {
                    stats.npu += 1;
                    if spec.verify {
                        // The NPU path must be bit-identical to a local
                        // NpuConfig::evaluate of the same derived config.
                        let expected = configs[fl.tenant_idx].1.evaluate(&fl.inputs);
                        let same = expected.len() == outputs.len()
                            && expected
                                .iter()
                                .zip(&outputs)
                                .all(|(a, b)| a.to_bits() == b.to_bits());
                        if !same {
                            stats.mismatches += 1;
                        }
                    }
                }
                // Precise replies for NPU-mode requests are legitimate
                // (budget degradation); the reverse is a server bug.
                if !precise && fl.mode == InvokeMode::Precise {
                    stats.errors += 1;
                }
                None
            }
            Reply::Rejected { request_id, .. } => {
                stats.rejected += 1;
                Some(request_id)
            }
            Reply::TimedOut { request_id } => {
                in_flight.remove(&request_id);
                stats.timed_out += 1;
                None
            }
            Reply::Error { request_id, .. } => {
                in_flight.remove(&request_id);
                stats.errors += 1;
                None
            }
            _ => {
                stats.errors += 1;
                None
            }
        }
    };

    if spec.open {
        // Open loop: send on a fixed schedule regardless of replies,
        // polling for replies between sends. Backpressure rejections
        // are dropped (an open-loop source does not retry).
        while next < spec.requests {
            let due = start + send_gap.mul_f64(next as f64);
            loop {
                match client.try_recv() {
                    Ok(Some(reply)) => {
                        on_reply(reply, &mut in_flight, &mut stats);
                    }
                    Ok(None) => {}
                    Err(e) => return Err(format!("client {client_id}: recv: {e}")),
                }
                if Instant::now() >= due {
                    break;
                }
            }
            build_and_send(&mut client, &mut in_flight, next)?;
            next += 1;
        }
        // Drain until all outstanding requests resolved or the server
        // has clearly gone quiet.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while !in_flight.is_empty() && Instant::now() < drain_deadline {
            match client.try_recv() {
                Ok(Some(reply)) => {
                    let resend = on_reply(reply, &mut in_flight, &mut stats);
                    if let Some(id) = resend {
                        in_flight.remove(&id);
                    }
                }
                Ok(None) => {}
                Err(e) => return Err(format!("client {client_id}: drain: {e}")),
            }
        }
        stats.errors += in_flight.len() as u64;
    } else {
        // Closed loop: keep `window` requests outstanding; every reply
        // immediately frees a slot for the next send. Rejected requests
        // are resent after the server's retry hint.
        while next < spec.requests || !in_flight.is_empty() {
            while in_flight.len() < spec.window && next < spec.requests {
                build_and_send(&mut client, &mut in_flight, next)?;
                next += 1;
            }
            let reply = client
                .recv()
                .map_err(|e| format!("client {client_id}: recv: {e}"))?;
            if let Some(request_id) = on_reply(reply, &mut in_flight, &mut stats) {
                // Retry the rejected request in place (same id, same
                // inputs), honouring the back-off hint loosely.
                std::thread::sleep(Duration::from_micros(200));
                let fl = in_flight
                    .get(&request_id)
                    .ok_or_else(|| format!("client {client_id}: rejected unknown id"))?;
                client
                    .send(&Request::Invoke {
                        tenant: configs[fl.tenant_idx].0.clone(),
                        request_id,
                        deadline_us: spec.deadline_us,
                        mode: fl.mode,
                        inputs: fl.inputs.clone(),
                    })
                    .map_err(|e| format!("client {client_id}: resend: {e}"))?;
            }
        }
    }
    Ok(stats)
}

/// Runs one load phase: `clients` jobs on the harness executor, merged
/// stats + wall time back.
fn run_phase(name: &str, clients: usize, spec: &LoadSpec) -> (ClientStats, Histogram, u64) {
    let mut dag = JobDag::new();
    for c in 0..clients {
        let spec = spec.clone();
        dag.add(
            "serve-bench",
            name,
            None,
            Vec::new(),
            Box::new(move |_deps| run_client(c, &spec).map(|s| Artifact::Outputs(s.pack()))),
        );
    }
    let t0 = Instant::now();
    let (results, _exec) = execute(&dag, None, clients);
    let wall_us = t0.elapsed().as_micros() as u64;

    let mut merged = ClientStats::default();
    let mut latency = Histogram::default();
    for r in results {
        match r {
            harness::JobResult::Done { artifact, .. } => {
                let v = artifact.as_outputs().expect("bench jobs emit Outputs");
                merged.completed += v[STAT_COMPLETED] as u64;
                merged.npu += v[STAT_NPU] as u64;
                merged.precise += v[STAT_PRECISE] as u64;
                merged.rejected += v[STAT_REJECTED] as u64;
                merged.timed_out += v[STAT_TIMED_OUT] as u64;
                merged.errors += v[STAT_ERRORS] as u64;
                merged.mismatches += v[STAT_MISMATCHES] as u64;
                for &l in &v[STAT_HEADER..] {
                    latency.observe(f64::from(l));
                }
            }
            harness::JobResult::Failed(e) => {
                eprintln!("client job failed: {e}");
                merged.errors += 1;
            }
            harness::JobResult::Skipped => merged.errors += 1,
        }
    }
    (merged, latency, wall_us)
}

fn throughput_rps(completed: u64, wall_us: u64) -> f64 {
    if wall_us == 0 {
        0.0
    } else {
        completed as f64 * 1e6 / wall_us as f64
    }
}

fn main() {
    let mut connect = "tcp:127.0.0.1:7411".to_string();
    let mut fleet_opts = FleetOptions::default();
    let mut open = false;
    let mut clients = 8usize;
    let mut window = 8usize;
    let mut requests = 500u64;
    let mut rate = 20_000.0f64;
    let mut precise_every = 0u64;
    let mut deadline_us = 0u64;
    let mut compare = false;
    let mut serial_requests = 200u64;
    let mut verify = true;
    let mut shutdown = false;
    let mut out = PathBuf::from("results/serve_baseline.json");
    let mut log_level = Level::Off;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if fleet_flag(&arg, &mut args, &mut fleet_opts) {
            continue;
        }
        match arg.as_str() {
            "--connect" => connect = take_value(&mut args, "--connect"),
            "--mode" => match take_value(&mut args, "--mode").as_str() {
                "closed" => open = false,
                "open" => open = true,
                other => die(&format!("--mode: closed or open, not {other:?}")),
            },
            "--clients" => clients = take_parsed(&mut args, "--clients"),
            "--window" => window = take_parsed(&mut args, "--window"),
            "--requests" => requests = take_parsed(&mut args, "--requests"),
            "--rate" => rate = take_parsed(&mut args, "--rate"),
            "--precise-every" => precise_every = take_parsed(&mut args, "--precise-every"),
            "--deadline-us" => deadline_us = take_parsed(&mut args, "--deadline-us"),
            "--serial" => {
                clients = 1;
                window = 1;
            }
            "--compare" => compare = true,
            "--serial-requests" => serial_requests = take_parsed(&mut args, "--serial-requests"),
            "--no-verify" => verify = false,
            "--shutdown" => shutdown = true,
            "--out" => out = PathBuf::from(take_value(&mut args, "--out")),
            "--log-level" => {
                let v = take_value(&mut args, "--log-level");
                log_level =
                    Level::parse(&v).unwrap_or_else(|| die(&format!("unknown log level {v:?}")));
            }
            "--help" | "-h" => usage(),
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if log_level > Level::Off {
        telemetry::install_stderr_sink();
    }
    telemetry::set_level(log_level);

    let addr = Listen::parse(&connect).unwrap_or_else(|e| die(&e));
    if clients == 0 || window == 0 {
        die("--clients and --window must be positive");
    }
    let spec = LoadSpec {
        addr: addr.clone(),
        fleet: fleet_opts.clone(),
        open,
        window,
        requests,
        rate_per_client: if open { rate / clients as f64 } else { 0.0 },
        precise_every,
        deadline_us,
        verify,
    };

    // Sanity: the daemon is up and speaks our protocol version.
    let mut probe = Client::connect(&addr).unwrap_or_else(|e| {
        die(&format!(
            "connect {connect}: {e} (is parrot-serve running?)"
        ))
    });
    match probe.call(&Request::Ping) {
        Ok(Reply::Pong) => {}
        Ok(other) => die(&format!("unexpected ping reply: {other:?}")),
        Err(e) => die(&format!("ping: {e}")),
    }

    let mode_name = if compare {
        "compare"
    } else if open {
        "open"
    } else {
        "closed"
    };
    let mut report = RunReport::new("serve", "serve_baseline", mode_name);
    let t_total = Instant::now();

    // Serial baseline: one client, one outstanding request — every
    // invocation pays the full round trip plus a lone flush.
    let mut serial_rps = 0.0;
    if compare {
        let serial_spec = LoadSpec {
            open: false,
            window: 1,
            requests: serial_requests,
            ..spec.clone()
        };
        let (stats, latency, wall_us) = run_phase("serial", 1, &serial_spec);
        serial_rps = throughput_rps(stats.completed, wall_us);
        println!(
            "serial   : {:>7} completed in {:>7.1} ms -> {:>9.0} req/s (p50 {:.0}us p99 {:.0}us)",
            stats.completed,
            wall_us as f64 / 1e3,
            serial_rps,
            latency.p50(),
            latency.p99()
        );
        report.push_phase(PhaseTiming {
            name: "serial".to_string(),
            elapsed_us: wall_us,
        });
        report.push_distribution("bench.latency_us.serial", &latency);
        report
            .metrics
            .set_gauge("serve.bench.throughput_rps.serial", serial_rps);
        if stats.mismatches > 0 {
            die(&format!(
                "{} serial replies were not bit-identical to local evaluate",
                stats.mismatches
            ));
        }
    }

    // The measured (batch-friendly) run.
    let (stats, latency, wall_us) = run_phase("batched", clients, &spec);
    let rps = throughput_rps(stats.completed, wall_us);
    println!(
        "{:<9}: {:>7} completed in {:>7.1} ms -> {:>9.0} req/s (p50 {:.0}us p99 {:.0}us)",
        if open { "open" } else { "closed" },
        stats.completed,
        wall_us as f64 / 1e3,
        rps,
        latency.p50(),
        latency.p99()
    );
    println!(
        "           npu {} / precise {} / rejected {} / timed out {} / errors {} / mismatches {}",
        stats.npu, stats.precise, stats.rejected, stats.timed_out, stats.errors, stats.mismatches
    );
    report.push_phase(PhaseTiming {
        name: "batched".to_string(),
        elapsed_us: wall_us,
    });
    report.push_distribution("bench.latency_us.batched", &latency);
    report
        .metrics
        .set_gauge("serve.bench.throughput_rps.batched", rps);
    report
        .metrics
        .add("serve.bench.mismatches", stats.mismatches);
    report
        .metrics
        .add("serve.bench.client_errors", stats.errors);
    if compare && serial_rps > 0.0 {
        let speedup = rps / serial_rps;
        println!("speedup  : {speedup:.2}x over single-request-at-a-time");
        report
            .metrics
            .set_gauge("serve.bench.speedup_vs_serial", speedup);
    }

    // The daemon's own accounting becomes the report's serving section.
    match probe.call(&Request::Stats) {
        Ok(Reply::Stats { json }) => match serde::json::from_str::<ServingSummary>(&json) {
            Ok(summary) => {
                println!(
                    "server   : {} batches, mean occupancy {:.2}, fairness {:.4}, {} context switches",
                    summary.batches,
                    summary.batch_occupancy_mean,
                    summary.fairness_index,
                    summary.context_switches
                );
                report.serving = summary;
                report.serving.export(&mut report.metrics, "serving");
            }
            Err(e) => eprintln!("warning: stats reply did not parse: {e}"),
        },
        Ok(other) => eprintln!("warning: unexpected stats reply: {other:?}"),
        Err(e) => eprintln!("warning: stats: {e}"),
    }

    if shutdown {
        match probe.call(&Request::Shutdown) {
            Ok(Reply::ShutdownAck) => println!("daemon acknowledged shutdown"),
            Ok(other) => eprintln!("warning: unexpected shutdown reply: {other:?}"),
            Err(e) => eprintln!("warning: shutdown: {e}"),
        }
    }

    report.wall_clock_us = t_total.elapsed().as_micros() as u64;
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&out, report.to_json())
        .unwrap_or_else(|e| die(&format!("--out {}: {e}", out.display())));
    println!("report written to {}", out.display());
    telemetry::flush_sinks();

    if stats.mismatches > 0 {
        die(&format!(
            "{} replies were not bit-identical to local evaluate",
            stats.mismatches
        ));
    }
}

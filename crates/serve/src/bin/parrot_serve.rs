//! `parrot-serve` — the batched multi-tenant NPU invocation daemon.
//!
//! Binds a Unix or TCP socket, derives a deterministic tenant fleet
//! from the fleet flags (the load generator derives the same fleet from
//! the same flags), and serves until a client sends `Shutdown`. On exit
//! it prints the serving summary and optionally writes a schema-v6
//! `RunReport` with the `serving` section filled in.

use serve::cli::{die, fleet_flag, take_parsed, take_value, FLEET_USAGE};
use serve::engine::{Engine, EngineConfig};
use serve::fleet::{derive_fleet, FleetOptions};
use serve::server::{Listen, ServeOptions, Server};
use std::path::PathBuf;
use telemetry::{Level, PhaseTiming, RunReport};

const USAGE: &str = "\
parrot-serve [flags]

  --listen ADDR        unix:/path.sock or tcp:host:port (default tcp:127.0.0.1:7411)
  --queue-cap N        per-tenant queue bound (default 128)
  --max-batch N        invocations per flush (default LANES = 16)
  --batch-window-us T  max age of the oldest queued request before a
                       non-full flush (default 2000)
  --deadline-us T      default per-request deadline (default 1000000)
  --retry-after-us T   backpressure retry hint (default 500)
  --quantum N          DRR credits per weight unit per visit (default 4)
  --json-out FILE      write the final RunReport as JSON
  --trace-out FILE     write a Chrome trace of serve spans
  --log-level LEVEL    off|error|warn|info|debug|trace (default off)
FLEET";

fn usage() -> ! {
    eprintln!("{}", USAGE.replace("FLEET", FLEET_USAGE));
    std::process::exit(2);
}

fn main() {
    let mut listen = "tcp:127.0.0.1:7411".to_string();
    let mut engine_cfg = EngineConfig::default();
    let mut fleet_opts = FleetOptions::default();
    let mut serve_opts = ServeOptions::default();
    let mut json_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut log_level = Level::Off;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if fleet_flag(&arg, &mut args, &mut fleet_opts) {
            continue;
        }
        match arg.as_str() {
            "--listen" => listen = take_value(&mut args, "--listen"),
            "--queue-cap" => engine_cfg.queue_cap = take_parsed(&mut args, "--queue-cap"),
            "--max-batch" => engine_cfg.max_batch = take_parsed(&mut args, "--max-batch"),
            "--batch-window-us" => {
                serve_opts.batch_window_us = take_parsed(&mut args, "--batch-window-us");
            }
            "--deadline-us" => {
                engine_cfg.default_deadline_us = take_parsed(&mut args, "--deadline-us");
            }
            "--retry-after-us" => {
                engine_cfg.retry_after_us = take_parsed(&mut args, "--retry-after-us");
            }
            "--quantum" => engine_cfg.quantum = take_parsed(&mut args, "--quantum"),
            "--json-out" => json_out = Some(PathBuf::from(take_value(&mut args, "--json-out"))),
            "--trace-out" => trace_out = Some(PathBuf::from(take_value(&mut args, "--trace-out"))),
            "--log-level" => {
                let v = take_value(&mut args, "--log-level");
                log_level =
                    Level::parse(&v).unwrap_or_else(|| die(&format!("unknown log level {v:?}")));
            }
            "--help" | "-h" => usage(),
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    serve_opts.listen = Listen::parse(&listen).unwrap_or_else(|e| die(&e));

    if log_level > Level::Off {
        telemetry::install_stderr_sink();
    }
    if trace_out.is_some() && log_level < Level::Info {
        log_level = Level::Info;
    }
    telemetry::set_level(log_level);
    if let Some(path) = &trace_out {
        if let Err(e) = telemetry::install_trace_sink(path) {
            die(&format!("--trace-out {}: {e}", path.display()));
        }
    }

    let fleet = derive_fleet(&fleet_opts);
    let names: Vec<String> = fleet.iter().map(|t| t.name.clone()).collect();
    let engine = Engine::new(engine_cfg.clone(), fleet);
    let server =
        Server::bind(&serve_opts, engine).unwrap_or_else(|e| die(&format!("bind {listen}: {e}")));
    match server.local() {
        Listen::Tcp(a) => println!("parrot-serve listening on tcp:{a}"),
        Listen::Unix(p) => println!("parrot-serve listening on unix:{}", p.display()),
    }
    println!(
        "tenants: {} (topology {:?}, batch {} x window {}us)",
        names.join(", "),
        fleet_opts.layers,
        engine_cfg.max_batch,
        serve_opts.batch_window_us
    );
    // The smoke harness greps for the banner before starting load.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let t0 = std::time::Instant::now();
    let stats = server.run().unwrap_or_else(|e| die(&format!("serve: {e}")));
    let wall_us = t0.elapsed().as_micros() as u64;
    let s = &stats.summary;
    println!(
        "served {} requests: {} completed ({} npu / {} precise), {} rejected, {} timed out, {} protocol errors",
        s.requests_total, s.completed, s.npu_served, s.precise_served, s.rejected, s.timed_out,
        s.protocol_errors
    );
    println!(
        "{} batches (mean occupancy {:.2}), {} context switches ({} cycles), fairness {:.4}",
        s.batches,
        s.batch_occupancy_mean,
        s.context_switches,
        s.context_switch_cycles,
        s.fairness_index
    );

    if let Some(path) = &json_out {
        let mut report = RunReport::new("serve", "parrot-serve", "daemon");
        report.wall_clock_us = wall_us;
        report.serving = stats.summary.clone();
        report.serving.export(&mut report.metrics, "serving");
        report.push_phase(PhaseTiming {
            name: "serve".to_string(),
            elapsed_us: wall_us,
        });
        report.push_distribution("serve.queue_depth", &stats.queue_depth);
        report.push_distribution("serve.queue_wait_us", &stats.queue_wait_us);
        report.push_distribution("serve.batch_occupancy", &stats.batch_occupancy);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(&format!("--json-out {}: {e}", path.display())));
        println!("report written to {}", path.display());
    }
    telemetry::flush_sinks();
}

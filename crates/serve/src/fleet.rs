//! Deterministic tenant fleets.
//!
//! The daemon and the load generator run in separate processes, yet the
//! bench must verify every NPU-path reply bit-for-bit against
//! [`NpuConfig::evaluate`]. Instead of shipping configs over the wire,
//! both sides derive the *same* fleet from the same flags: tenant `i`'s
//! MLP is [`Mlp::seeded`] with a seed mixed from the fleet seed and `i`,
//! normalizers are fixed, and the optional precise region is a small
//! synthetic linear function built the same way on both ends. Same
//! flags → bitwise-identical tenants everywhere.

use ann::{Mlp, Normalizer, Topology};
use approx_ir::{FunctionBuilder, Program};
use npu::NpuConfig;
use parrot::{ErrorBudget, RegionSpec};

use crate::engine::TenantSpec;

/// Everything a fleet derivation depends on. Two processes constructing
/// this with equal values own bitwise-identical tenants.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of tenants (`t0`, `t1`, …).
    pub tenants: usize,
    /// Fleet seed, mixed per tenant.
    pub seed: u64,
    /// Shared MLP topology layer sizes (e.g. `[8, 16, 4]`).
    pub layers: Vec<usize>,
    /// Scheduling weights, cycled over tenants (empty → all 1).
    pub weights: Vec<u32>,
    /// Per-tenant quality budget (`f64::INFINITY` for unlimited).
    pub error_budget: f64,
    /// Audit every Nth NPU invocation against the precise region
    /// (0 disables auditing).
    pub sample_period: u64,
    /// Whether tenants get a precise region (required for whole-region
    /// offload and budget degradation).
    pub with_region: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            tenants: 4,
            seed: 42,
            layers: vec![8, 16, 4],
            weights: Vec::new(),
            error_budget: f64::INFINITY,
            sample_period: 0,
            with_region: true,
        }
    }
}

/// Splits the fleet seed into a per-tenant seed (splitmix-style odd
/// multiplier mix so adjacent tenants land far apart).
fn tenant_seed(fleet_seed: u64, tenant: usize) -> u64 {
    fleet_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((tenant as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
}

/// A synthetic precise region with the same arity as the NPU topology:
/// `out_j = Σ_i c_ij · x_i` with small fixed rational coefficients, so
/// it is cheap, total (no NaNs, no traps), and identical on every host.
fn linear_region(name: &str, n_in: usize, n_out: usize) -> RegionSpec {
    let mut b = FunctionBuilder::new(name, n_in);
    let mut outs = Vec::with_capacity(n_out);
    for j in 0..n_out {
        let mut acc = b.constf(0.0);
        for i in 0..n_in {
            let coeff = ((i * 7 + j * 13) % 10) as f32 / 10.0;
            let c = b.constf(coeff);
            let x = b.param(i);
            let term = b.fmul(c, x);
            acc = b.fadd(acc, term);
        }
        outs.push(acc);
    }
    b.ret(&outs);
    let mut program = Program::new();
    let entry = program.add_function(b.build().expect("synthetic region builds"));
    RegionSpec::new(name, program, entry, n_in, n_out).expect("synthetic region is valid")
}

/// Derives the tenant fleet for `opts`. Deterministic in `opts` alone.
///
/// # Panics
///
/// Panics on zero tenants, an invalid topology, or a negative/NaN
/// budget — configuration errors surfaced at startup.
pub fn derive_fleet(opts: &FleetOptions) -> Vec<TenantSpec> {
    assert!(opts.tenants > 0, "fleet needs at least one tenant");
    let topology = Topology::new(opts.layers.clone()).expect("fleet topology is valid");
    let n_in = topology.inputs();
    let n_out = topology.outputs();
    (0..opts.tenants)
        .map(|i| {
            let name = format!("t{i}");
            let mlp = Mlp::seeded(topology.clone(), tenant_seed(opts.seed, i));
            // Unit ranges on both sides: the load generator draws
            // inputs in [0, 1), and unit output ranges make the
            // denormalized outputs the raw sigmoid activations.
            let input_norm = Normalizer::new(vec![(0.0, 1.0); n_in]);
            let output_norm = Normalizer::new(vec![(0.0, 1.0); n_out]);
            let config = NpuConfig::new(mlp, input_norm, output_norm);
            let region = opts.with_region.then(|| linear_region(&name, n_in, n_out));
            let weight = if opts.weights.is_empty() {
                1
            } else {
                opts.weights[i % opts.weights.len()]
            };
            TenantSpec {
                name,
                weight,
                config,
                region,
                budget: if opts.error_budget.is_finite() {
                    ErrorBudget::new(opts.error_budget)
                } else {
                    ErrorBudget::unlimited()
                },
                sample_period: opts.sample_period,
            }
        })
        .collect()
}

/// Deterministic `[0, 1)` input stream for the load generators: one
/// splitmix64 step per value, keyed by (fleet seed, tenant, request,
/// dimension). Both the bench's request builder and its verifier call
/// this, so expected values never need to cross the wire.
pub fn request_inputs(fleet_seed: u64, tenant: usize, request: u64, n_in: usize) -> Vec<f32> {
    (0..n_in)
        .map(|dim| {
            let mut z = tenant_seed(fleet_seed, tenant)
                .wrapping_add(request.wrapping_mul(0x94d0_49bb_1331_11eb))
                .wrapping_add((dim as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Top 24 bits → [0, 1) at f32 resolution.
            (z >> 40) as f32 / (1u64 << 24) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_options_derive_bitwise_identical_fleets() {
        let opts = FleetOptions::default();
        let a = derive_fleet(&opts);
        let b = derive_fleet(&opts);
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.name, tb.name);
            assert_eq!(ta.weight, tb.weight);
            let inputs = request_inputs(opts.seed, 0, 7, ta.config.topology().inputs());
            let oa = ta.config.evaluate(&inputs);
            let ob = tb.config.evaluate(&inputs);
            let bits_a: Vec<u32> = oa.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u32> = ob.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
            assert_eq!(ta.config.encode(), tb.config.encode());
        }
    }

    #[test]
    fn tenants_differ_from_each_other() {
        let fleet = derive_fleet(&FleetOptions::default());
        let inputs = request_inputs(42, 0, 0, fleet[0].config.topology().inputs());
        let o0 = fleet[0].config.evaluate(&inputs);
        let o1 = fleet[1].config.evaluate(&inputs);
        assert_ne!(o0, o1, "seed mixing must separate tenants");
    }

    #[test]
    fn synthetic_region_matches_its_formula() {
        let fleet = derive_fleet(&FleetOptions::default());
        let region = fleet[0].region.as_ref().unwrap();
        let n_in = fleet[0].config.topology().inputs();
        let n_out = fleet[0].config.topology().outputs();
        let inputs = request_inputs(42, 0, 3, n_in);
        let got = region.evaluate(&inputs).unwrap();
        assert_eq!(got.len(), n_out);
        for (j, &g) in got.iter().enumerate() {
            let mut acc = 0.0f32;
            for (i, &x) in inputs.iter().enumerate() {
                acc += ((i * 7 + j * 13) % 10) as f32 / 10.0 * x;
            }
            // The interpreter folds in the same f32 order; allow for
            // association differences all the same.
            assert!((g - acc).abs() < 1e-5, "out[{j}] = {g}, formula {acc}");
        }
    }

    #[test]
    fn request_inputs_are_deterministic_and_in_range() {
        let a = request_inputs(7, 2, 1000, 8);
        let b = request_inputs(7, 2, 1000, 8);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
        assert_ne!(a, request_inputs(7, 2, 1001, 8));
    }
}

//! The `parrot-serve` wire protocol.
//!
//! Length-prefixed binary frames over a byte stream (Unix or TCP
//! socket): a little-endian `u32` payload length, then the payload. The
//! payload starts with a `u16` protocol version and a `u8` message kind,
//! followed by the kind-specific body. The framing mirrors the
//! `enq.d`/`deq.d` word-stream discipline of the simulated hardware
//! interface: fixed-width scalars, explicit counts, no self-describing
//! metadata — and, like the artifact-hash format in `crates/harness`,
//! every field is pinned by round-trip tests so the encoding cannot
//! drift silently.
//!
//! Decoding is total: any byte sequence either decodes to a message or
//! returns a [`ProtoError`] — it never panics and never allocates more
//! than the frame cap. That invariant is what the fuzz-style proptests
//! in `tests/proto_fuzz.rs` pin down.

use std::io::{self, Read, Write};

/// Protocol version carried in every payload. Bump on breaking changes;
/// decoders reject mismatched versions so stale clients fail loudly at
/// the first frame instead of misparsing bodies.
pub const PROTO_VERSION: u16 = 1;

/// Upper bound on one frame's payload, decoded *before* allocating. A
/// garbage length prefix therefore cannot drive an allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Upper bound on the element count of one invocation's input/output
/// vector (far above any NPU topology; exists so a corrupt count fails
/// cleanly instead of attempting a giant allocation).
pub const MAX_VALUES: u32 = 1 << 16;

/// Decode failure. The variants distinguish framing problems (drop the
/// connection) from semantic ones, but all of them are plain values —
/// malformed input is an expected event, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the advertised structure did.
    Truncated,
    /// Version field differs from [`PROTO_VERSION`].
    BadVersion(u16),
    /// Unknown message-kind byte.
    BadKind(u8),
    /// A count or length field exceeds its cap.
    TooLarge,
    /// Bytes remain after a complete message.
    TrailingBytes,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A field carries a value outside its domain.
    BadValue,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "protocol version {v} (this build speaks {PROTO_VERSION})"
                )
            }
            ProtoError::BadKind(k) => write!(f, "unknown message kind {k:#04x}"),
            ProtoError::TooLarge => write!(f, "count or length over cap"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtoError::BadValue => write!(f, "field value out of domain"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Which execution the client asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeMode {
    /// One NPU invocation (approximate; may be degraded to the precise
    /// path by a drained quality budget).
    Npu,
    /// Whole-region offload: run the original precise region code.
    Precise,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One invocation for `tenant`.
    Invoke {
        /// Tenant name (queue + budget + config selector).
        tenant: String,
        /// Client-chosen id echoed in the reply (unique per connection).
        request_id: u64,
        /// Relative deadline in microseconds (0 = server default).
        deadline_us: u64,
        /// NPU invocation or whole-region offload.
        mode: InvokeMode,
        /// Raw application-value inputs.
        inputs: Vec<f32>,
    },
    /// Liveness probe.
    Ping,
    /// Snapshot of the server's serving statistics (JSON
    /// [`telemetry::ServingSummary`] in the reply).
    Stats,
    /// Graceful stop: drain queues, reply [`Reply::ShutdownAck`], exit.
    Shutdown,
}

/// Why a request failed (carried in [`Reply::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// No tenant registered under that name.
    UnknownTenant,
    /// Input length differs from the tenant's topology.
    BadDimensions,
    /// Precise offload requested but the tenant has no region code.
    NoPrecisePath,
    /// The previous frame failed to decode (connection will drop).
    Malformed,
    /// Precise execution faulted.
    ExecutionFailed,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Completed invocation.
    Outputs {
        /// Echo of the request id.
        request_id: u64,
        /// `false` = NPU path, `true` = precise CPU path.
        precise: bool,
        /// Microseconds the request waited in its tenant queue.
        queued_us: u64,
        /// The invocation's outputs.
        outputs: Vec<f32>,
    },
    /// Bounded-queue backpressure: not enqueued; retry after the hint.
    Rejected {
        /// Echo of the request id.
        request_id: u64,
        /// Suggested client back-off before resending, microseconds.
        retry_after_us: u64,
    },
    /// The request missed its deadline and was dropped from the queue.
    TimedOut {
        /// Echo of the request id.
        request_id: u64,
    },
    /// The request failed (see [`ErrorCode`]).
    Error {
        /// Echo of the request id (0 when the frame never decoded).
        request_id: u64,
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Liveness answer.
    Pong,
    /// Serving-statistics snapshot: a JSON [`telemetry::ServingSummary`].
    Stats {
        /// Pretty JSON of the summary at snapshot time.
        json: String,
    },
    /// Shutdown acknowledged; the server is draining and will exit.
    ShutdownAck,
}

// Message-kind bytes. Requests use the low half, replies the high half,
// so a peer reading the wrong direction fails on the kind byte.
const KIND_INVOKE: u8 = 0x01;
const KIND_PING: u8 = 0x02;
const KIND_STATS: u8 = 0x03;
const KIND_SHUTDOWN: u8 = 0x04;
const KIND_OUTPUTS: u8 = 0x81;
const KIND_REJECTED: u8 = 0x82;
const KIND_TIMED_OUT: u8 = 0x83;
const KIND_ERROR: u8 = 0x84;
const KIND_PONG: u8 = 0x85;
const KIND_STATS_REPLY: u8 = 0x86;
const KIND_SHUTDOWN_ACK: u8 = 0x87;

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, ProtoError> {
        let n = self.u32()?;
        if n > MAX_VALUES {
            return Err(ProtoError::TooLarge);
        }
        // Count is validated against the remaining bytes before any
        // allocation sized by it.
        let bytes = self.take(n as usize * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string field over u16 length");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_f32_vec(out: &mut Vec<u8>, v: &[f32]) {
    debug_assert!(v.len() <= MAX_VALUES as usize, "value vector over cap");
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.push(kind);
}

fn check_header(c: &mut Cursor<'_>) -> Result<u8, ProtoError> {
    let version = c.u16()?;
    if version != PROTO_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    c.u8()
}

impl InvokeMode {
    fn to_byte(self) -> u8 {
        match self {
            InvokeMode::Npu => 0,
            InvokeMode::Precise => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(InvokeMode::Npu),
            1 => Ok(InvokeMode::Precise),
            _ => Err(ProtoError::BadValue),
        }
    }
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::UnknownTenant => 0,
            ErrorCode::BadDimensions => 1,
            ErrorCode::NoPrecisePath => 2,
            ErrorCode::Malformed => 3,
            ErrorCode::ExecutionFailed => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(ErrorCode::UnknownTenant),
            1 => Ok(ErrorCode::BadDimensions),
            2 => Ok(ErrorCode::NoPrecisePath),
            3 => Ok(ErrorCode::Malformed),
            4 => Ok(ErrorCode::ExecutionFailed),
            _ => Err(ProtoError::BadValue),
        }
    }
}

impl Request {
    /// Appends the encoded payload (no length prefix) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Invoke {
                tenant,
                request_id,
                deadline_us,
                mode,
                inputs,
            } => {
                header(out, KIND_INVOKE);
                put_string(out, tenant);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&deadline_us.to_le_bytes());
                out.push(mode.to_byte());
                put_f32_vec(out, inputs);
            }
            Request::Ping => header(out, KIND_PING),
            Request::Stats => header(out, KIND_STATS),
            Request::Shutdown => header(out, KIND_SHUTDOWN),
        }
    }

    /// Decodes one request payload (the bytes of exactly one frame).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on any malformed input; never panics.
    pub fn decode(buf: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(buf);
        let req = match check_header(&mut c)? {
            KIND_INVOKE => Request::Invoke {
                tenant: c.string()?,
                request_id: c.u64()?,
                deadline_us: c.u64()?,
                mode: InvokeMode::from_byte(c.u8()?)?,
                inputs: c.f32_vec()?,
            },
            KIND_PING => Request::Ping,
            KIND_STATS => Request::Stats,
            KIND_SHUTDOWN => Request::Shutdown,
            k => return Err(ProtoError::BadKind(k)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Reply {
    /// Appends the encoded payload (no length prefix) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Outputs {
                request_id,
                precise,
                queued_us,
                outputs,
            } => {
                header(out, KIND_OUTPUTS);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.push(u8::from(*precise));
                out.extend_from_slice(&queued_us.to_le_bytes());
                put_f32_vec(out, outputs);
            }
            Reply::Rejected {
                request_id,
                retry_after_us,
            } => {
                header(out, KIND_REJECTED);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.extend_from_slice(&retry_after_us.to_le_bytes());
            }
            Reply::TimedOut { request_id } => {
                header(out, KIND_TIMED_OUT);
                out.extend_from_slice(&request_id.to_le_bytes());
            }
            Reply::Error {
                request_id,
                code,
                message,
            } => {
                header(out, KIND_ERROR);
                out.extend_from_slice(&request_id.to_le_bytes());
                out.push(code.to_byte());
                put_string(out, message);
            }
            Reply::Pong => header(out, KIND_PONG),
            Reply::Stats { json } => {
                header(out, KIND_STATS_REPLY);
                // Stats bodies can exceed u16, so they get a u32 length.
                debug_assert!(json.len() as u32 <= MAX_FRAME_LEN, "stats body over cap");
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            Reply::ShutdownAck => header(out, KIND_SHUTDOWN_ACK),
        }
    }

    /// Decodes one reply payload (the bytes of exactly one frame).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on any malformed input; never panics.
    pub fn decode(buf: &[u8]) -> Result<Reply, ProtoError> {
        let mut c = Cursor::new(buf);
        let reply = match check_header(&mut c)? {
            KIND_OUTPUTS => Reply::Outputs {
                request_id: c.u64()?,
                precise: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtoError::BadValue),
                },
                queued_us: c.u64()?,
                outputs: c.f32_vec()?,
            },
            KIND_REJECTED => Reply::Rejected {
                request_id: c.u64()?,
                retry_after_us: c.u64()?,
            },
            KIND_TIMED_OUT => Reply::TimedOut {
                request_id: c.u64()?,
            },
            KIND_ERROR => Reply::Error {
                request_id: c.u64()?,
                code: ErrorCode::from_byte(c.u8()?)?,
                message: c.string()?,
            },
            KIND_PONG => Reply::Pong,
            KIND_STATS_REPLY => {
                let len = c.u32()?;
                if len > MAX_FRAME_LEN {
                    return Err(ProtoError::TooLarge);
                }
                let bytes = c.take(len as usize)?;
                Reply::Stats {
                    json: String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)?,
                }
            }
            KIND_SHUTDOWN_ACK => Reply::ShutdownAck,
            k => return Err(ProtoError::BadKind(k)),
        };
        c.finish()?;
        Ok(reply)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; fails with `InvalidData` if the payload
/// exceeds [`MAX_FRAME_LEN`] (nothing is written in that case).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame over length cap",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary.
///
/// # Errors
///
/// Propagates I/O errors; fails with `InvalidData` on a length prefix
/// over [`MAX_FRAME_LEN`] or an EOF inside a frame. Read timeouts
/// (`WouldBlock`/`TimedOut`) surface as errors only when no byte of the
/// frame has been consumed yet; mid-frame they are retried, so a slow
/// writer cannot desynchronize the stream.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf, true)? {
        ReadFull::Eof => return Ok(None),
        ReadFull::Idle => {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "idle"));
        }
        ReadFull::Done => {}
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length over cap",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(r, &mut payload, false)? {
        ReadFull::Done => Ok(Some(payload)),
        ReadFull::Eof | ReadFull::Idle => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "EOF inside frame",
        )),
    }
}

enum ReadFull {
    Done,
    Eof,
    Idle,
}

/// Fills `buf`, retrying timeouts once any byte has been read.
/// `allow_idle` governs the zero-bytes-read case: a timeout there
/// surfaces as [`ReadFull::Idle`] (the caller's poll loop continues), as
/// does an EOF as [`ReadFull::Eof`].
fn read_full(r: &mut impl Read, buf: &mut [u8], allow_idle: bool) -> io::Result<ReadFull> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && allow_idle {
                    Ok(ReadFull::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 {
                    if allow_idle {
                        return Ok(ReadFull::Idle);
                    }
                    continue;
                }
                // Mid-frame timeout: keep reading, the peer committed to
                // this frame.
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadFull::Done)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert_eq!(&Request::decode(&buf).unwrap(), req);
    }

    fn round_trip_reply(reply: &Reply) {
        let mut buf = Vec::new();
        reply.encode(&mut buf);
        assert_eq!(&Reply::decode(&buf).unwrap(), reply);
    }

    #[test]
    fn every_message_kind_round_trips() {
        round_trip_request(&Request::Invoke {
            tenant: "tenant-7".into(),
            request_id: u64::MAX,
            deadline_us: 125_000,
            mode: InvokeMode::Npu,
            inputs: vec![0.0, -1.5, f32::MAX, f32::MIN_POSITIVE],
        });
        round_trip_request(&Request::Invoke {
            tenant: String::new(),
            request_id: 0,
            deadline_us: 0,
            mode: InvokeMode::Precise,
            inputs: vec![],
        });
        round_trip_request(&Request::Ping);
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Shutdown);
        round_trip_reply(&Reply::Outputs {
            request_id: 3,
            precise: true,
            queued_us: 42,
            outputs: vec![1.25, -0.5],
        });
        round_trip_reply(&Reply::Rejected {
            request_id: 9,
            retry_after_us: 1_000,
        });
        round_trip_reply(&Reply::TimedOut { request_id: 11 });
        round_trip_reply(&Reply::Error {
            request_id: 0,
            code: ErrorCode::Malformed,
            message: "bad frame".into(),
        });
        round_trip_reply(&Reply::Pong);
        round_trip_reply(&Reply::Stats {
            json: "{\"completed\":4}".into(),
        });
        round_trip_reply(&Reply::ShutdownAck);
    }

    #[test]
    fn nan_inputs_survive_bit_exactly() {
        let req = Request::Invoke {
            tenant: "t".into(),
            request_id: 1,
            deadline_us: 0,
            mode: InvokeMode::Npu,
            inputs: vec![f32::from_bits(0x7fc0_1234)],
        };
        let mut buf = Vec::new();
        req.encode(&mut buf);
        match Request::decode(&buf).unwrap() {
            Request::Invoke { inputs, .. } => {
                assert_eq!(inputs[0].to_bits(), 0x7fc0_1234);
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut buf = Vec::new();
        Request::Ping.encode(&mut buf);
        buf[0] = 0xff;
        assert!(matches!(
            Request::decode(&buf),
            Err(ProtoError::BadVersion(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Request::Ping.encode(&mut buf);
        buf.push(0);
        assert_eq!(Request::decode(&buf), Err(ProtoError::TrailingBytes));
    }

    #[test]
    fn oversized_vector_count_fails_before_allocating() {
        let mut buf = Vec::new();
        Request::Invoke {
            tenant: "t".into(),
            request_id: 1,
            deadline_us: 0,
            mode: InvokeMode::Npu,
            inputs: vec![1.0],
        }
        .encode(&mut buf);
        // Patch the element count (last 8 bytes are count + one f32).
        let count_at = buf.len() - 8;
        buf[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Request::decode(&buf), Err(ProtoError::TooLarge));
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        Request::Ping.encode(&mut payload);
        write_frame(&mut wire, &payload).unwrap();
        let mut payload2 = Vec::new();
        Request::Shutdown.encode(&mut payload2);
        write_frame(&mut wire, &payload2).unwrap();

        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload2);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_length_is_an_error_not_an_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        Request::Ping.encode(&mut payload);
        write_frame(&mut wire, &payload).unwrap();
        wire.truncate(wire.len() - 1);
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}

//! The `parrot-serve` daemon: sockets and threads around [`Engine`].
//!
//! Thread layout:
//!
//! - the **accept loop** (the thread that called [`Server::run`]) takes
//!   connections and spawns one reader per connection;
//! - **readers** decode frames, answer control requests inline, and
//!   enqueue invocations into the engine (immediate replies for
//!   rejections and validation errors — backpressure must not wait for
//!   a batch);
//! - the **batcher** sleeps on a condvar until some tenant fills a
//!   whole batch or the oldest queued request ages past the batch
//!   window, then flushes the engine and writes the replies;
//! - the **reaper** wakes periodically, expires past-deadline requests,
//!   and writes their timeout replies, so a stalled client load can
//!   never wedge queued work forever.
//!
//! All scheduling decisions live in [`Engine`]; this layer only decides
//! *when* to call it (window/full-batch/shutdown-drain) and shuttles
//! bytes. Time is the daemon's monotonic clock mapped to microseconds
//! since server start, so engine behaviour under the daemon matches the
//! virtual-clock tests in `tests/engine_determinism.rs`.

use crate::engine::{drain, Completion, CompletionKind, Engine, SubmitOutcome};
use crate::proto::{read_frame, write_frame, ErrorCode, ProtoError, Reply, Request};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use telemetry::ServingSummary;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// Unix domain socket at the given path.
    Unix(PathBuf),
    /// TCP at `host:port` (port 0 picks a free port).
    Tcp(String),
}

impl Listen {
    /// Parses `unix:/path/to.sock` or `tcp:host:port`.
    ///
    /// # Errors
    ///
    /// Returns a description when the scheme prefix is missing.
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Listen::Tcp(addr.to_string()))
        } else {
            Err(format!("listen address {s:?} needs a unix: or tcp: prefix"))
        }
    }
}

/// A connected stream of either family.
pub enum AnyStream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl AnyStream {
    /// Connects to a parsed [`Listen`] address.
    ///
    /// # Errors
    ///
    /// Propagates the underlying connect error.
    pub fn connect(addr: &Listen) -> io::Result<AnyStream> {
        match addr {
            Listen::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                // Request/reply frames are small; Nagle + delayed ACK
                // would add tens of milliseconds per round trip.
                s.set_nodelay(true)?;
                Ok(AnyStream::Tcp(s))
            }
            Listen::Unix(p) => Ok(AnyStream::Unix(UnixStream::connect(p)?)),
        }
    }

    fn try_clone(&self) -> io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => Ok(AnyStream::Tcp(s.try_clone()?)),
            AnyStream::Unix(s) => Ok(AnyStream::Unix(s.try_clone()?)),
        }
    }

    /// Applies a read timeout (used by polling clients; `read_frame`
    /// retries timeouts mid-frame so framing stays intact).
    ///
    /// # Errors
    ///
    /// Propagates the socket option error.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(dur),
            AnyStream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

enum AnyListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl AnyListener {
    fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(AnyStream::Tcp(s))
            }
            AnyListener::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }
}

/// Daemon knobs beyond the engine's own configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address.
    pub listen: Listen,
    /// Oldest queued request may age this long before a non-full batch
    /// flushes anyway (the batching latency/throughput dial).
    pub batch_window_us: u64,
    /// Reaper wake period.
    pub reap_period_us: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: Listen::Tcp("127.0.0.1:7411".to_string()),
            batch_window_us: 2_000,
            reap_period_us: 5_000,
        }
    }
}

type SharedWriter = Arc<Mutex<AnyStream>>;

struct Inner {
    engine: Mutex<Engine>,
    /// Signalled on submit and shutdown; the batcher waits on it.
    work: Condvar,
    shutdown: AtomicBool,
    epoch: Instant,
    batch_window_us: u64,
    reap_period_us: u64,
    /// Completion token → the submitting connection's write half.
    router: Mutex<HashMap<u64, SharedWriter>>,
    /// Resolved listen address, used to self-connect on shutdown so the
    /// blocking accept loop wakes up.
    local: Listen,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking connection thread must not take the daemon down with
    // a poison cascade; the engine's state is all plain counters/queues.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Writes `reply` on `writer`, ignoring failures (a vanished client
    /// only loses its own reply).
    fn send(&self, writer: &SharedWriter, reply: &Reply) {
        let mut payload = Vec::new();
        reply.encode(&mut payload);
        let mut w = lock(writer);
        let _ = write_frame(&mut *w, &payload);
    }

    /// Routes engine completions back to their submitters.
    fn deliver(&self, completions: Vec<Completion>) {
        if completions.is_empty() {
            return;
        }
        // Resolve all writers under one router lock, then write with
        // the lock released (a slow client must not block routing).
        let resolved: Vec<(SharedWriter, Reply)> = {
            let mut router = lock(&self.router);
            completions
                .into_iter()
                .filter_map(|c| {
                    let writer = router.remove(&c.token)?;
                    let reply = match c.kind {
                        CompletionKind::Done {
                            outputs,
                            precise,
                            queued_us,
                        } => Reply::Outputs {
                            request_id: c.request_id,
                            precise,
                            queued_us,
                            outputs,
                        },
                        CompletionKind::TimedOut => Reply::TimedOut {
                            request_id: c.request_id,
                        },
                        CompletionKind::Failed { code, message } => Reply::Error {
                            request_id: c.request_id,
                            code,
                            message,
                        },
                    };
                    Some((writer, reply))
                })
                .collect()
        };
        for (writer, reply) in resolved {
            self.send(&writer, &reply);
        }
    }

    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.work.notify_all();
        // Unblock the accept loop.
        let _ = AnyStream::connect(&self.local);
    }
}

/// Everything [`Server::run`] hands back at shutdown: the wire-level
/// serving summary plus the engine's internal histograms, so the daemon
/// can export queue-depth / wait / occupancy distributions into its run
/// report.
pub struct RunStats {
    /// Final serving accounting.
    pub summary: ServingSummary,
    /// Queue-depth samples (one per accepted submit).
    pub queue_depth: telemetry::Histogram,
    /// Time-in-queue samples for served invocations, microseconds.
    pub queue_wait_us: telemetry::Histogram,
    /// NPU invocations per flushed batch.
    pub batch_occupancy: telemetry::Histogram,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    inner: Arc<Inner>,
    listener: AnyListener,
}

impl Server {
    /// Binds the listen address and wraps `engine`. For `tcp:…:0` the
    /// actual port is resolved, so tests can bind an ephemeral port and
    /// read it back via [`local`](Self::local).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(opts: &ServeOptions, engine: Engine) -> io::Result<Server> {
        let (listener, local) = match &opts.listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let resolved = Listen::Tcp(l.local_addr()?.to_string());
                (AnyListener::Tcp(l), resolved)
            }
            Listen::Unix(path) => {
                // A stale socket file from a crashed daemon blocks bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (AnyListener::Unix(l), Listen::Unix(path.clone()))
            }
        };
        Ok(Server {
            inner: Arc::new(Inner {
                engine: Mutex::new(engine),
                work: Condvar::new(),
                shutdown: AtomicBool::new(false),
                epoch: Instant::now(),
                batch_window_us: opts.batch_window_us,
                reap_period_us: opts.reap_period_us,
                router: Mutex::new(HashMap::new()),
                local,
            }),
            listener,
        })
    }

    /// The resolved listen address (ephemeral TCP ports filled in).
    pub fn local(&self) -> Listen {
        self.inner.local.clone()
    }

    /// Serves until a client sends [`Request::Shutdown`], then drains
    /// every queue (all pending requests still get replies) and returns
    /// the final serving summary.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop socket errors.
    pub fn run(self) -> io::Result<RunStats> {
        let batcher = {
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name("serve-batcher".into())
                .spawn(move || batcher_loop(&inner))?
        };
        let reaper = {
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name("serve-reaper".into())
                .spawn(move || reaper_loop(&inner))?
        };

        while !self.inner.shutdown.load(Ordering::SeqCst) {
            let stream = match self.listener.accept() {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.inner.begin_shutdown();
                    let _ = batcher.join();
                    let _ = reaper.join();
                    return Err(e);
                }
            };
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let inner = Arc::clone(&self.inner);
            let _ = std::thread::Builder::new()
                .name("serve-conn".into())
                .spawn(move || connection_loop(&inner, stream));
        }

        let _ = batcher.join();
        let _ = reaper.join();
        if let Listen::Unix(path) = &self.inner.local {
            let _ = std::fs::remove_file(path);
        }
        let wall = self.inner.now_us();
        let engine = lock(&self.inner.engine);
        Ok(RunStats {
            summary: engine.summary(wall),
            queue_depth: engine.queue_depth_hist().clone(),
            queue_wait_us: engine.queue_wait_hist().clone(),
            batch_occupancy: engine.batch_occupancy_hist().clone(),
        })
    }
}

/// One connection: read frames until EOF, malformed input, or shutdown.
fn connection_loop(inner: &Arc<Inner>, stream: AnyStream) {
    // The periodic read timeout lets the loop observe shutdown even on
    // an idle connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue, // idle poll
            Err(_) => {
                // Framing is broken (oversized length, EOF mid-frame):
                // the stream cannot be resynchronized, drop it.
                lock(&inner.engine).record_protocol_error();
                return;
            }
        };
        match Request::decode(&payload) {
            Ok(req) => {
                if !handle_request(inner, &writer, req) {
                    return;
                }
            }
            Err(e) => {
                lock(&inner.engine).record_protocol_error();
                inner.send(
                    &writer,
                    &Reply::Error {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: proto_error_text(&e),
                    },
                );
                return;
            }
        }
    }
}

fn proto_error_text(e: &ProtoError) -> String {
    format!("undecodable frame: {e}")
}

/// Handles one decoded request; returns `false` when the connection
/// should close.
fn handle_request(inner: &Arc<Inner>, writer: &SharedWriter, req: Request) -> bool {
    match req {
        Request::Invoke {
            tenant,
            request_id,
            deadline_us,
            mode,
            inputs,
        } => {
            let now = inner.now_us();
            let outcome = {
                let mut engine = lock(&inner.engine);
                engine.submit(&tenant, request_id, deadline_us, mode, inputs, now)
            };
            match outcome {
                SubmitOutcome::Enqueued { token } => {
                    lock(&inner.router).insert(token, Arc::clone(writer));
                    inner.work.notify_all();
                }
                SubmitOutcome::Rejected { retry_after_us } => {
                    inner.send(
                        writer,
                        &Reply::Rejected {
                            request_id,
                            retry_after_us,
                        },
                    );
                }
                SubmitOutcome::UnknownTenant => inner.send(
                    writer,
                    &Reply::Error {
                        request_id,
                        code: ErrorCode::UnknownTenant,
                        message: format!("no tenant {tenant:?}"),
                    },
                ),
                SubmitOutcome::BadDimensions { expected, got } => inner.send(
                    writer,
                    &Reply::Error {
                        request_id,
                        code: ErrorCode::BadDimensions,
                        message: format!("expected {expected} inputs, got {got}"),
                    },
                ),
                SubmitOutcome::NoPrecisePath => inner.send(
                    writer,
                    &Reply::Error {
                        request_id,
                        code: ErrorCode::NoPrecisePath,
                        message: format!("tenant {tenant:?} has no precise region"),
                    },
                ),
            }
            true
        }
        Request::Ping => {
            inner.send(writer, &Reply::Pong);
            true
        }
        Request::Stats => {
            let wall = inner.now_us();
            let summary = lock(&inner.engine).summary(wall);
            let json = serde::json::to_string_pretty(&summary);
            inner.send(writer, &Reply::Stats { json });
            true
        }
        Request::Shutdown => {
            inner.send(writer, &Reply::ShutdownAck);
            inner.begin_shutdown();
            false
        }
    }
}

/// Flush policy: full batch → now; else oldest request may wait out the
/// batch window; shutdown → drain everything.
fn batcher_loop(inner: &Arc<Inner>) {
    let mut completions = Vec::new();
    loop {
        let mut engine = lock(&inner.engine);
        loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                let _span = telemetry::span("serve", "drain");
                let now = inner.now_us();
                drain(&mut engine, now, &mut completions);
                drop(engine);
                inner.deliver(std::mem::take(&mut completions));
                return;
            }
            let now = inner.now_us();
            if engine.has_full_batch() {
                break;
            }
            match engine.oldest_enqueued_us() {
                Some(oldest) if now.saturating_sub(oldest) >= inner.batch_window_us => break,
                Some(oldest) => {
                    let remaining = (oldest + inner.batch_window_us).saturating_sub(now);
                    let (g, _) = inner
                        .work
                        .wait_timeout(engine, Duration::from_micros(remaining.max(1)))
                        .unwrap_or_else(|e| e.into_inner());
                    engine = g;
                }
                None => {
                    let (g, _) = inner
                        .work
                        .wait_timeout(engine, Duration::from_millis(50))
                        .unwrap_or_else(|e| e.into_inner());
                    engine = g;
                }
            }
        }
        {
            let _span = telemetry::span("serve", "flush");
            let now = inner.now_us();
            engine.flush(now, &mut completions);
        }
        telemetry::record_sample("serve.pending", engine.pending_total() as f64);
        drop(engine);
        inner.deliver(std::mem::take(&mut completions));
    }
}

/// Periodically expires past-deadline requests so their clients get
/// timeout replies even when no flush is due.
fn reaper_loop(inner: &Arc<Inner>) {
    let mut completions = Vec::new();
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_micros(inner.reap_period_us.max(100)));
        let now = inner.now_us();
        {
            let mut engine = lock(&inner.engine);
            engine.expire(now, &mut completions);
        }
        inner.deliver(std::mem::take(&mut completions));
    }
}
